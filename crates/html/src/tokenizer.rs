//! A forgiving HTML tokenizer.
//!
//! The tokenizer never fails: every input byte sequence produces a token
//! stream. Malformed constructs degrade gracefully — a `<` that does not
//! open a plausible tag becomes text, unterminated tags are closed at end
//! of input, and attribute syntax errors skip to the next attribute. This
//! is the recovery behaviour the paper requires of its page parser.

use crate::escape::unescape;

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr=value ...>`; `self_closing` is true for `<br/>`-style tags.
    StartTag { name: String, attrs: Vec<(String, String)>, self_closing: bool },
    /// `</name>`
    EndTag { name: String },
    /// A run of character data (entity-decoded).
    Text(String),
    /// `<!-- ... -->`
    Comment(String),
    /// `<!DOCTYPE ...>` (contents after the bang, verbatim).
    Doctype(String),
}

/// Tokenize `input` into a vector of [`Token`]s. Infallible.
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer::new(input).run()
}

struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
    text_start: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer { input, bytes: input.as_bytes(), pos: 0, tokens: Vec::new(), text_start: 0 }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                self.flush_text(self.pos);
                if !self.try_markup() {
                    // A lone '<' (e.g. "price < 100"): keep it as text and
                    // resume text accumulation from the '<' itself.
                    self.text_start = self.pos;
                    self.pos += 1;
                }
            } else {
                self.pos += 1;
            }
        }
        self.flush_text(self.bytes.len());
        self.tokens
    }

    fn flush_text(&mut self, end: usize) {
        if end > self.text_start {
            let raw = unescape(&self.input[self.text_start..end]);
            // Merge with a preceding text token — a recovered lone '<'
            // splits accumulation but should not split the text node.
            if let Some(Token::Text(prev)) = self.tokens.last_mut() {
                prev.push_str(&raw);
            } else {
                self.tokens.push(Token::Text(raw));
            }
        }
        self.text_start = end;
    }

    /// Attempt to consume markup starting at `self.pos` (which is `<`).
    /// Returns false when the `<` cannot start markup.
    fn try_markup(&mut self) -> bool {
        let rest = &self.bytes[self.pos..];
        if rest.len() < 2 {
            return false;
        }
        match rest[1] {
            b'!' => {
                if rest.len() >= 4 && &rest[1..4] == b"!--" {
                    self.consume_comment();
                } else {
                    self.consume_doctype();
                }
                true
            }
            b'/' => self.consume_end_tag(),
            c if c.is_ascii_alphabetic() => self.consume_start_tag(),
            _ => false,
        }
    }

    fn consume_comment(&mut self) {
        let body_start = self.pos + 4;
        let end = self.input[body_start..].find("-->").map(|p| body_start + p);
        match end {
            Some(e) => {
                self.tokens.push(Token::Comment(self.input[body_start..e].to_string()));
                self.pos = e + 3;
            }
            None => {
                // Unterminated comment swallows the rest of the document —
                // matching real browser recovery.
                self.tokens.push(Token::Comment(self.input[body_start..].to_string()));
                self.pos = self.bytes.len();
            }
        }
        self.text_start = self.pos;
    }

    fn consume_doctype(&mut self) {
        let body_start = self.pos + 2;
        let end = self.input[body_start..].find('>').map(|p| body_start + p);
        match end {
            Some(e) => {
                self.tokens.push(Token::Doctype(self.input[body_start..e].trim().to_string()));
                self.pos = e + 1;
            }
            None => {
                self.tokens.push(Token::Doctype(self.input[body_start..].trim().to_string()));
                self.pos = self.bytes.len();
            }
        }
        self.text_start = self.pos;
    }

    fn consume_end_tag(&mut self) -> bool {
        let name_start = self.pos + 2;
        let mut i = name_start;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        if i == name_start {
            return false; // "</>" or "</ x" — not a tag
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        // Skip anything up to '>' (attributes on end tags are ignored).
        while i < self.bytes.len() && self.bytes[i] != b'>' {
            i += 1;
        }
        self.pos = (i + 1).min(self.bytes.len());
        self.text_start = self.pos;
        self.tokens.push(Token::EndTag { name });
        true
    }

    fn consume_start_tag(&mut self) -> bool {
        let name_start = self.pos + 1;
        let mut i = name_start;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= self.bytes.len() {
                break; // unterminated tag: close it at EOF
            }
            match self.bytes[i] {
                b'>' => {
                    i += 1;
                    break;
                }
                b'/' => {
                    // `/>` or a stray slash inside the tag.
                    if i + 1 < self.bytes.len() && self.bytes[i + 1] == b'>' {
                        self_closing = true;
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                _ => {
                    if let Some((attr, next)) = self.consume_attr(i) {
                        attrs.push(attr);
                        i = next;
                    } else {
                        i += 1; // garbage byte inside tag: skip it
                    }
                }
            }
        }
        self.pos = i;
        self.text_start = self.pos;
        // Raw-text elements: everything up to the matching close tag is text.
        if name == "script" || name == "style" {
            self.tokens.push(Token::StartTag { name: name.clone(), attrs, self_closing });
            if !self_closing {
                self.consume_raw_text(&name);
            }
        } else {
            self.tokens.push(Token::StartTag { name, attrs, self_closing });
        }
        true
    }

    /// Consume raw text up to `</name`, emitting Text + EndTag.
    fn consume_raw_text(&mut self, name: &str) {
        let close = format!("</{name}");
        let lower = self.input[self.pos..].to_ascii_lowercase();
        match lower.find(&close) {
            Some(rel) => {
                let text_end = self.pos + rel;
                if text_end > self.pos {
                    self.tokens.push(Token::Text(self.input[self.pos..text_end].to_string()));
                }
                let after = self.input[text_end..]
                    .find('>')
                    .map(|p| text_end + p + 1)
                    .unwrap_or(self.bytes.len());
                self.tokens.push(Token::EndTag { name: name.to_string() });
                self.pos = after;
            }
            None => {
                if self.pos < self.bytes.len() {
                    self.tokens.push(Token::Text(self.input[self.pos..].to_string()));
                }
                self.tokens.push(Token::EndTag { name: name.to_string() });
                self.pos = self.bytes.len();
            }
        }
        self.text_start = self.pos;
    }

    /// Parse one `name[=value]` attribute starting at byte `i`.
    fn consume_attr(&self, mut i: usize) -> Option<((String, String), usize)> {
        let start = i;
        while i < self.bytes.len() {
            let b = self.bytes[i];
            if b.is_ascii_whitespace() || b == b'=' || b == b'>' || b == b'/' {
                break;
            }
            i += 1;
        }
        if i == start {
            return None;
        }
        let name = self.input[start..i].to_ascii_lowercase();
        while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= self.bytes.len() || self.bytes[i] != b'=' {
            // Boolean attribute (e.g. `checked`, `selected`).
            return Some(((name, String::new()), i));
        }
        i += 1;
        while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= self.bytes.len() {
            return Some(((name, String::new()), i));
        }
        let value = match self.bytes[i] {
            q @ (b'"' | b'\'') => {
                i += 1;
                let vstart = i;
                while i < self.bytes.len() && self.bytes[i] != q {
                    i += 1;
                }
                let v = &self.input[vstart..i];
                if i < self.bytes.len() {
                    i += 1; // closing quote
                }
                v
            }
            _ => {
                let vstart = i;
                while i < self.bytes.len() {
                    let b = self.bytes[i];
                    if b.is_ascii_whitespace() || b == b'>' {
                        break;
                    }
                    i += 1;
                }
                &self.input[vstart..i]
            }
        };
        Some(((name, unescape(value)), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            self_closing: false,
        }
    }

    #[test]
    fn simple_tags_and_text() {
        let toks = tokenize("<b>hello</b>");
        assert_eq!(
            toks,
            vec![start("b", &[]), Token::Text("hello".into()), Token::EndTag { name: "b".into() }]
        );
    }

    #[test]
    fn attributes_quoted_and_unquoted() {
        let toks = tokenize(r#"<a href="/x" class='c' id=main checked>"#);
        assert_eq!(
            toks,
            vec![start("a", &[("href", "/x"), ("class", "c"), ("id", "main"), ("checked", "")])]
        );
    }

    #[test]
    fn self_closing() {
        let toks = tokenize("<br/><img src=x />");
        assert!(
            matches!(&toks[0], Token::StartTag { name, self_closing: true, .. } if name == "br")
        );
        assert!(
            matches!(&toks[1], Token::StartTag { name, self_closing: true, .. } if name == "img")
        );
    }

    #[test]
    fn lone_less_than_is_text() {
        let toks = tokenize("price < 100 and > 50");
        assert_eq!(toks, vec![Token::Text("price < 100 and > 50".into())]);
    }

    #[test]
    fn comment_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- hi --><p>x");
        assert_eq!(toks[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(toks[1], Token::Comment(" hi ".into()));
        assert_eq!(toks[2], start("p", &[]));
    }

    #[test]
    fn unterminated_comment_swallows_rest() {
        let toks = tokenize("a<!-- never closed <p>x");
        assert_eq!(toks[0], Token::Text("a".into()));
        assert_eq!(toks[1], Token::Comment(" never closed <p>x".into()));
    }

    #[test]
    fn unterminated_tag_closed_at_eof() {
        let toks = tokenize("<a href=/x");
        assert_eq!(toks, vec![start("a", &[("href", "/x")])]);
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let toks = tokenize(r#"<a title="a&amp;b">x &lt; y</a>"#);
        assert_eq!(toks[0], start("a", &[("title", "a&b")]));
        assert_eq!(toks[1], Token::Text("x < y".into()));
    }

    #[test]
    fn script_contents_are_raw() {
        let toks = tokenize("<script>if (a<b) { x(); }</script>done");
        assert_eq!(toks[1], Token::Text("if (a<b) { x(); }".into()));
        assert_eq!(toks[2], Token::EndTag { name: "script".into() });
        assert_eq!(toks[3], Token::Text("done".into()));
    }

    #[test]
    fn unterminated_script_closed_at_eof() {
        let toks = tokenize("<script>var x = 1;");
        assert_eq!(toks.last(), Some(&Token::EndTag { name: "script".into() }));
    }

    #[test]
    fn end_tag_attrs_ignored() {
        let toks = tokenize("</td class=x>");
        assert_eq!(toks, vec![Token::EndTag { name: "td".into() }]);
    }

    #[test]
    fn tag_names_lowercased() {
        let toks = tokenize("<TABLE><TR></TR></TABLE>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "table"));
        assert!(matches!(&toks[3], Token::EndTag { name } if name == "table"));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn stray_end_bracket_is_text() {
        let toks = tokenize("</>");
        assert_eq!(toks, vec![Token::Text("</>".into())]);
    }
}
