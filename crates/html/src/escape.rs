//! HTML entity escaping and unescaping.
//!
//! Only the entities that actually occur in the simulated Web (and in
//! 1999-era car-classified pages) are supported; unknown entities are
//! passed through verbatim, which is the recovery behaviour the paper's
//! parser needs.

/// Escape text for inclusion in an HTML text node or attribute value.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Decode the named and numeric entities we support. Unknown or truncated
/// entities are left as-is rather than rejected.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(semi) = s[i..].find(';').map(|p| i + p) {
                // Entities longer than 10 chars are almost certainly stray
                // ampersands; treat them as text.
                if semi - i <= 10 {
                    let name = &s[i + 1..semi];
                    if let Some(decoded) = decode_entity(name) {
                        out.push(decoded);
                        i = semi + 1;
                        continue;
                    }
                }
            }
        }
        let c = s[i..].chars().next().expect("index is on a char boundary");
        out.push(c);
        i += c.len_utf8();
    }
    out
}

fn decode_entity(name: &str) -> Option<char> {
    match name {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        "nbsp" => Some('\u{a0}'),
        "copy" => Some('\u{a9}'),
        "reg" => Some('\u{ae}'),
        "trade" => Some('\u{2122}'),
        "mdash" => Some('\u{2014}'),
        "ndash" => Some('\u{2013}'),
        _ => {
            let code =
                if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_special_chars() {
        assert_eq!(escape("a<b & c>\"d\""), "a&lt;b &amp; c&gt;&quot;d&quot;");
    }

    #[test]
    fn unescape_named_entities() {
        assert_eq!(unescape("Ford &amp; Jaguar &lt;1999&gt;"), "Ford & Jaguar <1999>");
    }

    #[test]
    fn unescape_numeric_entities() {
        assert_eq!(unescape("&#65;&#x42;"), "AB");
    }

    #[test]
    fn roundtrip() {
        let s = "price < $1,000 & \"good\" condition";
        assert_eq!(unescape(&escape(s)), s);
    }

    #[test]
    fn unknown_entity_passes_through() {
        assert_eq!(unescape("&bogus; &noend"), "&bogus; &noend");
    }

    #[test]
    fn overlong_entity_treated_as_text() {
        assert_eq!(unescape("&thisistoolongtobeanentity;"), "&thisistoolongtobeanentity;");
    }

    #[test]
    fn nbsp_decodes() {
        assert_eq!(unescape("a&nbsp;b"), "a\u{a0}b");
    }

    #[test]
    fn invalid_codepoint_left_alone() {
        assert_eq!(unescape("&#x110000;"), "&#x110000;");
    }
}
