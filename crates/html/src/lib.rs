//! # webbase-html
//!
//! A small, dependency-light HTML processing library built for the webbase
//! reproduction of *"A Layered Architecture for Querying Dynamic Web
//! Content"* (SIGMOD 1999).
//!
//! The paper's navigation-map builder parses every page loaded into the
//! designer's browser, extracts the *actions* available on that page
//! (links to follow, forms to fill out) and the tabular data it carries,
//! and must *recover from faulty HTML* — the paper singles out ill-formed
//! documents as the main practical obstacle ("the main problem we face
//! while mapping sites is the presence of faulty HTML, in which case the
//! parser needs to be able to recover").
//!
//! This crate therefore provides:
//!
//! * a byte-level [`tokenizer`] that never fails — malformed markup
//!   degrades into text or best-effort tags;
//! * a [`parser`] that builds a [`dom::Document`] with the usual recovery
//!   tricks (implied end tags, auto-closing of `<p>`, `<li>`, `<tr>`,
//!   `<td>`, `<option>`, …, silent dropping of stray end tags);
//! * [`extract`] — the page-model extraction used by the navigation layer:
//!   links, forms (with widget types, domains, defaults, and mandatory
//!   inference from widget kinds), and tables;
//! * [`diff`] — structural page diffing used by navigation-map
//!   maintenance to classify site changes as auto-applicable or requiring
//!   manual intervention.
//!
//! ```
//! let doc = webbase_html::parse("<html><body><a href='/cars'>Used Cars</a>");
//! let links = webbase_html::extract::links(&doc);
//! assert_eq!(links[0].text, "Used Cars");
//! assert_eq!(links[0].href, "/cars");
//! ```

pub mod diff;
pub mod dom;
pub mod escape;
pub mod extract;
pub mod parser;
pub mod tokenizer;

pub use dom::{Document, Node, NodeId};
pub use parser::parse;
