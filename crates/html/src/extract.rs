//! Page-model extraction: links, forms, and tables.
//!
//! This is the crate-level counterpart of the paper's Figure 3 object
//! model. The navigation-map builder "parses an HTML page and generates a
//! set of F-logic objects … to extract all necessary information for
//! following links and submitting forms found inside the page"; it also
//! infers which form attributes are *mandatory* from their widget kind
//! (a radio group is safely assumed mandatory), attribute *domains* from
//! selection lists, maximum lengths of text fields, and default values.
//! All of that inference lives here.

use crate::dom::{Document, NodeId, NodeKind};
use serde::{Deserialize, Serialize};

/// A hyperlink found on a page (the `link::action` objects of Figure 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Anchor text, whitespace-normalised ("name" in the paper's Link class).
    pub text: String,
    /// Target URL ("address").
    pub href: String,
    /// Tag of the nearest structuring ancestor (`table`, `ul`, `dl`, …);
    /// the paper's parser uses this HTML environment to group link-defined
    /// attributes.
    pub environment: Option<String>,
}

/// Kind of form widget ("type: checkbox, select, radio, text etc." in Fig 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WidgetKind {
    Text { max_length: Option<u32> },
    Select { options: Vec<String> },
    Radio { options: Vec<String> },
    Checkbox,
    Hidden,
    Submit,
}

impl WidgetKind {
    /// The finite value domain this widget exposes, if any.
    pub fn domain(&self) -> Option<&[String]> {
        match self {
            WidgetKind::Select { options } | WidgetKind::Radio { options } => Some(options),
            _ => None,
        }
    }

    /// §7: "if an attribute is represented by a radio button we can safely
    /// assume it is mandatory". Selects without an empty option likewise
    /// always submit a value. Text fields cannot be classified
    /// automatically — the designer must say (see the navigation crate).
    pub fn inferred_mandatory(&self) -> Option<bool> {
        match self {
            WidgetKind::Radio { .. } => Some(true),
            WidgetKind::Select { options } => {
                Some(!options.iter().any(|o| o.is_empty() || o.eq_ignore_ascii_case("any")))
            }
            WidgetKind::Hidden => Some(false),
            WidgetKind::Checkbox => Some(false),
            WidgetKind::Submit => Some(false),
            WidgetKind::Text { .. } => None,
        }
    }
}

/// One form field (the paper's `attrValPair` class: name, widget type,
/// default value).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub kind: WidgetKind,
    pub default: Option<String>,
    /// Human-visible label, when one could be recovered from the markup
    /// (a preceding text run or `<label>`); used to de-crypticise
    /// "rather cryptic symbolic names".
    pub label: Option<String>,
}

/// A form (Figure 3's Form class: cgi, method, mandatory/optional
/// attributes, state).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Form {
    /// CGI script URL (the `action` attribute).
    pub action: String,
    /// "get" or "post".
    pub method: String,
    pub fields: Vec<Field>,
}

impl Form {
    /// Fields whose widget kind lets us infer they are mandatory.
    pub fn inferred_mandatory_fields(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.kind.inferred_mandatory() == Some(true))
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Data-carrying fields (everything except submit buttons).
    pub fn data_fields(&self) -> impl Iterator<Item = &Field> {
        self.fields.iter().filter(|f| !matches!(f.kind, WidgetKind::Submit))
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A table lifted to rows of text cells; `header` holds `<th>` texts (or
/// the first row when a site uses `<td>` headers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Per-row, per-cell link targets: `links[r][c]` is the href of the
    /// first anchor inside that cell, if any. Data extraction uses this
    /// for follow-up links such as "Car Features".
    pub links: Vec<Vec<Option<String>>>,
}

/// Extract every link on the page, in document order.
pub fn links(doc: &Document) -> Vec<Link> {
    let mut out = Vec::new();
    for id in doc.elements_by_tag("a") {
        let Some(href) = doc.attr(id, "href") else { continue };
        let env = ["table", "ul", "ol", "dl", "form"]
            .iter()
            .find(|t| doc.ancestor_by_tag(id, t).is_some())
            .map(ToString::to_string);
        out.push(Link { text: doc.text_content(id), href: href.to_string(), environment: env });
    }
    out
}

/// Extract every form on the page, in document order.
pub fn forms(doc: &Document) -> Vec<Form> {
    doc.elements_by_tag("form").map(|f| extract_form(doc, f)).collect()
}

fn extract_form(doc: &Document, form_id: NodeId) -> Form {
    let action = doc.attr(form_id, "action").unwrap_or("").to_string();
    let method = doc.attr(form_id, "method").unwrap_or("get").to_ascii_lowercase();
    let mut fields: Vec<Field> = Vec::new();
    let mut pending_label: Option<String> = None;

    for id in doc.descendants(form_id) {
        match &doc.node(id).kind {
            NodeKind::Text(t) => {
                let t = crate::dom::normalize_ws(t);
                if !t.is_empty() {
                    // Remember the most recent text run as a candidate label
                    // for the next widget ("Make: <select …>").
                    pending_label = Some(t.trim_end_matches(':').trim().to_string());
                }
            }
            NodeKind::Element { tag, .. } => match tag.as_str() {
                "input" => {
                    let ty = doc.attr(id, "type").unwrap_or("text").to_ascii_lowercase();
                    let name = doc.attr(id, "name").unwrap_or("").to_string();
                    let value = doc.attr(id, "value").map(str::to_string);
                    match ty.as_str() {
                        "radio" => {
                            let v = value.clone().unwrap_or_default();
                            if let Some(existing) = fields.iter_mut().find(|f| {
                                f.name == name && matches!(f.kind, WidgetKind::Radio { .. })
                            }) {
                                if let WidgetKind::Radio { options } = &mut existing.kind {
                                    options.push(v);
                                }
                                if doc.attr(id, "checked").is_some() {
                                    existing.default = value;
                                }
                            } else if !name.is_empty() {
                                let default = doc.attr(id, "checked").is_some().then(|| v.clone());
                                fields.push(Field {
                                    name,
                                    kind: WidgetKind::Radio { options: vec![v] },
                                    default,
                                    label: pending_label.take(),
                                });
                            }
                        }
                        "checkbox" => {
                            if !name.is_empty() {
                                fields.push(Field {
                                    name,
                                    kind: WidgetKind::Checkbox,
                                    default: doc
                                        .attr(id, "checked")
                                        .is_some()
                                        .then(|| value.clone().unwrap_or_else(|| "on".into())),
                                    label: pending_label.take(),
                                });
                            }
                        }
                        "hidden" => {
                            if !name.is_empty() {
                                fields.push(Field {
                                    name,
                                    kind: WidgetKind::Hidden,
                                    default: value,
                                    label: None,
                                });
                            }
                        }
                        "submit" => {
                            fields.push(Field {
                                name,
                                kind: WidgetKind::Submit,
                                default: value,
                                label: None,
                            });
                        }
                        _ => {
                            // text, search, and unknown types degrade to text
                            if !name.is_empty() {
                                let max_length =
                                    doc.attr(id, "maxlength").and_then(|m| m.parse().ok());
                                fields.push(Field {
                                    name,
                                    kind: WidgetKind::Text { max_length },
                                    default: value,
                                    label: pending_label.take(),
                                });
                            }
                        }
                    }
                }
                "select" => {
                    let name = doc.attr(id, "name").unwrap_or("").to_string();
                    if name.is_empty() {
                        continue;
                    }
                    let mut options = Vec::new();
                    let mut default = None;
                    for opt in doc.descendants(id).filter(|&o| doc.tag(o) == Some("option")) {
                        let value = doc
                            .attr(opt, "value")
                            .map(str::to_string)
                            .unwrap_or_else(|| doc.text_content(opt));
                        if doc.attr(opt, "selected").is_some() {
                            default = Some(value.clone());
                        }
                        options.push(value);
                    }
                    fields.push(Field {
                        name,
                        kind: WidgetKind::Select { options },
                        default,
                        label: pending_label.take(),
                    });
                }
                "label" => {
                    pending_label = Some(doc.text_content(id).trim_end_matches(':').to_string());
                }
                _ => {}
            },
            _ => {}
        }
    }
    Form { action, method, fields }
}

/// Extract every `<table>` on the page that has at least one row.
pub fn tables(doc: &Document) -> Vec<Table> {
    let mut out = Vec::new();
    for t in doc.elements_by_tag("table") {
        // Skip nested tables' rows when extracting an outer table.
        let rows_ids: Vec<NodeId> = doc
            .elements_by_tag("tr")
            .filter(|&r| doc.ancestor_by_tag(r, "table") == Some(t))
            .collect();
        if rows_ids.is_empty() {
            continue;
        }
        let mut header = Vec::new();
        let mut rows = Vec::new();
        let mut links = Vec::new();
        for (i, &r) in rows_ids.iter().enumerate() {
            let cells: Vec<NodeId> = doc
                .node(r)
                .children
                .iter()
                .copied()
                .filter(|&c| matches!(doc.tag(c), Some("td") | Some("th")))
                .collect();
            let is_header_row =
                i == 0 && cells.iter().all(|&c| doc.tag(c) == Some("th")) && !cells.is_empty();
            let texts: Vec<String> = cells.iter().map(|&c| doc.text_content(c)).collect();
            if is_header_row {
                header = texts;
            } else {
                let cell_links: Vec<Option<String>> = cells
                    .iter()
                    .map(|&c| {
                        doc.descendants(c)
                            .find(|&n| doc.tag(n) == Some("a") && doc.attr(n, "href").is_some())
                            .and_then(|a| doc.attr(a, "href"))
                            .map(str::to_string)
                    })
                    .collect();
                rows.push(texts);
                links.push(cell_links);
            }
        }
        out.push(Table { header, rows, links });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn links_with_environment() {
        let doc = parse("<ul><li><a href='/a'>A</a></ul><a href='/b'>B</a>");
        let ls = links(&doc);
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[0].environment.as_deref(), Some("ul"));
        assert_eq!(ls[1].environment, None);
    }

    #[test]
    fn anchors_without_href_skipped() {
        let doc = parse("<a name='top'>anchor</a><a href='/x'>x</a>");
        assert_eq!(links(&doc).len(), 1);
    }

    #[test]
    fn form_with_text_and_select() {
        let doc = parse(
            "<form action='/cgi-bin/search' method='POST'>\
             Make: <select name='make'><option value='ford'>Ford</option>\
             <option value='jaguar' selected>Jaguar</option></select>\
             Model: <input type=text name=model maxlength=20>\
             <input type=submit value='Go'></form>",
        );
        let fs = forms(&doc);
        assert_eq!(fs.len(), 1);
        let f = &fs[0];
        assert_eq!(f.action, "/cgi-bin/search");
        assert_eq!(f.method, "post");
        let make = f.field("make").expect("make field");
        assert_eq!(make.kind.domain().map(<[String]>::len), Some(2));
        assert_eq!(make.default.as_deref(), Some("jaguar"));
        assert_eq!(make.label.as_deref(), Some("Make"));
        let model = f.field("model").expect("model field");
        assert_eq!(model.kind, WidgetKind::Text { max_length: Some(20) });
        assert_eq!(model.label.as_deref(), Some("Model"));
    }

    #[test]
    fn radio_group_coalesced_and_mandatory() {
        let doc = parse(
            "<form action='/q'>\
             <input type=radio name=cond value=excellent checked>\
             <input type=radio name=cond value=good>\
             <input type=radio name=cond value=fair></form>",
        );
        let f = &forms(&doc)[0];
        assert_eq!(f.fields.len(), 1);
        let cond = &f.fields[0];
        assert_eq!(cond.kind.domain().map(<[String]>::len), Some(3));
        assert_eq!(cond.default.as_deref(), Some("excellent"));
        assert_eq!(f.inferred_mandatory_fields(), vec!["cond"]);
    }

    #[test]
    fn select_with_any_option_not_mandatory() {
        let doc = parse(
            "<form action='/q'><select name='year'>\
             <option value=''>any</option><option>1998</option></select></form>",
        );
        let f = &forms(&doc)[0];
        assert_eq!(f.fields[0].kind.inferred_mandatory(), Some(false));
    }

    #[test]
    fn hidden_and_checkbox_fields() {
        let doc = parse(
            "<form action='/q'><input type=hidden name=session value=abc>\
             <input type=checkbox name=pics checked></form>",
        );
        let f = &forms(&doc)[0];
        assert_eq!(f.field("session").expect("session").default.as_deref(), Some("abc"));
        assert_eq!(f.field("pics").expect("pics").default.as_deref(), Some("on"));
        assert!(f.inferred_mandatory_fields().is_empty());
    }

    #[test]
    fn table_with_headers_and_links() {
        let doc = parse(
            "<table><tr><th>Make</th><th>Price</th></tr>\
             <tr><td><a href='/car/1'>Ford</a></td><td>$500</td></tr>\
             <tr><td>Jaguar<td>$9000</table>",
        );
        let ts = tables(&doc);
        assert_eq!(ts.len(), 1);
        let t = &ts[0];
        assert_eq!(t.header, vec!["Make", "Price"]);
        assert_eq!(t.rows, vec![vec!["Ford", "$500"], vec!["Jaguar", "$9000"]]);
        assert_eq!(t.links[0][0].as_deref(), Some("/car/1"));
        assert_eq!(t.links[0][1], None);
    }

    #[test]
    fn nested_table_rows_not_mixed() {
        let doc = parse("<table><tr><td>outer<table><tr><td>inner</table></td></tr></table>");
        let ts = tables(&doc);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].rows.len(), 1);
        assert_eq!(ts[1].rows, vec![vec!["inner"]]);
    }

    #[test]
    fn empty_page_has_nothing() {
        let doc = parse("<html><body>plain text");
        assert!(links(&doc).is_empty());
        assert!(forms(&doc).is_empty());
        assert!(tables(&doc).is_empty());
    }

    #[test]
    fn label_element_recognised() {
        let doc =
            parse("<form action='/q'><label>Zip code:</label><input type=text name=zip></form>");
        let f = &forms(&doc)[0];
        assert_eq!(f.fields[0].label.as_deref(), Some("Zip code"));
    }

    #[test]
    fn data_fields_excludes_submit() {
        let doc =
            parse("<form action='/q'><input type=text name=a><input type=submit value=Go></form>");
        let f = &forms(&doc)[0];
        assert_eq!(f.data_fields().count(), 1);
    }
}
