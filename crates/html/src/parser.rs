//! Tree construction with browser-style error recovery.
//!
//! The parser consumes the token stream of [`crate::tokenizer`] and builds
//! a [`Document`]. It is intentionally far simpler than the HTML5
//! algorithm, but implements the recovery rules that matter for 1999-era
//! pages (the paper: "the parser needs to be able to recover from the
//! ill-formed documents"):
//!
//! * void elements (`<br>`, `<input>`, …) never open a scope;
//! * `<li>`, `<p>`, `<option>`, `<tr>`, `<td>`, `<th>` auto-close a
//!   same-kind open element (so `<tr><td>a<td>b` nests correctly);
//! * an end tag with no matching open element is dropped;
//! * an end tag matching a non-top open element closes everything above
//!   it (mis-nesting recovery);
//! * anything still open at end of input is closed implicitly.

use crate::dom::{is_void, Document, NodeId, NodeKind};
use crate::tokenizer::{tokenize, Token};

/// Parse an HTML string into a [`Document`]. Never fails.
pub fn parse(input: &str) -> Document {
    let mut doc = Document::new();
    // Stack of open elements; the root is always at the bottom.
    let mut stack: Vec<NodeId> = vec![NodeId::ROOT];

    for token in tokenize(input) {
        match token {
            Token::StartTag { name, attrs, self_closing } => {
                auto_close(&mut stack, &doc, &name);
                let parent = *stack.last().expect("root never popped");
                let id = doc.append(parent, NodeKind::Element { tag: name.clone(), attrs });
                if !self_closing && !is_void(&name) {
                    stack.push(id);
                }
            }
            Token::EndTag { name } => {
                if let Some(pos) = stack.iter().rposition(|&id| doc.tag(id) == Some(name.as_str()))
                {
                    if pos > 0 {
                        stack.truncate(pos); // closes the element and any mis-nested children
                    }
                    // pos == 0 can't happen (root is not an element), but
                    // guard anyway: stray end tags are dropped.
                }
            }
            Token::Text(t) => {
                let parent = *stack.last().expect("root never popped");
                doc.append(parent, NodeKind::Text(t));
            }
            Token::Comment(c) => {
                let parent = *stack.last().expect("root never popped");
                doc.append(parent, NodeKind::Comment(c));
            }
            Token::Doctype(_) => {} // doctypes carry no page-model information
        }
    }
    doc
}

/// Close open elements that a new `<name>` implicitly terminates.
fn auto_close(stack: &mut Vec<NodeId>, doc: &Document, name: &str) {
    // Elements the incoming tag closes if found open (searching from the
    // innermost element outwards, stopping at scope boundaries).
    let closes: &[&str] = match name {
        "li" => &["li"],
        "p" => &["p"],
        "option" => &["option"],
        "optgroup" => &["option", "optgroup"],
        "tr" => &["tr", "td", "th"],
        "td" | "th" => &["td", "th"],
        "thead" | "tbody" | "tfoot" => &["tr", "td", "th", "thead", "tbody", "tfoot"],
        "dt" | "dd" => &["dt", "dd"],
        _ => return,
    };
    // Scope boundaries: never auto-close past these.
    let boundary: &[&str] = match name {
        "li" => &["ul", "ol"],
        "option" | "optgroup" => &["select"],
        "tr" | "td" | "th" | "thead" | "tbody" | "tfoot" => &["table"],
        "dt" | "dd" => &["dl"],
        _ => &[],
    };
    while stack.len() > 1 {
        let top = *stack.last().expect("len > 1");
        let tag = doc.tag(top).unwrap_or("");
        if boundary.contains(&tag) {
            return;
        }
        if closes.contains(&tag) {
            stack.pop();
            // `tr` must also pop an enclosing cell, so keep looping.
            continue;
        }
        // `td`/`tr` may appear under an implicit tbody we didn't model —
        // only keep popping while the top is closeable.
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::NodeId;

    fn tags(doc: &Document) -> Vec<String> {
        doc.descendants(NodeId::ROOT).filter_map(|id| doc.tag(id).map(String::from)).collect()
    }

    #[test]
    fn well_formed_nesting() {
        let doc = parse("<html><body><p>hi</p></body></html>");
        assert_eq!(tags(&doc), vec!["html", "body", "p"]);
        assert_eq!(doc.text_content(NodeId::ROOT), "hi");
    }

    #[test]
    fn unclosed_tags_closed_at_eof() {
        let doc = parse("<html><body><b>bold");
        assert_eq!(tags(&doc), vec!["html", "body", "b"]);
        assert_eq!(doc.text_content(NodeId::ROOT), "bold");
    }

    #[test]
    fn stray_end_tag_dropped() {
        let doc = parse("</table><p>x</p>");
        assert_eq!(tags(&doc), vec!["p"]);
    }

    #[test]
    fn table_cells_auto_close() {
        let doc = parse("<table><tr><td>a<td>b<tr><td>c</table>");
        let table = doc.first_by_tag("table").expect("table parsed");
        let rows: Vec<_> = doc.elements_by_tag("tr").collect();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|&r| doc.ancestor_by_tag(r, "table") == Some(table)));
        let row0_cells: Vec<_> = doc
            .elements_by_tag("td")
            .filter(|&c| doc.ancestor_by_tag(c, "tr") == Some(rows[0]))
            .collect();
        assert_eq!(row0_cells.len(), 2);
        assert_eq!(doc.text_content(row0_cells[1]), "b");
    }

    #[test]
    fn list_items_auto_close() {
        let doc = parse("<ul><li>a<li>b<li>c</ul>");
        let items: Vec<_> = doc.elements_by_tag("li").collect();
        assert_eq!(items.len(), 3);
        let ul = doc.first_by_tag("ul").expect("ul parsed");
        assert!(items.iter().all(|&li| doc.node(li).parent == Some(ul)));
    }

    #[test]
    fn options_auto_close() {
        let doc = parse("<select><option>ford<option>jaguar</select>");
        let opts: Vec<_> = doc.elements_by_tag("option").collect();
        assert_eq!(opts.len(), 2);
        assert_eq!(doc.text_content(opts[1]), "jaguar");
    }

    #[test]
    fn nested_list_not_broken_by_auto_close() {
        let doc = parse("<ul><li>a<ul><li>a1</ul><li>b</ul>");
        let lis: Vec<_> = doc.elements_by_tag("li").collect();
        assert_eq!(lis.len(), 3);
        // the inner li's parent is the inner ul
        let uls: Vec<_> = doc.elements_by_tag("ul").collect();
        assert_eq!(doc.node(lis[1]).parent, Some(uls[1]));
    }

    #[test]
    fn misnested_inline_recovered() {
        // </i> closes both b and i in our simplified recovery; the page
        // remains usable.
        let doc = parse("<i><b>x</i>y");
        assert_eq!(doc.text_content(NodeId::ROOT), "x y");
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse("<p><br>after</p>");
        let br = doc.first_by_tag("br").expect("br parsed");
        assert!(doc.node(br).children.is_empty());
        let p = doc.first_by_tag("p").expect("p parsed");
        assert_eq!(doc.text_content(p), "after");
    }

    #[test]
    fn inputs_are_void() {
        let doc = parse("<form><input name=a><input name=b></form>");
        let form = doc.first_by_tag("form").expect("form parsed");
        assert_eq!(doc.node(form).children.len(), 2);
    }

    #[test]
    fn paragraphs_auto_close() {
        let doc = parse("<p>one<p>two");
        let ps: Vec<_> = doc.elements_by_tag("p").collect();
        assert_eq!(ps.len(), 2);
        assert_eq!(doc.text_content(ps[0]), "one");
        assert_eq!(doc.text_content(ps[1]), "two");
    }

    #[test]
    fn definition_lists() {
        let doc = parse("<dl><dt>Make<dd>Ford<dt>Model<dd>Escort</dl>");
        assert_eq!(doc.elements_by_tag("dt").count(), 2);
        assert_eq!(doc.elements_by_tag("dd").count(), 2);
    }

    #[test]
    fn empty_document() {
        let doc = parse("");
        assert!(doc.is_empty());
    }

    #[test]
    fn title_extraction() {
        let doc = parse("<html><head><title>Newsday Classifieds</title></head>");
        assert_eq!(doc.title().as_deref(), Some("Newsday Classifieds"));
    }
}
