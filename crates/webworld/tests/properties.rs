//! Property-based tests for the simulated Web: handlers are total,
//! pagination partitions the result set, and rendering always yields
//! parseable pages.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use webbase_html::{extract, parse};
use webbase_webworld::data::{Dataset, SiteSlice, CONDITIONS, MAKES, PRICE_TYPES};
use webbase_webworld::prelude::*;

fn web() -> &'static (SyntheticWeb, Arc<Dataset>) {
    static W: OnceLock<(SyntheticWeb, Arc<Dataset>)> = OnceLock::new();
    W.get_or_init(|| {
        let data = Dataset::generate(9, 500);
        (standard_web(data.clone(), LatencyModel::zero()), data)
    })
}

/// Arbitrary request paths/params for totality fuzzing.
fn arb_request() -> impl Strategy<Value = Request> {
    let host = proptest::sample::select(vec![
        "www.newsday.com",
        "www.kbb.com",
        "www.autoweb.com",
        "www.carfinance.com",
        "www.carinsurance.com",
        "www.wwwheels.com",
        "nonexistent.example",
    ]);
    let path = "[a-z/0-9.]{0,24}";
    let params = proptest::collection::vec(("[a-z]{1,8}", "[a-z0-9 ]{0,10}"), 0..4);
    (host, path, params, any::<bool>()).prop_map(|(h, p, ps, post)| {
        let url = Url::new(h, &format!("/{p}"));
        if post {
            Request::post(url, ps)
        } else {
            Request::get(url.with_query(ps))
        }
    })
}

proptest! {
    /// Every site handles every request without panicking, returns a
    /// status, and 200-responses parse into a DOM.
    #[test]
    fn handlers_are_total(req in arb_request()) {
        let (web, _) = web();
        let (resp, _) = web.fetch(&req);
        prop_assert!(resp.status == 200 || resp.status == 404);
        if resp.is_ok() {
            let doc = parse(resp.html());
            prop_assert!(!doc.is_empty() || resp.html().is_empty());
        }
    }

    /// Pagination partitions the matching set: walking every "More" page
    /// yields each matching ad exactly once, on every generic site.
    #[test]
    fn pagination_partitions(make_i in 0usize..10, host_i in 0usize..4) {
        let (web, data) = web();
        let (make, _) = MAKES[make_i];
        let (host, slice, make_param) = [
            ("www.wwwheels.com", SiteSlice::WwWheels, "mk"),
            ("www.autoconnect.com", SiteSlice::AutoConnect, "make"),
            ("autos.yahoo.com", SiteSlice::YahooCars, "make"),
            ("carpoint.msn.com", SiteSlice::CarPoint, "make"),
        ][host_i];
        let truth = data.matching(slice, Some(make), None).len();
        let mut seen = 0usize;
        let mut page = 0usize;
        loop {
            let req = Request::post(
                Url::new(host, "/cgi-bin/search").with_query([("page", page.to_string())]),
                [(make_param, make)],
            );
            let (resp, _) = web.fetch(&req);
            prop_assert!(resp.is_ok());
            let doc = parse(resp.html());
            let tables = extract::tables(&doc);
            prop_assert!(!tables.is_empty(), "{host} results page has a table");
            seen += tables[0].rows.len();
            prop_assert!(tables[0].rows.iter().all(|r| r[0] == make));
            if extract::links(&doc).iter().any(|l| l.text == "More") {
                page += 1;
                prop_assert!(page < 1000, "pagination must terminate");
            } else {
                break;
            }
        }
        prop_assert_eq!(seen, truth, "{} make={}", host, make);
    }

    /// Kelly's price page always agrees with the generator, for every
    /// make/model/condition/price-type/year.
    #[test]
    fn kellys_agrees_with_generator(
        make_i in 0usize..10,
        model_i in 0usize..4,
        cond_i in 0usize..3,
        pt_i in 0usize..2,
        year in 1988u32..=1998,
    ) {
        let (web, _) = web();
        let (make, models) = MAKES[make_i];
        let model = models[model_i % models.len()];
        let condition = CONDITIONS[cond_i];
        let pricetype = PRICE_TYPES[pt_i];
        let y = year.to_string();
        let req = Request::post(
            Url::new("www.kbb.com", "/cgi-bin/bb"),
            [
                ("make", make),
                ("model", model),
                ("condition", condition),
                ("pricetype", pricetype),
                ("year", &y),
            ],
        );
        let (resp, _) = web.fetch(&req);
        let doc = parse(resp.html());
        let t = &extract::tables(&doc)[0];
        prop_assert_eq!(t.rows.len(), 1);
        let shown: u32 = t.rows[0][5].trim_start_matches('$').parse().expect("price");
        let expected = webbase_webworld::data::blue_book_price_typed(
            make, model, year, condition, pricetype,
        );
        prop_assert_eq!(shown, expected);
    }

    /// The Newsday conditional: f1 lands on *either* a refine form *or* a
    /// data table, never both, never neither — for every make.
    #[test]
    fn newsday_conditional_is_exclusive(make_i in 0usize..10) {
        let (web, _) = web();
        let (make, _) = MAKES[make_i];
        let req = Request::post(
            Url::new("www.newsday.com", "/cgi-bin/nclassy"),
            [("make", make)],
        );
        let (resp, _) = web.fetch(&req);
        let doc = parse(resp.html());
        let has_refine_form =
            extract::forms(&doc).iter().any(|f| f.action == "/cgi-bin/nclassy2");
        let has_table = !extract::tables(&doc).is_empty();
        prop_assert!(has_refine_form ^ has_table, "make={make}: form={has_refine_form} table={has_table}");
    }

    /// Site-version changes never alter the dataset-backed rows, only the
    /// structure around them (maintenance must not see data churn).
    #[test]
    fn versions_share_data(make_i in 0usize..10) {
        let (_, data) = web();
        let (make, _) = MAKES[make_i];
        let v1 = standard_web_versioned(data.clone(), LatencyModel::zero(), 1);
        let v2 = standard_web_versioned(data.clone(), LatencyModel::zero(), 2);
        let req = Request::post(
            Url::new("autos.yahoo.com", "/cgi-bin/search"),
            [("make", make)],
        );
        let (r1, _) = v1.fetch(&req);
        let (r2, _) = v2.fetch(&req);
        prop_assert_eq!(r1.html(), r2.html());
    }
}
