//! The generative webworld: arbitrarily many synthetic sites from one
//! seed (ROADMAP item 3(b)).
//!
//! Each [`SiteSpec`] is a pure function of `(corpus_seed, index)`: a
//! [`Topology`] drawn from the deterministic knob RNG, a tiny seeded
//! catalogue of rows, and everything downstream derived from those —
//! the CGI handlers ([`GenSite`]), the relational ground-truth oracle
//! ([`SiteSpec::oracle`]), the designer-session plan the navigation
//! layer replays to record a map ([`SiteSpec::plan`]), and the manifest
//! of webcheck findings the site must trigger when a defect knob is on
//! ([`SiteSpec::expected_findings`]).
//!
//! Layering note: this crate sits *below* `webbase-navigation`, so the
//! session plan is emitted as neutral [`PlanStep`] data; the
//! `gen_sessions` module over there converts it into `DesignerAction`s
//! and records the map exactly the way a human designer's session would
//! be recorded.
//!
//! Every generated site follows one spine shape, with the topology
//! knobs selecting the variations the hand-written sites cover
//! piecemeal:
//!
//! ```text
//! entry ─(hubs)→ search ─submit/follow-by-value→ [form2 ─submit→] data ⟲ More
//! ```
//!
//! Attribute names are suffixed with the site index (`cat7`, `price7`),
//! so a 100-site corpus composes into one UR hierarchy in which every
//! query's minimal covering set is a single site.

use crate::data::fnv;
use crate::faults::{DelayedSite, FlakySite, MutatingSite, Mutation, MutationClock};
use crate::latency::LatencyModel;
use crate::render::{href_with_params, Cell, PageBuilder, Widget};
use crate::request::{Request, Response};
use crate::server::{Site, SyntheticWeb};
use crate::topology::{Defect, FaultKnob, GenRng, Topology};
use crate::url::Url;
use std::time::Duration;

/// Category vocabulary (per site: a rotation-derived subset).
const CAT_POOL: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon"];
/// Section vocabulary for the second form of two-form chains.
const SUB_POOL: &[&str] = &["north", "south", "east", "west"];
/// Item-name stems.
const ITEM_POOL: &[&str] =
    &["lamp", "desk", "chair", "rug", "shelf", "stool", "bench", "crate", "easel", "stand"];

/// One catalogue row of a generated site — the generator's own data
/// model, from which both the rendered pages and the oracle are
/// computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenRow {
    pub cat: String,
    pub sub: String,
    pub item: String,
    pub qty: i64,
    pub price: i64,
}

/// The declarative designer-session plan for a generated site. Mirrors
/// the `DesignerAction` vocabulary without depending on the navigation
/// crate (which depends on this one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    Goto(String),
    /// Follow the link with this text.
    Follow(String),
    /// Follow a link out of a link-defined attribute set (AutoWeb-style).
    FollowAsValue {
        attr: String,
        chosen: String,
    },
    /// Submit the form with this action, with the given field values.
    Submit {
        action: String,
        values: Vec<(String, String)>,
    },
    /// Mark the current page as a data page for `relation`, extracting
    /// `(source_header, attr, numeric)` columns from its table.
    MarkData {
        relation: String,
        columns: Vec<(String, String, bool)>,
    },
    Back,
}

/// One generated site: identity, topology, and catalogue.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    pub index: usize,
    pub corpus_seed: u64,
    pub host: String,
    pub title: String,
    /// The VPS relation the designer registers (`gen{index}`).
    pub relation: String,
    pub topology: Topology,
    /// This site's categories / sections, in stable order.
    pub cats: Vec<String>,
    pub subs: Vec<String>,
    rows: Vec<GenRow>,
}

impl SiteSpec {
    /// Derive the spec for site `index` of the corpus with `seed`,
    /// optionally forcing a defect knob.
    pub fn derive(seed: u64, index: usize, defect: Option<Defect>) -> SiteSpec {
        let mut rng = GenRng::new(fnv(&format!("gen-site:{seed}:{index}")));
        let mut topology = Topology::draw(&mut rng);
        if let Some(d) = defect {
            topology = topology.with_defect(d);
        }
        let rot = rng.below(CAT_POOL.len());
        let n_cats = 2 + rng.below(2);
        let cats: Vec<String> =
            (0..n_cats).map(|k| CAT_POOL[(rot + k) % CAT_POOL.len()].to_string()).collect();
        let rot = rng.below(SUB_POOL.len());
        let n_subs = 2 + rng.below(2);
        let subs: Vec<String> =
            (0..n_subs).map(|k| SUB_POOL[(rot + k) % SUB_POOL.len()].to_string()).collect();
        let mut rows = Vec::new();
        let mut serial = 0usize;
        for cat in &cats {
            // Two-form chains filter by (cat, sub); single-form sites by
            // cat alone. Row counts guarantee that when pagination is
            // on, the designer's exemplar browse sees at least two
            // "More" pages (so the iteration self-loop is recorded
            // against pages of identical structure).
            let groups: Vec<Option<&String>> = if topology.chain_depth == 2 {
                subs.iter().map(Some).collect()
            } else {
                vec![None]
            };
            for sub in groups {
                let count = if topology.paginate {
                    2 * topology.page_size + 1 + rng.below(3)
                } else {
                    3 + rng.below(5)
                };
                for _ in 0..count {
                    rows.push(GenRow {
                        cat: cat.clone(),
                        sub: sub
                            .cloned()
                            .unwrap_or_else(|| SUB_POOL[rng.below(SUB_POOL.len())].to_string()),
                        item: format!("{}-{serial:03}", ITEM_POOL[rng.below(ITEM_POOL.len())]),
                        qty: 1 + rng.below(9) as i64,
                        price: 100 + rng.below(9900) as i64,
                    });
                    serial += 1;
                }
            }
        }
        SiteSpec {
            index,
            corpus_seed: seed,
            host: format!("gen{index:02}.webworld.test"),
            title: format!("Generated Emporium #{index}"),
            relation: format!("gen{index}"),
            topology,
            cats,
            subs,
            rows,
        }
    }

    /// The site-local (and corpus-global, since the suffix is the site
    /// index) attribute name for one of `cat`/`sub`/`item`/`qty`/`price`.
    pub fn attr(&self, base: &str) -> String {
        format!("{base}{}", self.index)
    }

    /// The standard vocabulary of this site, in extraction-column order.
    pub fn attrs(&self) -> Vec<String> {
        ["cat", "sub", "item", "qty", "price"].iter().map(|b| self.attr(b)).collect()
    }

    /// The whole catalogue, in generation (= rendering) order.
    pub fn rows(&self) -> &[GenRow] {
        &self.rows
    }

    /// The pure relational ground truth: the rows a query bound to
    /// `cat` (and, on two-form sites, `sub`) must return, in order.
    pub fn oracle(&self, cat: &str, sub: Option<&str>) -> Vec<&GenRow> {
        self.rows.iter().filter(|r| r.cat == cat && sub.is_none_or(|s| r.sub == s)).collect()
    }

    /// The category the designer browses with (the one with the most
    /// rows, so pagination is exercised during recording).
    pub fn exemplar_cat(&self) -> &str {
        self.cats.iter().max_by_key(|c| self.oracle(c, None).len()).expect("cats is non-empty")
    }

    /// The exemplar section within the exemplar category (two-form
    /// sites only).
    pub fn exemplar_sub(&self) -> &str {
        let cat = self.exemplar_cat();
        self.subs.iter().max_by_key(|s| self.oracle(cat, Some(s)).len()).expect("subs is non-empty")
    }

    /// Whether a two-form chain gates this site's data (and hence
    /// whether queries must bind the section attribute too).
    pub fn needs_sub(&self) -> bool {
        self.topology.chain_depth == 2
    }

    /// The manifest: which webcheck finding codes this site must
    /// trigger. Empty for clean-knob sites.
    pub fn expected_findings(&self) -> Vec<&'static str> {
        self.topology.defect.iter().map(Defect::code).collect()
    }

    /// A structured-UR query over this site, bound to its exemplar
    /// values (the workload `loadgen --sites` and the differential
    /// battery run).
    pub fn exemplar_query(&self) -> String {
        let mut bound = format!("{}='{}'", self.attr("cat"), self.exemplar_cat());
        if self.needs_sub() {
            bound.push_str(&format!(", {}='{}'", self.attr("sub"), self.exemplar_sub()));
        }
        format!(
            "GenUR({bound}, {}, {}, {})",
            self.attr("item"),
            self.attr("qty"),
            self.attr("price")
        )
    }

    /// The path of the search page (the form, or the category link set).
    fn search_path(&self) -> &'static str {
        if self.topology.hub_depth == 0 {
            "/"
        } else {
            "/search"
        }
    }

    /// The designer session as neutral plan steps (converted to
    /// `DesignerAction`s by `webbase_navigation::gen_sessions`).
    pub fn plan(&self) -> Vec<PlanStep> {
        let mut steps = vec![PlanStep::Goto(format!("http://{}/", self.host))];
        for d in 1..=self.topology.hub_depth {
            steps.push(PlanStep::Follow(hub_link_text(d).to_string()));
        }
        if self.topology.defect == Some(Defect::TrapCycle) {
            // Wander into the promo loop once so its edges are recorded,
            // then back out to the search page.
            steps.push(PlanStep::Follow("Promotions".to_string()));
            steps.push(PlanStep::Follow("Next stop".to_string()));
            steps.push(PlanStep::Follow("Loop back".to_string()));
            steps.push(PlanStep::Back);
            steps.push(PlanStep::Back);
            steps.push(PlanStep::Back);
        }
        let cat = self.exemplar_cat().to_string();
        if self.topology.cat_via_links {
            steps.push(PlanStep::FollowAsValue { attr: self.attr("cat"), chosen: cat });
        } else {
            steps.push(PlanStep::Submit {
                action: "/cgi-bin/q".to_string(),
                values: vec![(self.attr("cat"), cat)],
            });
        }
        if self.needs_sub() {
            steps.push(PlanStep::Submit {
                action: "/cgi-bin/q2".to_string(),
                values: vec![(self.attr("sub"), self.exemplar_sub().to_string())],
            });
        }
        steps.push(PlanStep::MarkData {
            relation: self.relation.clone(),
            columns: vec![
                ("Cat".to_string(), self.attr("cat"), false),
                ("Sec".to_string(), self.attr("sub"), false),
                ("Item".to_string(), self.attr("item"), false),
                ("Qty".to_string(), self.attr("qty"), true),
                ("Price".to_string(), self.attr("price"), true),
            ],
        });
        let exemplar_rows = if self.needs_sub() {
            self.oracle(self.exemplar_cat(), Some(self.exemplar_sub())).len()
        } else {
            self.oracle(self.exemplar_cat(), None).len()
        };
        if self.topology.paginate && exemplar_rows > self.topology.page_size {
            steps.push(PlanStep::Follow("More".to_string()));
        }
        if self.topology.defect == Some(Defect::NoProgressLoop) {
            steps.push(PlanStep::Follow("Start over".to_string()));
        }
        steps
    }

    /// The CGI site serving this spec.
    pub fn site(&self) -> GenSite {
        GenSite { spec: self.clone() }
    }

    /// Every distinct page the site can serve, as `(description, html)`
    /// pairs — the byte inventory the determinism golden hashes. Covers
    /// entry, hubs, promo pages, every form page, and every result page
    /// of every `(cat[, sub])` binding.
    pub fn page_inventory(&self) -> Vec<(String, String)> {
        let site = self.site();
        let get =
            |path: &str| site.handle(&Request::get(Url::new(&self.host, path))).html().to_string();
        let mut pages = vec![("GET /".to_string(), get("/"))];
        for d in 2..=self.topology.hub_depth {
            let p = format!("/hub{d}");
            pages.push((format!("GET {p}"), get(&p)));
        }
        if self.topology.hub_depth > 0 {
            pages.push(("GET /search".to_string(), get("/search")));
        }
        if self.topology.defect == Some(Defect::TrapCycle) {
            pages.push(("GET /promo-a".to_string(), get("/promo-a")));
            pages.push(("GET /promo-b".to_string(), get("/promo-b")));
        }
        let cat_attr = self.attr("cat");
        let sub_attr = self.attr("sub");
        for cat in &self.cats {
            if self.topology.cat_via_links {
                let path = format!("/cat/{cat}");
                for page in 0..self.page_count(self.oracle(cat, None).len()) {
                    let url = Url::new(&self.host, &path).with_query([("page", page.to_string())]);
                    let html = site.handle(&Request::get(url)).html().to_string();
                    pages.push((format!("GET {path} page={page}"), html));
                }
            } else if self.needs_sub() {
                let form2 = site
                    .handle(&Request::post(
                        Url::new(&self.host, "/cgi-bin/q"),
                        [(cat_attr.as_str(), cat.as_str())],
                    ))
                    .html()
                    .to_string();
                pages.push((format!("POST /cgi-bin/q {cat}"), form2));
                for sub in &self.subs {
                    for page in 0..self.page_count(self.oracle(cat, Some(sub)).len()) {
                        let url = Url::new(&self.host, "/cgi-bin/q2")
                            .with_query([("page", page.to_string())]);
                        let req = Request::post(
                            url,
                            [(cat_attr.as_str(), cat.as_str()), (sub_attr.as_str(), sub.as_str())],
                        );
                        let html = site.handle(&req).html().to_string();
                        pages.push((format!("POST /cgi-bin/q2 {cat}/{sub} page={page}"), html));
                    }
                }
            } else {
                for page in 0..self.page_count(self.oracle(cat, None).len()) {
                    let url =
                        Url::new(&self.host, "/cgi-bin/q").with_query([("page", page.to_string())]);
                    let req = Request::post(url, [(cat_attr.as_str(), cat.as_str())]);
                    let html = site.handle(&req).html().to_string();
                    pages.push((format!("POST /cgi-bin/q {cat} page={page}"), html));
                }
            }
        }
        pages
    }

    fn page_count(&self, rows: usize) -> usize {
        if !self.topology.paginate || rows == 0 {
            1
        } else {
            rows.div_ceil(self.topology.page_size)
        }
    }
}

fn hub_link_text(depth: usize) -> &'static str {
    if depth == 1 {
        "Browse catalog"
    } else {
        "Product index"
    }
}

/// The request handlers for one [`SiteSpec`] — pure functions of the
/// request, like every webworld site.
pub struct GenSite {
    spec: SiteSpec,
}

impl GenSite {
    fn hub_page(&self, depth: usize) -> Response {
        let s = &self.spec;
        let next = if depth == s.topology.hub_depth {
            "/search".to_string()
        } else {
            format!("/hub{}", depth + 1)
        };
        Response::ok(
            PageBuilder::new(&s.title)
                .heading(&s.title)
                .para("A generated storefront of the synthetic webworld.")
                .link(hub_link_text(depth), &next)
                .finish(),
        )
    }

    fn search_page(&self) -> Response {
        let s = &self.spec;
        let mut b = PageBuilder::new(&format!("Search — {}", s.title)).heading("Find items");
        if s.topology.defect == Some(Defect::TrapCycle) {
            b = b.link("Promotions", "/promo-a");
        }
        if s.topology.cat_via_links {
            let items: Vec<(String, String)> =
                s.cats.iter().map(|c| (c.clone(), format!("/cat/{c}"))).collect();
            b = b.para("Pick a category:").link_list(&items);
        } else {
            let opts: Vec<&str> = s.cats.iter().map(String::as_str).collect();
            b = b.form(
                "/cgi-bin/q",
                "post",
                &[Widget::select(&s.attr("cat"), "Category", &opts, false)],
                "Search",
            );
        }
        Response::ok(b.finish())
    }

    fn promo_page(&self, which: char) -> Response {
        let s = &self.spec;
        let (text, href) =
            if which == 'a' { ("Next stop", "/promo-b") } else { ("Loop back", "/promo-a") };
        Response::ok(
            PageBuilder::new(&format!("Promotions — {}", s.title))
                .para("Limited-time offers! (This aisle goes nowhere.)")
                .link(text, href)
                .finish(),
        )
    }

    fn form2_page(&self, cat: &str) -> Response {
        let s = &self.spec;
        let opts: Vec<&str> = s.subs.iter().map(String::as_str).collect();
        let mut widgets = vec![
            Widget::select(&s.attr("sub"), "Section", &opts, false),
            // Server-side state carried client-side: the chosen category
            // rides along as a hidden field, Kelly's-style.
            Widget::hidden(&s.attr("cat"), cat),
        ];
        if s.topology.hidden_carry {
            widgets.push(Widget::hidden("ref", "catalog"));
        }
        if s.topology.defect == Some(Defect::SessionReplay) {
            widgets.push(Widget::hidden("sesstoken", &format!("tok-{cat}")));
        }
        Response::ok(
            PageBuilder::new(&format!("Refine — {}", s.title))
                .heading(&format!("Sections of {cat}"))
                .form("/cgi-bin/q2", "post", &widgets, "Narrow down")
                .finish(),
        )
    }

    fn results_page(&self, req: &Request, via_links_cat: Option<&str>) -> Response {
        let s = &self.spec;
        let Some(cat) = via_links_cat
            .map(ToString::to_string)
            .or_else(|| req.param_nonempty(&s.attr("cat")).map(ToString::to_string))
        else {
            return Response::not_found("missing category");
        };
        let sub = if s.needs_sub() {
            match req.param_nonempty(&s.attr("sub")) {
                Some(v) => Some(v.to_string()),
                None => return Response::not_found("missing section"),
            }
        } else {
            None
        };
        let page: usize = req.param("page").and_then(|p| p.parse().ok()).unwrap_or(0);
        let rows = s.oracle(&cat, sub.as_deref());
        let (start, end) = if s.topology.paginate {
            let start = (page * s.topology.page_size).min(rows.len());
            (start, (start + s.topology.page_size).min(rows.len()))
        } else {
            (0, rows.len())
        };
        let cells: Vec<Vec<Cell>> = rows[start..end]
            .iter()
            .map(|r| {
                vec![
                    Cell::text(&r.cat),
                    Cell::text(&r.sub),
                    Cell::text(&r.item),
                    Cell::text(r.qty.to_string()),
                    Cell::text(format!("${}", r.price)),
                ]
            })
            .collect();
        let mut b = PageBuilder::new(&format!("Results — {}", s.title));
        if s.topology.ill_formed {
            b = b.ill_formed();
        }
        b = b.heading("Matching items").table(&["Cat", "Sec", "Item", "Qty", "Price"], &cells);
        if s.topology.paginate && end < rows.len() {
            let next = (page + 1).to_string();
            let href = if let Some(c) = via_links_cat {
                href_with_params(&format!("/cat/{c}"), &[("page", &next)])
            } else if let Some(sb) = &sub {
                href_with_params(
                    "/cgi-bin/q2",
                    &[(&s.attr("cat"), cat.as_str()), (&s.attr("sub"), sb), ("page", &next)],
                )
            } else {
                href_with_params("/cgi-bin/q", &[(&s.attr("cat"), cat.as_str()), ("page", &next)])
            };
            b = b.link("More", &href);
        }
        if s.topology.defect == Some(Defect::NoProgressLoop) {
            b = b.link("Start over", s.search_path());
        }
        Response::ok(b.finish())
    }
}

impl Site for GenSite {
    fn host(&self) -> &str {
        &self.spec.host
    }

    fn handle(&self, req: &Request) -> Response {
        let s = &self.spec;
        let path = req.url.path.clone();
        if path == "/" {
            return if s.topology.hub_depth == 0 { self.search_page() } else { self.hub_page(1) };
        }
        if let Some(d) = path.strip_prefix("/hub").and_then(|n| n.parse::<usize>().ok()) {
            if d >= 2 && d <= s.topology.hub_depth {
                return self.hub_page(d);
            }
        }
        if path == "/search" && s.topology.hub_depth > 0 {
            return self.search_page();
        }
        if s.topology.defect == Some(Defect::TrapCycle) {
            if path == "/promo-a" {
                return self.promo_page('a');
            }
            if path == "/promo-b" {
                return self.promo_page('b');
            }
        }
        if let Some(cat) = path.strip_prefix("/cat/") {
            if s.topology.cat_via_links && s.cats.iter().any(|c| c == cat) {
                let cat = cat.to_string();
                return self.results_page(req, Some(&cat));
            }
        }
        if path == "/cgi-bin/q" {
            return if s.needs_sub() {
                match req.param_nonempty(&s.attr("cat")) {
                    Some(cat) => {
                        let cat = cat.to_string();
                        self.form2_page(&cat)
                    }
                    None => Response::not_found("missing category"),
                }
            } else {
                self.results_page(req, None)
            };
        }
        if path == "/cgi-bin/q2" && s.needs_sub() {
            return self.results_page(req, None);
        }
        Response::not_found("no such page")
    }
}

/// The drift schedule generated sites carry when their fault knob is
/// [`FaultKnob::Drift`]: generation `k` rewrites `$` price prefixes to
/// `$9…`, so every advance changes answer-visible numbers while keeping
/// them parseable (the PR 8 idiom).
pub fn gen_drift_schedule(generations: usize) -> Vec<Mutation> {
    (0..generations)
        .map(|k| {
            let needle = format!("${}", "9".repeat(k));
            let replacement = format!("${}", "9".repeat(k + 1));
            Mutation::new(&needle, &replacement)
        })
        .collect()
}

/// How many drift generations a generated drifting site schedules.
pub const GEN_DRIFT_GENERATIONS: usize = 6;

/// A seeded corpus of generated sites.
#[derive(Debug, Clone)]
pub struct GenCorpus {
    pub seed: u64,
    pub specs: Vec<SiteSpec>,
}

impl GenCorpus {
    /// `n` clean-knob sites (no planted defects).
    pub fn generate(seed: u64, n: usize) -> GenCorpus {
        GenCorpus { seed, specs: (0..n).map(|i| SiteSpec::derive(seed, i, None)).collect() }
    }

    /// `n` sites cycling through the defect knobs (site `i` gets
    /// `Defect::ALL[i % 3]`) — the adversarial corpus for webcheck.
    pub fn generate_with_defects(seed: u64, n: usize) -> GenCorpus {
        GenCorpus {
            seed,
            specs: (0..n)
                .map(|i| SiteSpec::derive(seed, i, Some(Defect::ALL[i % Defect::ALL.len()])))
                .collect(),
        }
    }

    /// The healthy web over this corpus (no fault wrappers) — what
    /// recording, and any differential baseline, runs against.
    pub fn web(&self, latency: LatencyModel) -> SyntheticWeb {
        let mut b = SyntheticWeb::builder();
        for spec in &self.specs {
            b = b.site(spec.site());
        }
        b.latency(latency).build()
    }

    /// The degraded web: every site with a [`FaultKnob`] is wrapped in
    /// the corresponding `crate::faults` degrader. Returns the mutation
    /// clocks of the drifting sites (by host) so a harness can advance
    /// their generations explicitly.
    pub fn web_with_faults(
        &self,
        latency: LatencyModel,
    ) -> (SyntheticWeb, Vec<(String, MutationClock)>) {
        let mut b = SyntheticWeb::builder();
        let mut clocks = Vec::new();
        for spec in &self.specs {
            let site: Box<dyn Site> = Box::new(spec.site());
            let site = match spec.topology.fault {
                None => site,
                Some(FaultKnob::Delayed { millis }) => {
                    Box::new(DelayedSite::new(site, Duration::from_millis(millis)))
                }
                Some(FaultKnob::Flaky { period }) => {
                    Box::new(FlakySite::new(site, u64::from(period)))
                }
                Some(FaultKnob::Drift) => {
                    let (drifting, clock) =
                        MutatingSite::new(site, gen_drift_schedule(GEN_DRIFT_GENERATIONS));
                    clocks.push((spec.host.clone(), clock));
                    Box::new(drifting)
                }
            };
            b = b.boxed_site(site);
        }
        (b.latency(latency).build(), clocks)
    }

    /// The corpus with exactly one site wrapped in the PR 8 mutation
    /// schedule (regardless of its fault knob) — the fixture of the
    /// "maintained view ≡ cold re-run" differential test.
    pub fn web_with_drifting_site(
        &self,
        index: usize,
        latency: LatencyModel,
    ) -> (SyntheticWeb, MutationClock) {
        let mut b = SyntheticWeb::builder();
        let mut clock = None;
        for spec in &self.specs {
            let site: Box<dyn Site> = Box::new(spec.site());
            if spec.index == index {
                let (drifting, c) =
                    MutatingSite::new(site, gen_drift_schedule(GEN_DRIFT_GENERATIONS));
                clock = Some(c);
                b = b.boxed_site(Box::new(drifting));
            } else {
                b = b.boxed_site(site);
            }
        }
        (b.latency(latency).build(), clock.expect("index is a corpus site"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic() {
        let a = SiteSpec::derive(11, 3, None);
        let b = SiteSpec::derive(11, 3, None);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.page_inventory(), b.page_inventory());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SiteSpec::derive(11, 0, None);
        let b = SiteSpec::derive(23, 0, None);
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn oracle_matches_rendered_rows() {
        for seed in [11, 23, 47] {
            for spec in GenCorpus::generate(seed, 6).specs {
                let cat = spec.exemplar_cat().to_string();
                let sub = spec.needs_sub().then(|| spec.exemplar_sub().to_string());
                let expected = spec.oracle(&cat, sub.as_deref());
                assert!(!expected.is_empty(), "{}: exemplar oracle is empty", spec.host);
                // Every oracle row's item name appears in the page
                // inventory exactly once (items are globally unique).
                let all_pages: String =
                    spec.page_inventory().into_iter().map(|(_, html)| html).collect();
                for row in expected {
                    assert!(
                        all_pages.contains(&row.item),
                        "{}: oracle row {row:?} never rendered",
                        spec.host
                    );
                }
            }
        }
    }

    #[test]
    fn exemplar_paginates_when_pagination_is_on() {
        for spec in GenCorpus::generate(47, 8).specs {
            if !spec.topology.paginate {
                continue;
            }
            let sub = spec.needs_sub().then(|| spec.exemplar_sub().to_string());
            let n = spec.oracle(spec.exemplar_cat(), sub.as_deref()).len();
            assert!(
                n > 2 * spec.topology.page_size,
                "{}: exemplar browse must see two More pages ({n} rows, page size {})",
                spec.host,
                spec.topology.page_size
            );
        }
    }

    #[test]
    fn defect_knobs_set_their_manifests() {
        let corpus = GenCorpus::generate_with_defects(11, 6);
        for (i, spec) in corpus.specs.iter().enumerate() {
            assert_eq!(spec.expected_findings(), vec![Defect::ALL[i % 3].code()]);
        }
        for spec in GenCorpus::generate(11, 6).specs {
            assert!(spec.expected_findings().is_empty());
        }
    }

    #[test]
    fn corpus_web_serves_every_site() {
        let corpus = GenCorpus::generate(23, 5);
        let web = corpus.web(LatencyModel::zero());
        assert_eq!(web.hosts().len(), 5);
        for spec in &corpus.specs {
            let (resp, _) = web.fetch(&Request::get(Url::new(&spec.host, "/")));
            assert!(resp.is_ok(), "{} entry page failed", spec.host);
        }
    }

    #[test]
    fn drifting_site_changes_pages_only_after_advance() {
        let corpus = GenCorpus::generate(11, 3);
        let (web, clock) = corpus.web_with_drifting_site(0, LatencyModel::zero());
        let spec = &corpus.specs[0];
        let url = Url::new(&spec.host, "/");
        let (before, _) = web.fetch(&Request::get(url.clone()));
        let (same, _) = web.fetch(&Request::get(url.clone()));
        assert_eq!(before.html(), same.html(), "generation 0 is inert");
        clock.advance();
        // Prices render with a `$` prefix on result pages; the entry
        // page has none, so fetch a results page to see the rewrite.
        let pages = spec.page_inventory();
        let (desc, _) = pages.last().expect("inventory non-empty").clone();
        assert!(desc.contains("page") || desc.contains("cat"), "sanity: {desc}");
    }
}
