//! The simulated Web: a registry of sites behind a fetch interface.

use crate::latency::{FetchStats, LatencyModel};
use crate::request::{Request, Response};
use crate::url::Url;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One simulated Web site. Handlers are pure functions of the request
/// (all state lives in the site's dataset), which is what makes fetch
/// caching sound.
pub trait Site: Send + Sync {
    /// Host name, e.g. `www.newsday.com`.
    fn host(&self) -> &str;

    /// The site's entry-point URL (usually `http://host/`).
    fn entry(&self) -> Url {
        Url::new(self.host(), "/")
    }

    /// Serve a request.
    fn handle(&self, req: &Request) -> Response;
}

/// Boxed sites are sites too, so fault wrappers can wrap sites that
/// were already registered (see [`WebBuilder::map_sites`]).
impl Site for Box<dyn Site> {
    fn host(&self) -> &str {
        (**self).host()
    }

    fn entry(&self) -> Url {
        (**self).entry()
    }

    fn handle(&self, req: &Request) -> Response {
        (**self).handle(req)
    }
}

/// The simulated Web: sites indexed by host, with fetch statistics and a
/// latency model. Cloneable handle (`Arc` inside) so browser sessions and
/// parallel workers share one Web.
#[derive(Clone)]
pub struct SyntheticWeb {
    inner: Arc<WebInner>,
}

struct WebInner {
    sites: HashMap<String, Box<dyn Site>>,
    latency: LatencyModel,
    stats: Mutex<HashMap<String, FetchStats>>,
}

impl SyntheticWeb {
    pub fn builder() -> WebBuilder {
        WebBuilder { sites: Vec::new(), latency: LatencyModel::lan() }
    }

    /// Fetch a URL or submit a form. Returns the response and the
    /// *simulated* network latency charged (recorded in stats; not
    /// slept). Latency is the model's size-based transfer time plus any
    /// server-side stall the site (or a fault wrapper) imposed.
    pub fn fetch(&self, req: &Request) -> (Response, Duration) {
        let resp = match self.inner.sites.get(&req.url.host) {
            Some(site) => site.handle(req),
            None => Response::not_found(&format!("no such host {}", req.url.host)),
        };
        let latency = self.inner.latency.charge(resp.len_bytes()) + resp.stall;
        self.inner
            .stats
            .lock()
            .entry(req.url.host.clone())
            .or_default()
            .record(resp.len_bytes(), latency);
        (resp, latency)
    }

    pub fn latency_model(&self) -> LatencyModel {
        self.inner.latency
    }

    /// Fetch statistics per host since the last reset.
    pub fn stats(&self) -> HashMap<String, FetchStats> {
        self.inner.stats.lock().clone()
    }

    /// Total statistics across hosts.
    pub fn total_stats(&self) -> FetchStats {
        let mut total = FetchStats::default();
        for s in self.inner.stats.lock().values() {
            total.merge(s);
        }
        total
    }

    pub fn reset_stats(&self) {
        self.inner.stats.lock().clear();
    }

    /// Hosts served by this Web, sorted.
    pub fn hosts(&self) -> Vec<String> {
        let mut hs: Vec<String> = self.inner.sites.keys().cloned().collect();
        hs.sort();
        hs
    }

    /// Entry URL of a host, if registered.
    pub fn entry(&self, host: &str) -> Option<Url> {
        self.inner.sites.get(host).map(Site::entry)
    }
}

/// Builder for [`SyntheticWeb`].
pub struct WebBuilder {
    sites: Vec<Box<dyn Site>>,
    latency: LatencyModel,
}

impl WebBuilder {
    pub fn site(mut self, site: impl Site + 'static) -> WebBuilder {
        self.sites.push(Box::new(site));
        self
    }

    pub fn boxed_site(mut self, site: Box<dyn Site>) -> WebBuilder {
        self.sites.push(site);
        self
    }

    pub fn latency(mut self, model: LatencyModel) -> WebBuilder {
        self.latency = model;
        self
    }

    /// Transform every registered site through `wrap` (given its host),
    /// e.g. to inject faults into an otherwise standard web.
    pub fn map_sites(mut self, wrap: impl Fn(&str, Box<dyn Site>) -> Box<dyn Site>) -> WebBuilder {
        self.sites = self
            .sites
            .into_iter()
            .map(|s| {
                let host = s.host().to_string();
                wrap(&host, s)
            })
            .collect();
        self
    }

    pub fn build(self) -> SyntheticWeb {
        let mut sites = HashMap::new();
        for s in self.sites {
            let host = s.host().to_string();
            let prev = sites.insert(host.clone(), s);
            assert!(prev.is_none(), "duplicate site registered for host {host}");
        }
        SyntheticWeb {
            inner: Arc::new(WebInner {
                sites,
                latency: self.latency,
                stats: Mutex::new(HashMap::new()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    struct Echo;
    impl Site for Echo {
        fn host(&self) -> &str {
            "echo.test"
        }
        fn handle(&self, req: &Request) -> Response {
            Response::ok(format!("<html><body><p>{}</p>", req.url.path))
        }
    }

    #[test]
    fn fetch_routes_by_host() {
        let web = SyntheticWeb::builder().site(Echo).build();
        let (r, _) = web.fetch(&Request::get(Url::new("echo.test", "/hello")));
        assert!(r.is_ok());
        assert!(r.html().contains("/hello"));
        let (r404, _) = web.fetch(&Request::get(Url::new("nope.test", "/")));
        assert_eq!(r404.status, 404);
    }

    #[test]
    fn stats_recorded_per_host() {
        let web = SyntheticWeb::builder().site(Echo).build();
        web.fetch(&Request::get(Url::new("echo.test", "/a")));
        web.fetch(&Request::get(Url::new("echo.test", "/b")));
        let stats = web.stats();
        assert_eq!(stats["echo.test"].requests, 2);
        assert!(stats["echo.test"].bytes > 0);
        web.reset_stats();
        assert!(web.stats().is_empty());
    }

    #[test]
    fn latency_charged_not_slept() {
        let web = SyntheticWeb::builder().site(Echo).latency(LatencyModel::dialup_1999()).build();
        let t0 = std::time::Instant::now();
        let (_, simulated) = web.fetch(&Request::get(Url::new("echo.test", "/x")));
        assert!(simulated >= Duration::from_millis(250));
        assert!(t0.elapsed() < Duration::from_millis(100), "fetch must not sleep");
        assert_eq!(web.total_stats().simulated_network, simulated);
    }

    #[test]
    #[should_panic(expected = "duplicate site")]
    fn duplicate_hosts_rejected() {
        let _ = SyntheticWeb::builder().site(Echo).site(Echo).build();
    }

    #[test]
    fn clone_shares_state() {
        let web = SyntheticWeb::builder().site(Echo).build();
        let web2 = web.clone();
        web.fetch(&Request::get(Url::new("echo.test", "/")));
        assert_eq!(web2.total_stats().requests, 1);
    }
}
