//! Requests and responses exchanged with the simulated Web.

use crate::url::Url;
use bytes::Bytes;
use std::time::Duration;

/// HTTP method — the simulated CGI scripts accept both, like their
/// 1999 counterparts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    Get,
    Post,
}

/// A request: method, URL, and (for POST) form parameters. GET form
/// submissions carry their parameters in the URL query instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Request {
    pub method: Method,
    pub url: Url,
    /// POST body parameters, decoded. Sorted at construction so equal
    /// submissions hash equally (cache key).
    pub params: Vec<(String, String)>,
}

impl Request {
    pub fn get(url: Url) -> Request {
        Request { method: Method::Get, url, params: Vec::new() }
    }

    pub fn post<I, K, V>(url: Url, params: I) -> Request
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let mut params: Vec<(String, String)> =
            params.into_iter().map(|(k, v)| (k.into(), v.into())).collect();
        params.sort();
        Request { method: Method::Post, url, params }
    }

    /// A parameter from either the POST body or the URL query — CGI
    /// scripts look in both.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .or_else(|| self.url.param(key))
    }

    /// Non-empty parameter (sites treat `""` — the "any" option — as
    /// absent).
    pub fn param_nonempty(&self, key: &str) -> Option<&str> {
        self.param(key).filter(|v| !v.is_empty())
    }
}

/// A response: status plus HTML body, plus an optional server-side
/// stall — extra simulated latency a misbehaving (or fault-wrapped)
/// site adds on top of the transfer-time model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub body: Bytes,
    /// Simulated server delay charged on top of the latency model's
    /// size-based transfer time (zero for well-behaved sites).
    pub stall: Duration,
}

impl Response {
    pub fn ok(html: String) -> Response {
        Response { status: 200, body: Bytes::from(html), stall: Duration::ZERO }
    }

    pub fn not_found(msg: &str) -> Response {
        Response {
            status: 404,
            body: Bytes::from(format!("<html><body><h1>404</h1><p>{msg}</p>")),
            stall: Duration::ZERO,
        }
    }

    /// The same response, delayed by `stall` of simulated server time.
    pub fn with_stall(mut self, stall: Duration) -> Response {
        self.stall = stall;
        self
    }

    pub fn html(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }

    pub fn len_bytes(&self) -> usize {
        self.body.len()
    }

    pub fn is_ok(&self) -> bool {
        self.status == 200
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_params_sorted_for_cache_identity() {
        let u = Url::new("h", "/cgi");
        let a = Request::post(u.clone(), [("b", "2"), ("a", "1")]);
        let b = Request::post(u, [("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
    }

    #[test]
    fn param_lookup_prefers_body_then_query() {
        let u = Url::new("h", "/cgi").with_query([("x", "q"), ("y", "qq")]);
        let r = Request::post(u, [("x", "body")]);
        assert_eq!(r.param("x"), Some("body"));
        assert_eq!(r.param("y"), Some("qq"));
        assert_eq!(r.param("z"), None);
    }

    #[test]
    fn empty_param_treated_as_absent() {
        let r = Request::post(Url::new("h", "/"), [("make", "")]);
        assert_eq!(r.param("make"), Some(""));
        assert_eq!(r.param_nonempty("make"), None);
    }

    #[test]
    fn response_accessors() {
        let r = Response::ok("<p>hi".into());
        assert!(r.is_ok());
        assert_eq!(r.html(), "<p>hi");
        assert!(Response::not_found("x").status == 404);
    }
}
