//! Minimal URLs for the simulated Web.
//!
//! Only what 1999-era navigation needs: `http://host/path?query`,
//! relative-reference resolution, and query-string encoding.

use std::fmt;

/// An absolute URL (scheme is implicitly `http`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url {
    pub host: String,
    /// Always begins with `/`.
    pub path: String,
    /// Decoded query parameters, in order.
    pub query: Vec<(String, String)>,
}

impl Url {
    pub fn new(host: &str, path: &str) -> Url {
        let path = if path.starts_with('/') { path.to_string() } else { format!("/{path}") };
        Url { host: host.to_string(), path, query: Vec::new() }
    }

    pub fn with_query<I, K, V>(mut self, params: I) -> Url
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        self.query.extend(params.into_iter().map(|(k, v)| (k.into(), v.into())));
        self
    }

    /// Parse an absolute URL (`http://host/path?a=b`). Returns `None` for
    /// anything else.
    pub fn parse(s: &str) -> Option<Url> {
        let rest = s.strip_prefix("http://")?;
        let (host, tail) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host.is_empty() {
            return None;
        }
        let (path, query) = match tail.find('?') {
            Some(i) => (&tail[..i], parse_query(&tail[i + 1..])),
            None => (tail, Vec::new()),
        };
        Some(Url { host: host.to_string(), path: path.to_string(), query })
    }

    /// Resolve `href` against this URL: absolute URLs pass through,
    /// `/rooted` paths replace the path, relative paths resolve against
    /// the current directory.
    pub fn resolve(&self, href: &str) -> Url {
        if let Some(abs) = Url::parse(href) {
            return abs;
        }
        let (path_part, query_part) = match href.find('?') {
            Some(i) => (&href[..i], parse_query(&href[i + 1..])),
            None => (href, Vec::new()),
        };
        let path = if path_part.starts_with('/') {
            path_part.to_string()
        } else if path_part.is_empty() {
            self.path.clone()
        } else {
            let dir = match self.path.rfind('/') {
                Some(i) => &self.path[..=i],
                None => "/",
            };
            format!("{dir}{path_part}")
        };
        Url { host: self.host.clone(), path, query: query_part }
    }

    /// First query value for `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// URL without its query (identity of the underlying page/script).
    pub fn base(&self) -> Url {
        Url { host: self.host.clone(), path: self.path.clone(), query: Vec::new() }
    }
}

fn parse_query(s: &str) -> Vec<(String, String)> {
    s.split('&')
        .filter(|p| !p.is_empty())
        .map(|p| match p.find('=') {
            Some(i) => (decode(&p[..i]), decode(&p[i + 1..])),
            None => (decode(p), String::new()),
        })
        .collect()
}

/// Percent-decoding (plus `+` as space).
fn decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%'); // stray percent: keep as-is
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encoding for query components.
pub fn encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http://{}{}", self.host, self.path)?;
        if !self.query.is_empty() {
            let parts: Vec<String> =
                self.query.iter().map(|(k, v)| format!("{}={}", encode(k), encode(v))).collect();
            write!(f, "?{}", parts.join("&"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let u = Url::parse("http://www.newsday.com/cgi-bin/nclassy?make=ford&model=escort")
            .expect("parses");
        assert_eq!(u.host, "www.newsday.com");
        assert_eq!(u.path, "/cgi-bin/nclassy");
        assert_eq!(u.param("make"), Some("ford"));
        assert_eq!(u.to_string(), "http://www.newsday.com/cgi-bin/nclassy?make=ford&model=escort");
    }

    #[test]
    fn parse_host_only() {
        let u = Url::parse("http://www.kbb.com").expect("parses");
        assert_eq!(u.path, "/");
    }

    #[test]
    fn parse_rejects_non_http() {
        assert!(Url::parse("ftp://x/").is_none());
        assert!(Url::parse("/relative").is_none());
        assert!(Url::parse("http://").is_none());
    }

    #[test]
    fn resolve_rooted_and_relative() {
        let base = Url::parse("http://h/a/b/page.html").expect("parses");
        assert_eq!(base.resolve("/x").path, "/x");
        assert_eq!(base.resolve("next.html").path, "/a/b/next.html");
        assert_eq!(base.resolve("http://other/z").host, "other");
        assert_eq!(base.resolve("?p=2").path, "/a/b/page.html");
        assert_eq!(base.resolve("?p=2").param("p"), Some("2"));
    }

    #[test]
    fn query_decoding() {
        let u = Url::parse("http://h/?q=new+york&x=a%26b").expect("parses");
        assert_eq!(u.param("q"), Some("new york"));
        assert_eq!(u.param("x"), Some("a&b"));
    }

    #[test]
    fn encode_special() {
        assert_eq!(encode("a&b c"), "a%26b+c");
        assert_eq!(encode("safe-_.~"), "safe-_.~");
    }

    #[test]
    fn base_strips_query() {
        let u = Url::new("h", "/p").with_query([("a", "1")]);
        assert!(u.base().query.is_empty());
        assert_eq!(u.base().path, "/p");
    }
}
