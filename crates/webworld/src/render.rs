//! HTML page construction for the simulated sites.
//!
//! Every site renders genuine HTML through this builder — the navigation
//! layer sees only markup, never the underlying dataset. The builder has
//! an **ill-formed mode** reproducing the faulty HTML the paper calls
//! the main practical problem: closing tags for `td`/`tr`/`li`/`p` are
//! omitted and the occasional attribute quote is dropped, which the
//! `webbase-html` parser must recover from.

use crate::url::encode;
use webbase_html::escape::escape;

/// Cell content in a rendered table.
pub enum Cell {
    Text(String),
    /// Text wrapped in a link.
    Link {
        text: String,
        href: String,
    },
}

impl Cell {
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    pub fn link(text: impl Into<String>, href: impl Into<String>) -> Cell {
        Cell::Link { text: text.into(), href: href.into() }
    }
}

/// A form widget to render.
pub enum Widget {
    Text { name: String, label: String, maxlength: Option<u32> },
    Select { name: String, label: String, options: Vec<String>, include_any: bool },
    Radio { name: String, label: String, options: Vec<String> },
    Checkbox { name: String, label: String },
    Hidden { name: String, value: String },
}

impl Widget {
    pub fn text(name: &str, label: &str) -> Widget {
        Widget::Text { name: name.into(), label: label.into(), maxlength: Some(40) }
    }

    pub fn select(name: &str, label: &str, options: &[&str], include_any: bool) -> Widget {
        Widget::Select {
            name: name.into(),
            label: label.into(),
            options: options.iter().map(ToString::to_string).collect(),
            include_any,
        }
    }

    pub fn select_owned(
        name: &str,
        label: &str,
        options: Vec<String>,
        include_any: bool,
    ) -> Widget {
        Widget::Select { name: name.into(), label: label.into(), options, include_any }
    }

    pub fn radio(name: &str, label: &str, options: &[&str]) -> Widget {
        Widget::Radio {
            name: name.into(),
            label: label.into(),
            options: options.iter().map(ToString::to_string).collect(),
        }
    }

    pub fn hidden(name: &str, value: &str) -> Widget {
        Widget::Hidden { name: name.into(), value: value.into() }
    }
}

/// Accumulates a page. `ill_formed` mode drops closing tags the way
/// careless 1999 markup did.
pub struct PageBuilder {
    title: String,
    body: String,
    ill_formed: bool,
}

impl PageBuilder {
    pub fn new(title: &str) -> PageBuilder {
        PageBuilder { title: title.to_string(), body: String::new(), ill_formed: false }
    }

    /// Enable faulty-HTML rendering for this page.
    pub fn ill_formed(mut self) -> PageBuilder {
        self.ill_formed = true;
        self
    }

    pub fn heading(mut self, text: &str) -> PageBuilder {
        self.body.push_str(&format!("<h1>{}</h1>\n", escape(text)));
        self
    }

    pub fn para(mut self, text: &str) -> PageBuilder {
        if self.ill_formed {
            self.body.push_str(&format!("<p>{}\n", escape(text)));
        } else {
            self.body.push_str(&format!("<p>{}</p>\n", escape(text)));
        }
        self
    }

    pub fn comment(mut self, text: &str) -> PageBuilder {
        self.body.push_str(&format!("<!-- {text} -->\n"));
        self
    }

    pub fn link(mut self, text: &str, href: &str) -> PageBuilder {
        self.body.push_str(&format!("<a href=\"{}\">{}</a>\n", escape(href), escape(text)));
        self
    }

    /// A bulleted list of links — the construct the paper describes as
    /// "attributes … implicitly defined through a set of links".
    pub fn link_list(mut self, items: &[(String, String)]) -> PageBuilder {
        self.body.push_str("<ul>\n");
        for (text, href) in items {
            if self.ill_formed {
                self.body.push_str(&format!("<li><a href={}>{}</a>\n", escape(href), escape(text)));
            } else {
                self.body.push_str(&format!(
                    "<li><a href=\"{}\">{}</a></li>\n",
                    escape(href),
                    escape(text)
                ));
            }
        }
        self.body.push_str("</ul>\n");
        self
    }

    /// Render a form.
    pub fn form(
        mut self,
        action: &str,
        method: &str,
        widgets: &[Widget],
        submit: &str,
    ) -> PageBuilder {
        self.body.push_str(&format!(
            "<form action=\"{}\" method=\"{}\">\n",
            escape(action),
            method
        ));
        for w in widgets {
            match w {
                Widget::Text { name, label, maxlength } => {
                    let ml = maxlength.map(|m| format!(" maxlength={m}")).unwrap_or_default();
                    self.body.push_str(&format!(
                        "{}: <input type=text name={name}{ml}><br>\n",
                        escape(label)
                    ));
                }
                Widget::Select { name, label, options, include_any } => {
                    self.body.push_str(&format!("{}: <select name={name}>\n", escape(label)));
                    if *include_any {
                        self.body.push_str("<option value=\"\">any</option>\n");
                    }
                    for o in options {
                        self.body.push_str(&format!(
                            "<option value=\"{}\">{}</option>\n",
                            escape(o),
                            escape(o)
                        ));
                    }
                    self.body.push_str("</select><br>\n");
                }
                Widget::Radio { name, label, options } => {
                    self.body.push_str(&format!("{}: ", escape(label)));
                    for o in options {
                        self.body.push_str(&format!(
                            "<input type=radio name={name} value=\"{}\">{} ",
                            escape(o),
                            escape(o)
                        ));
                    }
                    self.body.push_str("<br>\n");
                }
                Widget::Checkbox { name, label } => {
                    self.body.push_str(&format!(
                        "{}: <input type=checkbox name={name}><br>\n",
                        escape(label)
                    ));
                }
                Widget::Hidden { name, value } => {
                    self.body.push_str(&format!(
                        "<input type=hidden name={name} value=\"{}\">\n",
                        escape(value)
                    ));
                }
            }
        }
        self.body.push_str(&format!("<input type=submit value=\"{}\">\n</form>\n", escape(submit)));
        self
    }

    /// Render a data table.
    pub fn table(mut self, headers: &[&str], rows: &[Vec<Cell>]) -> PageBuilder {
        self.body.push_str("<table border=1>\n<tr>");
        for h in headers {
            self.body.push_str(&format!("<th>{}</th>", escape(h)));
        }
        self.body.push_str("</tr>\n");
        for row in rows {
            self.body.push_str("<tr>");
            for cell in row {
                let inner = match cell {
                    Cell::Text(t) => escape(t),
                    Cell::Link { text, href } => {
                        format!("<a href=\"{}\">{}</a>", escape(href), escape(text))
                    }
                };
                if self.ill_formed {
                    self.body.push_str(&format!("<td>{inner}"));
                } else {
                    self.body.push_str(&format!("<td>{inner}</td>"));
                }
            }
            if !self.ill_formed {
                self.body.push_str("</tr>");
            }
            self.body.push('\n');
        }
        self.body.push_str("</table>\n");
        self
    }

    /// A definition list (`<dl>`) of attribute/value pairs — the layout
    /// some sites use instead of tables.
    pub fn definition_list(mut self, pairs: &[(String, String)]) -> PageBuilder {
        self.body.push_str("<dl>\n");
        for (k, v) in pairs {
            if self.ill_formed {
                self.body.push_str(&format!("<dt>{}<dd>{}\n", escape(k), escape(v)));
            } else {
                self.body.push_str(&format!("<dt>{}</dt><dd>{}</dd>\n", escape(k), escape(v)));
            }
        }
        self.body.push_str("</dl>\n");
        self
    }

    pub fn finish(self) -> String {
        if self.ill_formed {
            // Missing </body></html>, like many real pages.
            format!(
                "<html><head><title>{}</title></head>\n<body>\n{}",
                escape(&self.title),
                self.body
            )
        } else {
            format!(
                "<html><head><title>{}</title></head>\n<body>\n{}</body></html>\n",
                escape(&self.title),
                self.body
            )
        }
    }
}

/// Build an `action?name=value&…` href for GET-style pagination links.
pub fn href_with_params(path: &str, params: &[(&str, &str)]) -> String {
    if params.is_empty() {
        return path.to_string();
    }
    let q: Vec<String> =
        params.iter().map(|(k, v)| format!("{}={}", encode(k), encode(v))).collect();
    format!("{path}?{}", q.join("&"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webbase_html::{extract, parse};

    #[test]
    fn form_renders_and_extracts() {
        let html = PageBuilder::new("t")
            .form(
                "/cgi-bin/q",
                "post",
                &[
                    Widget::select("make", "Make", &["ford", "jaguar"], false),
                    Widget::text("model", "Model"),
                    Widget::radio("cond", "Condition", &["good", "fair"]),
                ],
                "Search",
            )
            .finish();
        let doc = parse(&html);
        let forms = extract::forms(&doc);
        assert_eq!(forms.len(), 1);
        let f = &forms[0];
        assert_eq!(f.action, "/cgi-bin/q");
        assert_eq!(f.data_fields().count(), 3);
        assert_eq!(f.inferred_mandatory_fields(), vec!["make", "cond"]);
    }

    #[test]
    fn table_renders_and_extracts() {
        let html = PageBuilder::new("t")
            .table(&["Make", "Price"], &[vec![Cell::link("ford", "/car/1"), Cell::text("$500")]])
            .finish();
        let doc = parse(&html);
        let tables = extract::tables(&doc);
        assert_eq!(tables[0].header, vec!["Make", "Price"]);
        assert_eq!(tables[0].links[0][0].as_deref(), Some("/car/1"));
    }

    #[test]
    fn ill_formed_still_parses() {
        let html = PageBuilder::new("t")
            .ill_formed()
            .para("intro")
            .table(&["A"], &[vec![Cell::text("1")], vec![Cell::text("2")]])
            .link_list(&[("x".into(), "/x".into())])
            .finish();
        assert!(!html.contains("</td>"));
        let doc = parse(&html);
        let tables = extract::tables(&doc);
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(extract::links(&doc).len(), 1);
    }

    #[test]
    fn href_params_encode() {
        assert_eq!(href_with_params("/q", &[("make", "ford"), ("m", "a b")]), "/q?make=ford&m=a+b");
        assert_eq!(href_with_params("/q", &[]), "/q");
    }

    #[test]
    fn select_any_option() {
        let html = PageBuilder::new("t")
            .form("/q", "get", &[Widget::select("y", "Year", &["1998"], true)], "Go")
            .finish();
        let doc = parse(&html);
        let f = &extract::forms(&doc)[0];
        // "any" option present → not inferred mandatory
        assert_eq!(f.fields[0].kind.inferred_mandatory(), Some(false));
    }
}
