//! Fault injection: wrappers that degrade a site deterministically.
//!
//! "Given the dynamic nature of the Web…" — real 1999 servers dropped
//! requests, timed out, and served errors. These wrappers let the test
//! suite exercise the navigation layer's behaviour under failure without
//! nondeterminism: failures are a pure function of a counter seeded at
//! construction.

use crate::request::{Request, Response};
use crate::server::Site;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fails every `period`-th request with HTTP 500 (deterministic given
/// the request order).
pub struct FlakySite<S> {
    inner: S,
    period: u64,
    counter: AtomicU64,
}

impl<S: Site> FlakySite<S> {
    /// Wrap `inner`; every `period`-th request fails. `period` 0 never
    /// fails.
    pub fn new(inner: S, period: u64) -> FlakySite<S> {
        FlakySite { inner, period, counter: AtomicU64::new(0) }
    }
}

impl<S: Site> Site for FlakySite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if self.period > 0 && n.is_multiple_of(self.period) {
            return Response {
                status: 500,
                body: bytes::Bytes::from_static(b"<html><body><h1>500 Internal Server Error</h1>"),
                stall: Duration::ZERO,
            };
        }
        self.inner.handle(req)
    }
}

/// Serves the inner site's pages *truncated* to `max_bytes` —
/// the mid-transfer-disconnect failure mode. Truncation is clamped to a
/// char boundary so the response stays valid UTF-8 (as a browser's
/// decoder would ensure).
pub struct TruncatingSite<S> {
    inner: S,
    max_bytes: usize,
}

impl<S: Site> TruncatingSite<S> {
    pub fn new(inner: S, max_bytes: usize) -> TruncatingSite<S> {
        TruncatingSite { inner, max_bytes }
    }
}

impl<S: Site> Site for TruncatingSite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let mut resp = self.inner.handle(req);
        if resp.body.len() <= self.max_bytes {
            return resp;
        }
        // Back off to a UTF-8 char boundary by scanning continuation
        // bytes directly; the slice shares the response's allocation
        // (no String round trip).
        let mut cut = self.max_bytes;
        while cut > 0 && resp.body[cut] & 0xC0 == 0x80 {
            cut -= 1;
        }
        resp.body = resp.body.slice(..cut);
        resp
    }
}

/// Delays every `period`-th response by `stall` of simulated server
/// time — the hung-CGI-script failure mode. The stall is charged to the
/// simulated network clock (never slept), so a browser with a fetch
/// timeout observes it as a timeout, deterministically.
pub struct StallingSite<S> {
    inner: S,
    period: u64,
    stall: Duration,
    counter: AtomicU64,
}

impl<S: Site> StallingSite<S> {
    /// Wrap `inner`; every `period`-th request stalls for `stall`.
    /// `period` 0 never stalls.
    pub fn new(inner: S, period: u64, stall: Duration) -> StallingSite<S> {
        StallingSite { inner, period, stall, counter: AtomicU64::new(0) }
    }
}

impl<S: Site> Site for StallingSite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let resp = self.inner.handle(req);
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if self.period > 0 && n.is_multiple_of(self.period) {
            let stall = resp.stall + self.stall;
            resp.with_stall(stall)
        } else {
            resp
        }
    }
}

/// Delays *every* response by a constant `delay` of simulated server
/// time — the uniformly-slow-server failure mode. Unlike
/// [`StallingSite`]'s periodic spikes, the constant drain makes deadline
/// consumption exactly predictable: a query with a simulated deadline of
/// `k × delay` affords at most `k` fetches, which is what the
/// budget-exhaustion experiments need to be deterministic.
pub struct DelayedSite<S> {
    inner: S,
    delay: Duration,
}

impl<S: Site> DelayedSite<S> {
    /// Wrap `inner`; every response carries `delay` extra stall.
    pub fn new(inner: S, delay: Duration) -> DelayedSite<S> {
        DelayedSite { inner, delay }
    }
}

impl<S: Site> Site for DelayedSite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let resp = self.inner.handle(req);
        let stall = resp.stall + self.delay;
        resp.with_stall(stall)
    }
}

/// The CGI state-token failure mode: the site threads a session token
/// through every parameterised link it serves, and rejects tokens older
/// than `ttl` requests with HTTP 440 ("Login Time-out", the 1999 IIS
/// status). The rejection body names the expired parameter so a client
/// can re-enter the chain from its checkpointed inputs — the remaining
/// query parameters — instead of restarting the whole session.
///
/// Token grammar: requests without a `sess` parameter are granted one
/// (every `href="…?…"` in the response gets `&sess=<n>` appended, where
/// `n` is the server's request counter); requests carrying `sess=<k>`
/// are served iff no more than `ttl` requests have hit the server since
/// the token was minted.
pub struct ExpiringSessionSite<S> {
    inner: S,
    ttl: u64,
    counter: AtomicU64,
}

/// The session parameter [`ExpiringSessionSite`] threads through links.
pub const SESSION_PARAM: &str = "sess";

impl<S: Site> ExpiringSessionSite<S> {
    /// Wrap `inner`; tokens expire once `ttl` further requests have been
    /// served. `ttl` 0 expires every token on its first use.
    pub fn new(inner: S, ttl: u64) -> ExpiringSessionSite<S> {
        ExpiringSessionSite { inner, ttl, counter: AtomicU64::new(0) }
    }

    /// Append `&sess=<n>` inside every quoted href that already carries
    /// a query string (static page links stay stateless).
    fn stamp(body: &str, n: u64) -> String {
        let mut out = String::with_capacity(body.len() + 64);
        let mut rest = body;
        while let Some(i) = rest.find("href=\"") {
            let after = &rest[i + 6..];
            let Some(close) = after.find('"') else { break };
            let href = &after[..close];
            out.push_str(&rest[..i + 6]);
            out.push_str(href);
            if href.contains('?') {
                out.push_str(&format!("&amp;{SESSION_PARAM}={n}"));
            }
            rest = &after[close..];
        }
        out.push_str(rest);
        out
    }

    /// `req` without its session parameter (the checkpointed inputs).
    fn stripped(req: &Request) -> Request {
        let mut url = req.url.clone();
        url.query.retain(|(k, _)| k != SESSION_PARAM);
        let mut req = req.clone();
        req.url = url;
        req.params.retain(|(k, _)| k != SESSION_PARAM);
        req
    }
}

impl<S: Site> Site for ExpiringSessionSite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(tok) = req.param(SESSION_PARAM) {
            let minted: Option<u64> = tok.parse().ok();
            let fresh = minted.is_some_and(|k| n.saturating_sub(k) <= self.ttl);
            if !fresh {
                return Response {
                    status: 440,
                    body: bytes::Bytes::from(format!(
                        "<html><body><h1>440 Login Time-out</h1>\
                         <p>expired-param: {SESSION_PARAM}</p>"
                    )),
                    stall: Duration::ZERO,
                };
            }
        }
        let resp = self.inner.handle(&Self::stripped(req));
        if resp.is_ok() {
            let stamped = Self::stamp(resp.html(), n);
            Response { body: bytes::Bytes::from(stamped), ..resp }
        } else {
            resp
        }
    }
}

/// The site-evolution failure mode: the site's markup drifts between
/// recording and execution. A plain string rewrite (`needle` →
/// `replacement`) applied to served pages, optionally scoped to one
/// path and optionally deferred until the `starting_at`-th request —
/// enough to rename a link, an option, or a form field deterministically
/// mid-query.
pub struct DriftingSite<S> {
    inner: S,
    needle: String,
    replacement: String,
    only_path: Option<String>,
    from_request: u64,
    counter: AtomicU64,
}

impl<S: Site> DriftingSite<S> {
    pub fn new(inner: S, needle: &str, replacement: &str) -> DriftingSite<S> {
        DriftingSite {
            inner,
            needle: needle.to_string(),
            replacement: replacement.to_string(),
            only_path: None,
            from_request: 1,
            counter: AtomicU64::new(0),
        }
    }

    /// Restrict the rewrite to responses for exactly this path.
    pub fn only_on_path(mut self, path: &str) -> DriftingSite<S> {
        self.only_path = Some(path.to_string());
        self
    }

    /// Defer the drift: requests before the `n`-th are served unchanged.
    pub fn starting_at(mut self, n: u64) -> DriftingSite<S> {
        self.from_request = n;
        self
    }
}

impl<S: Site> Site for DriftingSite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        let resp = self.inner.handle(req);
        let in_scope = self.only_path.as_ref().is_none_or(|p| *p == req.url.path);
        if n >= self.from_request && in_scope && resp.is_ok() {
            let drifted = resp.html().replace(&self.needle, &self.replacement);
            Response { body: bytes::Bytes::from(drifted), ..resp }
        } else {
            resp
        }
    }
}

/// One scheduled markup mutation: a plain string rewrite applied to
/// served pages once its position in a [`MutatingSite`] schedule has
/// been reached by the site's generation clock. Optionally scoped to a
/// single path, like [`DriftingSite`]'s rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutation {
    pub needle: String,
    pub replacement: String,
    pub only_path: Option<String>,
}

impl Mutation {
    pub fn new(needle: &str, replacement: &str) -> Mutation {
        Mutation {
            needle: needle.to_string(),
            replacement: replacement.to_string(),
            only_path: None,
        }
    }

    /// Restrict the rewrite to responses for exactly this path.
    pub fn on_path(mut self, path: &str) -> Mutation {
        self.only_path = Some(path.to_string());
        self
    }
}

/// The shared generation clock of a [`MutatingSite`]: how many of the
/// scheduled mutations are live. Unlike [`DriftingSite`]'s request
/// counter, the clock is advanced *explicitly* by the harness, so the
/// site's current state is a pure function of `(request, generation)` —
/// never of how much traffic happened to flow. That is what makes
/// "maintained view ≡ cold re-run at the same generation" a
/// well-defined property.
#[derive(Debug, Clone, Default)]
pub struct MutationClock {
    gen: Arc<AtomicU64>,
}

impl MutationClock {
    /// Apply the next scheduled mutation; returns the new generation.
    pub fn advance(&self) -> u64 {
        self.gen.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Jump the clock to an absolute generation.
    pub fn set(&self, generation: u64) {
        self.gen.store(generation, Ordering::SeqCst);
    }

    /// Scheduled mutations currently live.
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::SeqCst)
    }
}

/// The drift-storm failure mode: the site applies a *schedule* of
/// mutations, each switched on by an externally advanced generation
/// clock. Live mutations are applied in schedule order to every
/// successful response in scope, so repeated fetches at one generation
/// are deterministic and byte-identical.
pub struct MutatingSite<S> {
    inner: S,
    schedule: Vec<Mutation>,
    clock: MutationClock,
}

impl<S: Site> MutatingSite<S> {
    /// Wrap `inner` with a mutation schedule; returns the site and the
    /// clock that switches its mutations on.
    pub fn new(inner: S, schedule: Vec<Mutation>) -> (MutatingSite<S>, MutationClock) {
        let clock = MutationClock::default();
        (MutatingSite { inner, schedule, clock: clock.clone() }, clock)
    }
}

impl<S: Site> Site for MutatingSite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let resp = self.inner.handle(req);
        let live = (self.clock.generation() as usize).min(self.schedule.len());
        if live == 0 || !resp.is_ok() {
            return resp;
        }
        let mut body = resp.html().to_string();
        let mut touched = false;
        for m in &self.schedule[..live] {
            if m.only_path.as_ref().is_none_or(|p| *p == req.url.path) && body.contains(&m.needle) {
                body = body.replace(&m.needle, &m.replacement);
                touched = true;
            }
        }
        if touched {
            Response { body: bytes::Bytes::from(body), ..resp }
        } else {
            resp
        }
    }
}

/// A deterministic mutation schedule: `len` distinct picks from `pool`,
/// ordered by a seeded LCG permutation (no external RNG dependency, so
/// the same seed yields the same drift storm everywhere).
pub fn seeded_schedule(seed: u64, pool: &[Mutation], len: usize) -> Vec<Mutation> {
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..idx.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        idx.swap(i, j);
    }
    idx.into_iter().take(len.min(pool.len())).map(|i| pool[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::latency::LatencyModel;
    use crate::server::SyntheticWeb;
    use crate::sites::Kellys;
    use crate::url::Url;

    #[test]
    fn flaky_site_fails_on_schedule() {
        let web = SyntheticWeb::builder()
            .site(FlakySite::new(Kellys::new(1), 3))
            .latency(LatencyModel::zero())
            .build();
        let mut statuses = Vec::new();
        for _ in 0..6 {
            let (r, _) = web.fetch(&Request::get(Url::new("www.kbb.com", "/")));
            statuses.push(r.status);
        }
        assert_eq!(statuses, vec![200, 200, 500, 200, 200, 500]);
    }

    #[test]
    fn period_zero_never_fails() {
        let web = SyntheticWeb::builder()
            .site(FlakySite::new(Kellys::new(1), 0))
            .latency(LatencyModel::zero())
            .build();
        for _ in 0..10 {
            let (r, _) = web.fetch(&Request::get(Url::new("www.kbb.com", "/")));
            assert_eq!(r.status, 200);
        }
    }

    #[test]
    fn truncating_site_cuts_pages_but_stays_utf8() {
        let web = SyntheticWeb::builder()
            .site(TruncatingSite::new(Kellys::new(1), 120))
            .latency(LatencyModel::zero())
            .build();
        let (r, _) = web.fetch(&Request::get(Url::new("www.kbb.com", "/")));
        assert!(r.is_ok());
        assert!(r.len_bytes() <= 120);
        // The recovering parser still produces a tree.
        let doc = webbase_html::parse(r.html());
        assert!(!doc.is_empty());
    }

    /// A page that is almost entirely multi-byte UTF-8.
    struct UnicodeSite;
    impl Site for UnicodeSite {
        fn host(&self) -> &str {
            "unicode.test"
        }
        fn handle(&self, _req: &Request) -> Response {
            Response::ok(format!("<html><body><p>{}</p>", "é中€—ß".repeat(40)))
        }
    }

    #[test]
    fn truncation_lands_on_char_boundaries_for_multibyte_pages() {
        let site = TruncatingSite::new(UnicodeSite, 0);
        // Every cut length must produce valid UTF-8, never panic, and
        // never exceed the limit.
        for max in 0..80 {
            let t = TruncatingSite::new(UnicodeSite, max);
            let r = t.handle(&Request::get(Url::new("unicode.test", "/")));
            assert!(r.len_bytes() <= max, "cut {max} produced {} bytes", r.len_bytes());
            assert!(std::str::from_utf8(&r.body).is_ok(), "cut {max} split a multi-byte char");
        }
        let _ = site;
    }

    #[test]
    fn truncation_shares_the_allocation() {
        // The truncated body equals a prefix of the original text —
        // byte-sliced, not re-encoded.
        let full = UnicodeSite.handle(&Request::get(Url::new("unicode.test", "/")));
        let t = TruncatingSite::new(UnicodeSite, 33);
        let cut = t.handle(&Request::get(Url::new("unicode.test", "/")));
        assert!(full.html().starts_with(cut.html()));
        assert!(cut.len_bytes() <= 33);
    }

    #[test]
    fn delayed_site_charges_a_constant_stall() {
        let delay = std::time::Duration::from_millis(250);
        let web = SyntheticWeb::builder()
            .site(DelayedSite::new(Kellys::new(1), delay))
            .latency(LatencyModel::zero())
            .build();
        for _ in 0..4 {
            let (r, d) = web.fetch(&Request::get(Url::new("www.kbb.com", "/")));
            assert!(r.is_ok(), "a delay is slowness, not an error");
            assert_eq!(d, delay, "every response pays exactly the configured delay");
        }
    }

    #[test]
    fn stalling_site_delays_on_schedule() {
        let web = SyntheticWeb::builder()
            .site(StallingSite::new(Kellys::new(1), 3, std::time::Duration::from_secs(60)))
            .latency(LatencyModel::zero())
            .build();
        let mut latencies = Vec::new();
        for _ in 0..6 {
            let (r, d) = web.fetch(&Request::get(Url::new("www.kbb.com", "/")));
            assert!(r.is_ok(), "a stall is slowness, not an error");
            latencies.push(d);
        }
        let minute = std::time::Duration::from_secs(60);
        assert!(latencies[0] < minute && latencies[1] < minute);
        assert!(latencies[2] >= minute, "third request stalls");
        assert!(latencies[5] >= minute, "sixth request stalls");
        assert!(latencies[3] < minute && latencies[4] < minute);
    }

    /// A paginated CGI: every page links to the next via a query href.
    struct ChainSite;
    impl Site for ChainSite {
        fn host(&self) -> &str {
            "chain.test"
        }
        fn handle(&self, req: &Request) -> Response {
            let page: u32 =
                req.param_nonempty("page").and_then(|p| p.parse().ok()).unwrap_or_default();
            Response::ok(format!(
                "<html><body><p>page {page}</p>\
                 <a href=\"/list?page={}\">More</a>",
                page + 1
            ))
        }
    }

    #[test]
    fn session_site_stamps_query_hrefs_and_accepts_fresh_tokens() {
        let site = ExpiringSessionSite::new(ChainSite, 5);
        let first = site.handle(&Request::get(Url::new("chain.test", "/list")));
        assert!(first.is_ok());
        assert!(
            first.html().contains("page=1&amp;sess=1"),
            "query hrefs must carry the token: {}",
            first.html()
        );
        let followed =
            Url::new("chain.test", "/list").with_query([("page", "1"), (SESSION_PARAM, "1")]);
        let second = site.handle(&Request::get(followed));
        assert!(second.is_ok(), "fresh token must be honoured: {}", second.status);
        assert!(second.html().contains("page 1"));
    }

    #[test]
    fn session_site_rejects_stale_tokens_naming_the_param() {
        let site = ExpiringSessionSite::new(ChainSite, 0);
        let _ = site.handle(&Request::get(Url::new("chain.test", "/list")));
        let stale =
            Url::new("chain.test", "/list").with_query([("page", "1"), (SESSION_PARAM, "1")]);
        let resp = site.handle(&Request::get(stale.clone()));
        assert_eq!(resp.status, 440);
        assert!(resp.html().contains(&format!("expired-param: {SESSION_PARAM}")));
        // The checkpointed inputs — the same request minus the token —
        // re-enter the chain at the same page.
        let mut retry = stale;
        retry.query.retain(|(k, _)| k != SESSION_PARAM);
        let resp = site.handle(&Request::get(retry));
        assert!(resp.is_ok(), "stripped replay must be granted a new session");
        assert!(resp.html().contains("page 1"), "chain resumes at the checkpoint, not page 0");
    }

    #[test]
    fn drifting_site_rewrites_in_scope_only() {
        let site = DriftingSite::new(ChainSite, ">More<", ">Next batch<").only_on_path("/list");
        let hit = site.handle(&Request::get(Url::new("chain.test", "/list")));
        assert!(hit.html().contains(">Next batch<"), "{}", hit.html());
        let miss = site.handle(&Request::get(Url::new("chain.test", "/other")));
        assert!(miss.html().contains(">More<"), "out-of-scope paths serve the original markup");
    }

    #[test]
    fn drifting_site_can_defer_the_drift() {
        let site = DriftingSite::new(ChainSite, ">More<", ">Next<").starting_at(3);
        for n in 1..=4 {
            let resp = site.handle(&Request::get(Url::new("chain.test", "/list")));
            let drifted = resp.html().contains(">Next<");
            assert_eq!(drifted, n >= 3, "request {n}: drift must begin exactly at 3");
        }
    }

    #[test]
    fn mutating_site_is_a_pure_function_of_request_and_generation() {
        let schedule = vec![
            Mutation::new(">More<", ">Next<"),
            Mutation::new("page", "sheet").on_path("/list"),
        ];
        let (site, clock) = MutatingSite::new(ChainSite, schedule);
        let req = Request::get(Url::new("chain.test", "/list"));
        // Generation 0: untouched, and repeat fetches are identical.
        assert_eq!(site.handle(&req), site.handle(&req));
        assert!(site.handle(&req).html().contains(">More<"));
        // Generation 1: first mutation live, second still dormant.
        assert_eq!(clock.advance(), 1);
        assert!(site.handle(&req).html().contains(">Next<"));
        assert!(site.handle(&req).html().contains("page"));
        // Generation 2: both live; repeat fetches still identical.
        clock.advance();
        let a = site.handle(&req);
        assert!(a.html().contains("sheet") && !a.html().contains("page"));
        assert_eq!(a, site.handle(&req));
        // Out-of-scope path keeps the path-scoped mutation off.
        let other = site.handle(&Request::get(Url::new("chain.test", "/other")));
        assert!(other.html().contains("page"), "{}", other.html());
        // A generation past the schedule clamps.
        clock.set(99);
        assert_eq!(site.handle(&req), a);
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_distinct() {
        let pool: Vec<Mutation> =
            (0..8).map(|i| Mutation::new(&format!("n{i}"), &format!("r{i}"))).collect();
        let a = seeded_schedule(11, &pool, 5);
        let b = seeded_schedule(11, &pool, 5);
        assert_eq!(a, b, "same seed, same storm");
        assert_eq!(a.len(), 5);
        let mut needles: Vec<&str> = a.iter().map(|m| m.needle.as_str()).collect();
        needles.sort();
        needles.dedup();
        assert_eq!(needles.len(), 5, "picks are distinct");
        let c = seeded_schedule(23, &pool, 5);
        assert_ne!(a, c, "different seed, different storm");
        assert_eq!(seeded_schedule(47, &pool, 100).len(), pool.len(), "len clamps to the pool");
    }

    #[test]
    fn dataset_unaffected_by_wrappers() {
        // Wrappers change delivery, not content: a successful fetch
        // through the flaky wrapper equals the direct fetch.
        let d = Dataset::generate(1, 50);
        let _ = d; // Kellys is dataset-independent; the wrapper passes through
        let direct = Kellys::new(1).handle(&Request::get(Url::new("www.kbb.com", "/used")));
        let wrapped = FlakySite::new(Kellys::new(1), 100)
            .handle(&Request::get(Url::new("www.kbb.com", "/used")));
        assert_eq!(direct, wrapped);
    }
}
