//! Fault injection: wrappers that degrade a site deterministically.
//!
//! "Given the dynamic nature of the Web…" — real 1999 servers dropped
//! requests, timed out, and served errors. These wrappers let the test
//! suite exercise the navigation layer's behaviour under failure without
//! nondeterminism: failures are a pure function of a counter seeded at
//! construction.

use crate::request::{Request, Response};
use crate::server::Site;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fails every `period`-th request with HTTP 500 (deterministic given
/// the request order).
pub struct FlakySite<S> {
    inner: S,
    period: u64,
    counter: AtomicU64,
}

impl<S: Site> FlakySite<S> {
    /// Wrap `inner`; every `period`-th request fails. `period` 0 never
    /// fails.
    pub fn new(inner: S, period: u64) -> FlakySite<S> {
        FlakySite { inner, period, counter: AtomicU64::new(0) }
    }
}

impl<S: Site> Site for FlakySite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if self.period > 0 && n.is_multiple_of(self.period) {
            return Response {
                status: 500,
                body: bytes::Bytes::from_static(b"<html><body><h1>500 Internal Server Error</h1>"),
                stall: Duration::ZERO,
            };
        }
        self.inner.handle(req)
    }
}

/// Serves the inner site's pages *truncated* to `max_bytes` —
/// the mid-transfer-disconnect failure mode. Truncation is clamped to a
/// char boundary so the response stays valid UTF-8 (as a browser's
/// decoder would ensure).
pub struct TruncatingSite<S> {
    inner: S,
    max_bytes: usize,
}

impl<S: Site> TruncatingSite<S> {
    pub fn new(inner: S, max_bytes: usize) -> TruncatingSite<S> {
        TruncatingSite { inner, max_bytes }
    }
}

impl<S: Site> Site for TruncatingSite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let mut resp = self.inner.handle(req);
        if resp.body.len() <= self.max_bytes {
            return resp;
        }
        // Back off to a UTF-8 char boundary by scanning continuation
        // bytes directly; the slice shares the response's allocation
        // (no String round trip).
        let mut cut = self.max_bytes;
        while cut > 0 && resp.body[cut] & 0xC0 == 0x80 {
            cut -= 1;
        }
        resp.body = resp.body.slice(..cut);
        resp
    }
}

/// Delays every `period`-th response by `stall` of simulated server
/// time — the hung-CGI-script failure mode. The stall is charged to the
/// simulated network clock (never slept), so a browser with a fetch
/// timeout observes it as a timeout, deterministically.
pub struct StallingSite<S> {
    inner: S,
    period: u64,
    stall: Duration,
    counter: AtomicU64,
}

impl<S: Site> StallingSite<S> {
    /// Wrap `inner`; every `period`-th request stalls for `stall`.
    /// `period` 0 never stalls.
    pub fn new(inner: S, period: u64, stall: Duration) -> StallingSite<S> {
        StallingSite { inner, period, stall, counter: AtomicU64::new(0) }
    }
}

impl<S: Site> Site for StallingSite<S> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn entry(&self) -> crate::url::Url {
        self.inner.entry()
    }

    fn handle(&self, req: &Request) -> Response {
        let resp = self.inner.handle(req);
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if self.period > 0 && n.is_multiple_of(self.period) {
            let stall = resp.stall + self.stall;
            resp.with_stall(stall)
        } else {
            resp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::latency::LatencyModel;
    use crate::server::SyntheticWeb;
    use crate::sites::Kellys;
    use crate::url::Url;

    #[test]
    fn flaky_site_fails_on_schedule() {
        let web = SyntheticWeb::builder()
            .site(FlakySite::new(Kellys::new(1), 3))
            .latency(LatencyModel::zero())
            .build();
        let mut statuses = Vec::new();
        for _ in 0..6 {
            let (r, _) = web.fetch(&Request::get(Url::new("www.kbb.com", "/")));
            statuses.push(r.status);
        }
        assert_eq!(statuses, vec![200, 200, 500, 200, 200, 500]);
    }

    #[test]
    fn period_zero_never_fails() {
        let web = SyntheticWeb::builder()
            .site(FlakySite::new(Kellys::new(1), 0))
            .latency(LatencyModel::zero())
            .build();
        for _ in 0..10 {
            let (r, _) = web.fetch(&Request::get(Url::new("www.kbb.com", "/")));
            assert_eq!(r.status, 200);
        }
    }

    #[test]
    fn truncating_site_cuts_pages_but_stays_utf8() {
        let web = SyntheticWeb::builder()
            .site(TruncatingSite::new(Kellys::new(1), 120))
            .latency(LatencyModel::zero())
            .build();
        let (r, _) = web.fetch(&Request::get(Url::new("www.kbb.com", "/")));
        assert!(r.is_ok());
        assert!(r.len_bytes() <= 120);
        // The recovering parser still produces a tree.
        let doc = webbase_html::parse(r.html());
        assert!(!doc.is_empty());
    }

    /// A page that is almost entirely multi-byte UTF-8.
    struct UnicodeSite;
    impl Site for UnicodeSite {
        fn host(&self) -> &str {
            "unicode.test"
        }
        fn handle(&self, _req: &Request) -> Response {
            Response::ok(format!("<html><body><p>{}</p>", "é中€—ß".repeat(40)))
        }
    }

    #[test]
    fn truncation_lands_on_char_boundaries_for_multibyte_pages() {
        let site = TruncatingSite::new(UnicodeSite, 0);
        // Every cut length must produce valid UTF-8, never panic, and
        // never exceed the limit.
        for max in 0..80 {
            let t = TruncatingSite::new(UnicodeSite, max);
            let r = t.handle(&Request::get(Url::new("unicode.test", "/")));
            assert!(r.len_bytes() <= max, "cut {max} produced {} bytes", r.len_bytes());
            assert!(std::str::from_utf8(&r.body).is_ok(), "cut {max} split a multi-byte char");
        }
        let _ = site;
    }

    #[test]
    fn truncation_shares_the_allocation() {
        // The truncated body equals a prefix of the original text —
        // byte-sliced, not re-encoded.
        let full = UnicodeSite.handle(&Request::get(Url::new("unicode.test", "/")));
        let t = TruncatingSite::new(UnicodeSite, 33);
        let cut = t.handle(&Request::get(Url::new("unicode.test", "/")));
        assert!(full.html().starts_with(cut.html()));
        assert!(cut.len_bytes() <= 33);
    }

    #[test]
    fn stalling_site_delays_on_schedule() {
        let web = SyntheticWeb::builder()
            .site(StallingSite::new(Kellys::new(1), 3, std::time::Duration::from_secs(60)))
            .latency(LatencyModel::zero())
            .build();
        let mut latencies = Vec::new();
        for _ in 0..6 {
            let (r, d) = web.fetch(&Request::get(Url::new("www.kbb.com", "/")));
            assert!(r.is_ok(), "a stall is slowness, not an error");
            latencies.push(d);
        }
        let minute = std::time::Duration::from_secs(60);
        assert!(latencies[0] < minute && latencies[1] < minute);
        assert!(latencies[2] >= minute, "third request stalls");
        assert!(latencies[5] >= minute, "sixth request stalls");
        assert!(latencies[3] < minute && latencies[4] < minute);
    }

    #[test]
    fn dataset_unaffected_by_wrappers() {
        // Wrappers change delivery, not content: a successful fetch
        // through the flaky wrapper equals the direct fetch.
        let d = Dataset::generate(1, 50);
        let _ = d; // Kellys is dataset-independent; the wrapper passes through
        let direct = Kellys::new(1).handle(&Request::get(Url::new("www.kbb.com", "/used")));
        let wrapped = FlakySite::new(Kellys::new(1), 100)
            .handle(&Request::get(Url::new("www.kbb.com", "/used")));
        assert_eq!(direct, wrapped);
    }
}
