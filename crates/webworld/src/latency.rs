//! The simulated network/latency model.
//!
//! The paper's §7 timing table distinguishes **cpu time** from **elapsed
//! time** — elapsed is dominated by fetching and parsing pages over a
//! 1999 connection. We cannot reproduce a 1999 WAN, so fetches charge a
//! *simulated* latency (per request plus per byte) that is recorded in
//! the fetch statistics rather than slept. Benchmarks report cpu time
//! measured for real and elapsed time as cpu + simulated network.

use std::time::Duration;

/// Latency charged per fetch: `base + per_kb × size`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    pub base: Duration,
    pub per_kb: Duration,
}

impl LatencyModel {
    /// A 1999-ish dial-up/early-DSL profile: 250 ms round trip plus
    /// ~180 ms per KB (≈ 45 kbit/s effective).
    pub fn dialup_1999() -> LatencyModel {
        LatencyModel { base: Duration::from_millis(250), per_kb: Duration::from_millis(180) }
    }

    /// A LAN profile for tests that want near-zero simulated latency.
    pub fn lan() -> LatencyModel {
        LatencyModel { base: Duration::from_micros(200), per_kb: Duration::from_micros(20) }
    }

    /// No simulated latency at all.
    pub fn zero() -> LatencyModel {
        LatencyModel { base: Duration::ZERO, per_kb: Duration::ZERO }
    }

    /// Simulated time to fetch a response of `bytes` bytes.
    pub fn charge(&self, bytes: usize) -> Duration {
        self.base + self.per_kb.mul_f64(bytes as f64 / 1024.0)
    }
}

/// Aggregated fetch statistics (per site or global).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FetchStats {
    pub requests: u64,
    pub bytes: u64,
    /// Total simulated network time across all fetches.
    pub simulated_network: Duration,
}

impl FetchStats {
    pub fn record(&mut self, bytes: usize, latency: Duration) {
        self.requests += 1;
        self.bytes += bytes as u64;
        self.simulated_network += latency;
    }

    pub fn merge(&mut self, other: &FetchStats) {
        self.requests += other.requests;
        self.bytes += other.bytes;
        self.simulated_network += other.simulated_network;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_scales_with_size() {
        let m = LatencyModel::dialup_1999();
        assert!(m.charge(10_240) > m.charge(1_024));
        assert_eq!(LatencyModel::zero().charge(1 << 20), Duration::ZERO);
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let m = LatencyModel::lan();
        let mut s = FetchStats::default();
        s.record(1024, m.charge(1024));
        s.record(2048, m.charge(2048));
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes, 3072);
        let mut t = FetchStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.requests, 4);
    }
}
