//! The topology grammar of the generative webworld.
//!
//! A generated site is described by a [`Topology`]: a point in the
//! feature space the paper's navigation maps cover — entry-hub depth,
//! form-chain depth, link-defined attributes, "More" pagination, hidden
//! carry fields, ill-formed HTML — plus an optional [`Defect`] knob that
//! plants exactly one statically detectable navigation defect, and an
//! optional [`FaultKnob`] naming which `crate::faults` degrader wraps
//! the site. Everything is drawn from the deterministic [`GenRng`], so a
//! `(seed, index)` pair always yields the same topology.

/// SplitMix64 — the same tiny deterministic generator idiom the fault
/// schedules use. Not a statistical PRNG; a reproducible knob-picker.
#[derive(Debug, Clone)]
pub struct GenRng {
    state: u64,
}

impl GenRng {
    pub fn new(seed: u64) -> GenRng {
        GenRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// A biased coin: true with probability `num`/`den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.below(options.len())]
    }
}

/// A deliberately planted navigation defect. Each variant maps to
/// exactly one webcheck finding code — the site's expected-findings
/// manifest (`SiteSpec::expected_findings`) is derived from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// A reachable promo loop from which no data page is reachable:
    /// `E131 NONPRODUCTIVE_CYCLE`.
    TrapCycle,
    /// A "Start over" link from the data page back to the form, with
    /// pagination off, so the cycle through the data page shows no
    /// progress evidence: `W031 CYCLE_NO_PROGRESS`.
    NoProgressLoop,
    /// A hidden session token with a recorded fixed value on the second
    /// form of the chain: `W033 SESSION_REPLAY_HAZARD`. Forces a
    /// two-form chain.
    SessionReplay,
}

impl Defect {
    /// The webcheck code this knob plants.
    pub fn code(&self) -> &'static str {
        match self {
            Defect::TrapCycle => "E131",
            Defect::NoProgressLoop => "W031",
            Defect::SessionReplay => "W033",
        }
    }

    pub const ALL: [Defect; 3] = [Defect::TrapCycle, Defect::NoProgressLoop, Defect::SessionReplay];
}

/// Which `crate::faults` degrader wraps the generated site when the
/// corpus web is built with faults on (`GenCorpus::web_with_faults`).
/// The clean web (`GenCorpus::web`) ignores this knob — recording always
/// happens against the healthy site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKnob {
    /// Answer-preserving added latency (`DelayedSite`).
    Delayed { millis: u64 },
    /// Every `period`-th request fails (`FlakySite`) — exercises the
    /// navigator's retry/resilience path without changing answers.
    Flaky { period: u32 },
    /// The site carries the PR 8 mutation schedule (`MutatingSite`):
    /// each generation rewrites prices, so maintained views must be
    /// re-validated against cold re-runs.
    Drift,
}

/// One generated site's shape. All fields are drawn deterministically
/// from the corpus seed and site index.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Hub pages between the entry page and the search page (0–2).
    pub hub_depth: usize,
    /// Forms on the spine: 1 (category) or 2 (category → section).
    pub chain_depth: usize,
    /// The category is chosen through a set of links (the paper's
    /// link-defined attribute, AutoWeb-style) instead of a form. Only
    /// ever set with `chain_depth == 1`.
    pub cat_via_links: bool,
    /// Rows per result page when paginating.
    pub page_size: usize,
    /// Whether result pages paginate with a "More" link at all.
    pub paginate: bool,
    /// Result pages are emitted with unclosed tags (the parser-recovery
    /// case, NY-Daily-style). Answer-preserving.
    pub ill_formed: bool,
    /// The second form carries a hidden (non-session) carry field in
    /// addition to the server-side state. Only meaningful with
    /// `chain_depth == 2`.
    pub hidden_carry: bool,
    /// The planted defect, if any.
    pub defect: Option<Defect>,
    /// The fault wrapper applied by the faulty web builder, if any.
    pub fault: Option<FaultKnob>,
}

impl Topology {
    /// Draw a clean (defect-free) topology from the RNG.
    pub fn draw(rng: &mut GenRng) -> Topology {
        let chain_depth = if rng.chance(2, 5) { 2 } else { 1 };
        let cat_via_links = chain_depth == 1 && rng.chance(1, 3);
        let paginate = rng.chance(4, 5);
        let fault = match rng.below(6) {
            0 => Some(FaultKnob::Delayed { millis: 5 + rng.below(40) as u64 }),
            1 => Some(FaultKnob::Flaky { period: 5 + rng.below(5) as u32 }),
            2 => Some(FaultKnob::Drift),
            _ => None,
        };
        Topology {
            hub_depth: rng.below(3),
            chain_depth,
            cat_via_links,
            page_size: 2 + rng.below(3),
            paginate,
            ill_formed: rng.chance(1, 5),
            hidden_carry: chain_depth == 2 && rng.chance(1, 2),
            defect: None,
            fault,
        }
    }

    /// Force a defect knob on, adjusting the topology so the defect's
    /// finding actually triggers (see [`Defect`] docs): W031 requires
    /// the data-page cycle to show no progress, so pagination is turned
    /// off; W033 requires a second submit on the spine.
    pub fn with_defect(mut self, defect: Defect) -> Topology {
        match defect {
            Defect::NoProgressLoop => {
                self.paginate = false;
            }
            Defect::SessionReplay => {
                self.chain_depth = 2;
                self.cat_via_links = false;
            }
            Defect::TrapCycle => {}
        }
        self.defect = Some(defect);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = GenRng::new(42);
        let mut b = GenRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn draws_are_seed_stable() {
        let t1 = Topology::draw(&mut GenRng::new(7));
        let t2 = Topology::draw(&mut GenRng::new(7));
        assert_eq!(format!("{t1:?}"), format!("{t2:?}"));
    }

    #[test]
    fn defect_knobs_adjust_the_shape() {
        let t = Topology::draw(&mut GenRng::new(1)).with_defect(Defect::NoProgressLoop);
        assert!(!t.paginate, "W031 requires no progress evidence in the cycle");
        let t = Topology::draw(&mut GenRng::new(1)).with_defect(Defect::SessionReplay);
        assert_eq!(t.chain_depth, 2, "W033 needs a second submit on the spine");
        assert!(!t.cat_via_links);
    }

    #[test]
    fn defect_codes() {
        assert_eq!(Defect::TrapCycle.code(), "E131");
        assert_eq!(Defect::NoProgressLoop.code(), "W031");
        assert_eq!(Defect::SessionReplay.code(), "W033");
    }
}
