//! The synthetic car-domain dataset behind every simulated site.
//!
//! The paper's evaluation ran against live 1999 sites (Newsday, New York
//! Times, Kelly's Blue Book, …). Our substitution: one deterministic,
//! seeded dataset of used-car ads, blue-book prices, safety ratings and
//! finance rates, partitioned across the simulated sites. Determinism
//! gives the test suite ground truth: a navigation run's output can be
//! checked against [`Dataset`] queries directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Makes and models available in the simulated market (lowercase,
/// site-renderers decide capitalisation).
pub const MAKES: &[(&str, &[&str])] = &[
    ("ford", &["escort", "taurus", "mustang", "explorer"]),
    ("jaguar", &["xj6", "xjs", "vanden plas"]),
    ("toyota", &["camry", "corolla", "4runner"]),
    ("honda", &["accord", "civic", "odyssey"]),
    ("bmw", &["318i", "528i", "m3"]),
    ("chevrolet", &["cavalier", "camaro", "suburban"]),
    ("dodge", &["neon", "caravan", "ram"]),
    ("saab", &["900", "9000"]),
    ("volvo", &["850", "960"]),
    ("mercedes", &["c280", "e320"]),
];

/// Feature vocabulary for ads.
pub const FEATURES: &[&str] = &[
    "sunroof",
    "abs",
    "leather",
    "air conditioning",
    "alloy wheels",
    "cd changer",
    "power windows",
    "cruise control",
    "airbag",
    "automatic",
];

/// Car condition, as Kelly's asks for it.
pub const CONDITIONS: &[&str] = &["excellent", "good", "fair"];

/// Safety ratings, as Car and Driver reports them.
pub const SAFETY_RATINGS: &[&str] = &["poor", "fair", "good", "excellent"];

/// NY-metro zip prefixes used by dealer and finance sites.
pub const ZIPS: &[&str] = &["10001", "10451", "11201", "11375", "11550", "10301"];

/// Loan/lease durations in months.
pub const DURATIONS: &[u32] = &[24, 36, 48, 60];

/// One used-car classified ad.
#[derive(Debug, Clone, PartialEq)]
pub struct CarAd {
    pub id: u32,
    pub make: String,
    pub model: String,
    pub year: u32,
    pub price: u32,
    pub contact: String,
    pub zip: String,
    pub features: Vec<String>,
    pub picture: String,
    pub condition: String,
}

/// The full synthetic market.
#[derive(Debug)]
pub struct Dataset {
    pub ads: Vec<CarAd>,
    seed: u64,
}

/// Which slice of the market a site carries. Sites overlap (the same ad
/// can be syndicated), driven deterministically by the ad id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteSlice {
    Newsday,
    NyTimes,
    NewYorkDaily,
    CarPoint,
    AutoWeb,
    WwWheels,
    AutoConnect,
    YahooCars,
}

impl SiteSlice {
    /// Deterministic syndication: each ad appears on ~2–3 sites.
    pub fn carries(self, ad: &CarAd) -> bool {
        let h = ad.id.wrapping_mul(2654435761);
        match self {
            SiteSlice::Newsday => h.is_multiple_of(3),
            SiteSlice::NyTimes => h % 3 == 1,
            SiteSlice::NewYorkDaily => h % 3 == 2,
            SiteSlice::CarPoint => h.is_multiple_of(4),
            SiteSlice::AutoWeb => h % 4 == 1,
            SiteSlice::WwWheels => h.is_multiple_of(2), // the big aggregator (most pages in §7)
            SiteSlice::AutoConnect => h % 5 < 2,
            SiteSlice::YahooCars => h % 5 >= 2,
        }
    }
}

impl Dataset {
    /// Generate `n` ads deterministically from `seed`.
    pub fn generate(seed: u64, n: usize) -> Arc<Dataset> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ads = Vec::with_capacity(n);
        for id in 0..n as u32 {
            let (make, models) = MAKES[rng.random_range(0..MAKES.len())];
            let model = models[rng.random_range(0..models.len())];
            let year = rng.random_range(1988..=1999);
            let base = base_price(make, model);
            // Depreciation: ~11%/year from 1999, plus noise.
            let age = 1999 - year;
            let mut price = base as f64 * 0.89f64.powi(age as i32);
            price *= rng.random_range(0.82..1.18);
            let condition = CONDITIONS[rng.random_range(0..CONDITIONS.len())];
            let n_features = rng.random_range(1..5);
            let mut features: Vec<String> = Vec::with_capacity(n_features);
            while features.len() < n_features {
                let f = FEATURES[rng.random_range(0..FEATURES.len())].to_string();
                if !features.contains(&f) {
                    features.push(f);
                }
            }
            features.sort();
            let zip = ZIPS[rng.random_range(0..ZIPS.len())].to_string();
            ads.push(CarAd {
                id,
                make: make.to_string(),
                model: model.to_string(),
                year,
                price: (price / 50.0).round() as u32 * 50,
                contact: format!("(516) 555-{:04}", 1000 + (id * 37) % 9000),
                zip,
                features,
                picture: format!("/pics/car{id}.jpg"),
                condition: condition.to_string(),
            });
        }
        Arc::new(Dataset { ads, seed })
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Ads carried by a site slice, in id order.
    pub fn ads_for(&self, slice: SiteSlice) -> impl Iterator<Item = &CarAd> {
        self.ads.iter().filter(move |a| slice.carries(a))
    }

    /// Ground truth for tests: ads on `slice` matching the optional
    /// make/model filters.
    pub fn matching(
        &self,
        slice: SiteSlice,
        make: Option<&str>,
        model: Option<&str>,
    ) -> Vec<&CarAd> {
        self.ads_for(slice)
            .filter(|a| make.is_none_or(|m| a.make == m))
            .filter(|a| model.is_none_or(|m| a.model == m))
            .collect()
    }
}

/// New-vehicle base price (deterministic, per make/model).
pub fn base_price(make: &str, model: &str) -> u32 {
    let premium: u32 = match make {
        "jaguar" | "mercedes" | "bmw" => 42_000,
        "volvo" | "saab" => 28_000,
        _ => 17_000,
    };
    // Per-model deterministic variation.
    let h = fnv(model) % 8_000;
    premium + h as u32
}

/// Kelly's blue-book price: base price depreciated by age, adjusted for
/// condition and price type (trade-in values run below retail).
/// Deterministic in (make, model, year, condition, price type).
pub fn blue_book_price(make: &str, model: &str, year: u32, condition: &str) -> u32 {
    blue_book_price_typed(make, model, year, condition, "retail")
}

/// [`blue_book_price`] with an explicit price type.
pub fn blue_book_price_typed(
    make: &str,
    model: &str,
    year: u32,
    condition: &str,
    price_type: &str,
) -> u32 {
    let age = 1999u32.saturating_sub(year);
    let mut p = base_price(make, model) as f64 * 0.88f64.powi(age as i32);
    p *= match condition {
        "excellent" => 1.08,
        "good" => 1.0,
        _ => 0.85,
    };
    if price_type == "trade-in" {
        p = (p * 0.88 - 300.0).max(100.0);
    }
    (p / 50.0).round() as u32 * 50
}

/// Car-and-Driver safety rating, deterministic in (make, model, year).
pub fn safety_rating(make: &str, model: &str, year: u32) -> &'static str {
    let h = fnv(make) ^ fnv(model).rotate_left(7) ^ (year as u64).wrapping_mul(0x9e37);
    SAFETY_RATINGS[(h % SAFETY_RATINGS.len() as u64) as usize]
}

/// Finance APR in percent for a zip/duration/plan triple, deterministic.
/// Leases price below loans (the money factor is subsidised).
pub fn finance_rate(zip: &str, duration_months: u32, plan: &str) -> f64 {
    let h = fnv(zip) % 200; // 0..2.00%
    let base = 6.5 + (duration_months as f64 - 24.0) * 0.02;
    let plan_adj = if plan == "lease" { -1.2 } else { 0.0 };
    (base + h as f64 / 100.0 * 1.5 + plan_adj).clamp(2.0, 12.0)
}

/// Financing plans offered by CarFinance.
pub const PLANS: &[&str] = &["loan", "lease"];

/// Insurance coverages offered by CarInsurance.
pub const COVERAGES: &[&str] = &["full", "liability"];

/// Blue-book price types (Kelly's offers both).
pub const PRICE_TYPES: &[&str] = &["retail", "trade-in"];

/// Annual insurance premium in dollars, deterministic in the car and
/// coverage.
pub fn insurance_cost(make: &str, model: &str, year: u32, coverage: &str) -> u32 {
    let base = base_price(make, model) as f64 * 0.035;
    let age_discount = (1999u32.saturating_sub(year)) as f64 * 12.0;
    let cov = if coverage == "full" { 1.45 } else { 1.0 };
    (((base - age_discount).max(250.0) * cov) / 10.0).round() as u32 * 10
}

/// FNV-1a — the deterministic string hash the dataset (and the site
/// generator) derive per-entity seeds from.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(42, 100);
        let b = Dataset::generate(42, 100);
        assert_eq!(a.ads, b.ads);
        let c = Dataset::generate(43, 100);
        assert_ne!(a.ads, c.ads);
    }

    #[test]
    fn ads_are_plausible() {
        let d = Dataset::generate(7, 500);
        for ad in &d.ads {
            assert!((1988..=1999).contains(&ad.year));
            assert!(ad.price >= 500, "price {} too low", ad.price);
            assert!(ad.price <= 60_000);
            assert!(!ad.features.is_empty());
            assert!(MAKES.iter().any(|(m, _)| *m == ad.make));
        }
    }

    #[test]
    fn slices_overlap_but_differ() {
        let d = Dataset::generate(1, 300);
        let nd: Vec<u32> = d.ads_for(SiteSlice::Newsday).map(|a| a.id).collect();
        let nyt: Vec<u32> = d.ads_for(SiteSlice::NyTimes).map(|a| a.id).collect();
        assert!(!nd.is_empty() && !nyt.is_empty());
        assert!(nd.iter().all(|id| !nyt.contains(id)), "newsday/nytimes slices are disjoint");
        let ww: Vec<u32> = d.ads_for(SiteSlice::WwWheels).map(|a| a.id).collect();
        assert!(ww.len() > nd.len(), "wwwheels is the big aggregator");
    }

    #[test]
    fn matching_filters() {
        let d = Dataset::generate(1, 500);
        let fords = d.matching(SiteSlice::Newsday, Some("ford"), None);
        assert!(fords.iter().all(|a| a.make == "ford"));
        let escorts = d.matching(SiteSlice::Newsday, Some("ford"), Some("escort"));
        assert!(escorts.len() <= fords.len());
    }

    #[test]
    fn blue_book_depreciates_with_age() {
        let newer = blue_book_price("ford", "escort", 1998, "good");
        let older = blue_book_price("ford", "escort", 1992, "good");
        assert!(newer > older);
        assert!(
            blue_book_price("ford", "escort", 1995, "excellent")
                > blue_book_price("ford", "escort", 1995, "fair")
        );
    }

    #[test]
    fn safety_and_finance_deterministic() {
        assert_eq!(safety_rating("ford", "escort", 1995), safety_rating("ford", "escort", 1995));
        assert!(finance_rate("10001", 36, "loan") > 0.0);
        assert!(finance_rate("10001", 60, "loan") >= finance_rate("10001", 24, "loan"));
        assert!(finance_rate("10001", 36, "loan") <= 12.0);
        assert!(finance_rate("10001", 36, "lease") < finance_rate("10001", 36, "loan"));
    }

    #[test]
    fn jaguars_cost_more_than_fords() {
        assert!(base_price("jaguar", "xj6") > base_price("ford", "escort"));
    }

    #[test]
    fn trade_in_below_retail() {
        let retail = blue_book_price_typed("ford", "escort", 1995, "good", "retail");
        let trade = blue_book_price_typed("ford", "escort", 1995, "good", "trade-in");
        assert!(trade < retail);
        assert_eq!(retail, blue_book_price("ford", "escort", 1995, "good"));
    }

    #[test]
    fn insurance_cost_shape() {
        let full = insurance_cost("jaguar", "xj6", 1996, "full");
        let liab = insurance_cost("jaguar", "xj6", 1996, "liability");
        assert!(full > liab, "full coverage costs more");
        assert!(insurance_cost("ford", "escort", 1990, "liability") >= 250);
        assert_eq!(full, insurance_cost("jaguar", "xj6", 1996, "full"));
    }
}
