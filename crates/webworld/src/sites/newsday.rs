//! The simulated Newsday site — a faithful rendering of the paper's
//! Figure 2 navigation map:
//!
//! ```text
//! newsday ── link(auto) ──► auto hub
//!   auto hub ── link(l1/l3/l4) ──► dealer / collectible / SUV pages
//!   auto hub ── link("Used Cars") ──► UsedCarPg
//!   UsedCarPg ── form f1(make) ──► CarPg | data page
//!   CarPg     ── form f2(model, featrs) ──► data page
//!   data page ── link("More") ──► data page        (iteration)
//!   data row  ── link("Car Features") ──► newsdayCarFeatures page
//! ```
//!
//! The conditional is the part the paper stresses: *"if the page is not a
//! data page, another form will have to be filled out. The length of the
//! sequence … depend\[s\] on the number of answers that match the initial
//! query."* Submitting f1 with a make that has many listings lands on an
//! intermediate refine page (CarPg with form f2); few listings land
//! directly on the data page.

use crate::data::{CarAd, Dataset, SiteSlice, FEATURES, MAKES};
use crate::render::{href_with_params, Cell, PageBuilder, Widget};
use crate::request::{Request, Response};
use crate::server::Site;
use std::sync::Arc;

/// Listings-per-data-page.
const PAGE_SIZE: usize = 4;
/// f1 results above this count bounce to the refine form (f2).
const REFINE_THRESHOLD: usize = 12;

pub struct Newsday {
    data: Arc<Dataset>,
    /// Site version: version ≥ 2 applies the documented evolution (an
    /// extra "Trucks & Vans" link and a new `pics` checkbox on f2 —
    /// auto-applicable changes for map maintenance).
    version: u32,
}

impl Newsday {
    pub fn new(data: Arc<Dataset>, version: u32) -> Newsday {
        Newsday { data, version }
    }

    fn matching(
        &self,
        make: Option<&str>,
        model: Option<&str>,
        featrs: Option<&str>,
    ) -> Vec<&CarAd> {
        self.data
            .ads_for(SiteSlice::Newsday)
            .filter(|a| make.is_none_or(|m| a.make == m))
            .filter(|a| model.is_none_or(|m| a.model == m))
            .filter(|a| featrs.is_none_or(|f| a.features.iter().any(|x| x == f)))
            .collect()
    }

    fn home(&self) -> Response {
        let pb = PageBuilder::new("Newsday.com").heading("Newsday").link_list(&[
            ("News".into(), "/news".into()),
            ("Sports".into(), "/sports".into()),
            ("Automobiles".into(), "/auto".into()),
            ("Real Estate".into(), "/realestate".into()),
        ]);
        Response::ok(pb.finish())
    }

    fn auto_hub(&self) -> Response {
        let mut items = vec![
            ("New Car Dealers".to_string(), "/auto/dealers".to_string()),
            ("Used Cars".to_string(), "/auto/used".to_string()),
            ("Collectible Cars".to_string(), "/auto/collectible".to_string()),
            ("Sport Utility".to_string(), "/auto/suv".to_string()),
        ];
        if self.version >= 2 {
            items.push(("Trucks & Vans".to_string(), "/auto/trucks".to_string()));
        }
        let pb = PageBuilder::new("Newsday Auto Classifieds")
            .heading("Auto Classifieds")
            .link_list(&items);
        Response::ok(pb.finish())
    }

    /// UsedCarPg: form f1.
    fn used_car_page(&self) -> Response {
        let makes: Vec<&str> = MAKES.iter().map(|(m, _)| *m).collect();
        let pb = PageBuilder::new("Newsday Used Car Search")
            .heading("Used car classifieds")
            .para("Select a make to search Long Island and New York City listings.")
            .form(
                "/cgi-bin/nclassy",
                "post",
                &[
                    Widget::select("make", "Make", &makes, false),
                    Widget::select(
                        "year",
                        "Year",
                        &["1999", "1998", "1997", "1996", "1995", "1994", "1993", "1992"],
                        true,
                    ),
                ],
                "Search",
            );
        Response::ok(pb.finish())
    }

    /// CarPg: the refine form f2 (reached when f1 matched too much).
    fn refine_page(&self, make: &str, count: usize) -> Response {
        let mut widgets = vec![
            Widget::hidden("make", make),
            Widget::text("model", "Model"),
            Widget::select("featrs", "Features", FEATURES, true),
        ];
        if self.version >= 2 {
            widgets.push(Widget::Checkbox {
                name: "pics".into(),
                label: "Only ads with pictures".into(),
            });
        }
        let pb = PageBuilder::new("Newsday Used Cars - Refine Search")
            .heading(&format!("{count} listings match"))
            .para("Too many listings to show. Please narrow your search.")
            .form("/cgi-bin/nclassy2", "post", &widgets, "Refine");
        Response::ok(pb.finish())
    }

    /// The data page, with "More" iteration and per-row Car Features
    /// links (the Url attribute of the VPS relation).
    fn data_page(&self, req: &Request, matches: &[&CarAd], cgi: &str) -> Response {
        let page: usize = req.param("page").and_then(|p| p.parse().ok()).unwrap_or(0);
        let start = page * PAGE_SIZE;
        let shown = &matches[start.min(matches.len())..(start + PAGE_SIZE).min(matches.len())];
        let rows: Vec<Vec<Cell>> = shown
            .iter()
            .map(|ad| {
                vec![
                    Cell::text(&ad.make),
                    Cell::text(&ad.model),
                    Cell::text(ad.year.to_string()),
                    Cell::text(format!("${}", ad.price)),
                    Cell::text(&ad.contact),
                    Cell::link("Car Features", format!("/car/{}", ad.id)),
                ]
            })
            .collect();
        let mut pb = PageBuilder::new("Newsday Used Cars - Listings")
            .heading("Listings")
            .para(&format!("{} matching ads", matches.len()))
            .table(&["Make", "Model", "Year", "Price", "Contact", "Details"], &rows);
        if start + PAGE_SIZE < matches.len() {
            let mut params: Vec<(&str, &str)> = Vec::new();
            for key in ["make", "model", "featrs", "year"] {
                if let Some(v) = req.param_nonempty(key) {
                    params.push((key, v));
                }
            }
            let next = (page + 1).to_string();
            params.push(("page", &next));
            pb = pb.link("More", &href_with_params(cgi, &params));
        }
        Response::ok(pb.finish())
    }

    /// newsdayCarFeatures: the per-ad detail page.
    fn car_features(&self, id: u32) -> Response {
        match self.data.ads.get(id as usize).filter(|a| SiteSlice::Newsday.carries(a)) {
            Some(ad) => {
                let pb =
                    PageBuilder::new(&format!("Newsday - {} {} {}", ad.year, ad.make, ad.model))
                        .heading("Vehicle details")
                        .definition_list(&[
                            ("Features".to_string(), ad.features.join(", ")),
                            ("Picture".to_string(), ad.picture.clone()),
                        ]);
                Response::ok(pb.finish())
            }
            None => Response::not_found("no such listing"),
        }
    }

    fn classy(&self, req: &Request, second_form: bool) -> Response {
        let Some(make) = req.param_nonempty("make") else {
            // f1's make is mandatory: the CGI refuses without it.
            return Response::ok(
                PageBuilder::new("Newsday - Error").para("Please select a make.").finish(),
            );
        };
        let model = req.param_nonempty("model");
        let featrs = req.param_nonempty("featrs");
        let year: Option<u32> = req.param_nonempty("year").and_then(|y| y.parse().ok());
        let mut matches = self.matching(Some(make), model, featrs);
        if let Some(y) = year {
            matches.retain(|a| a.year == y);
        }
        if self.version >= 2 && req.param_nonempty("pics").is_some() {
            matches.retain(|a| !a.picture.is_empty());
        }
        let cgi = if second_form { "/cgi-bin/nclassy2" } else { "/cgi-bin/nclassy" };
        // The Figure 2 conditional: too many f1 matches → CarPg (form f2).
        if !second_form && model.is_none() && matches.len() > REFINE_THRESHOLD {
            return self.refine_page(make, matches.len());
        }
        self.data_page(req, &matches, cgi)
    }
}

impl Site for Newsday {
    fn host(&self) -> &str {
        "www.newsday.com"
    }

    fn handle(&self, req: &Request) -> Response {
        let path = req.url.path.as_str();
        match path {
            "/" => self.home(),
            "/auto" => self.auto_hub(),
            "/auto/used" => self.used_car_page(),
            "/auto/dealers" | "/auto/collectible" | "/auto/suv" | "/auto/trucks" | "/news"
            | "/sports" | "/realestate" => Response::ok(
                PageBuilder::new("Newsday").para("Section under construction.").finish(),
            ),
            "/cgi-bin/nclassy" => self.classy(req, false),
            "/cgi-bin/nclassy2" => self.classy(req, true),
            p if p.starts_with("/car/") => match p[5..].parse::<u32>() {
                Ok(id) => self.car_features(id),
                Err(_) => Response::not_found("bad listing id"),
            },
            other => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;
    use webbase_html::{extract, parse};

    fn site() -> (Newsday, Arc<Dataset>) {
        let d = Dataset::generate(5, 600);
        (Newsday::new(d.clone(), 1), d)
    }

    fn popular_make(d: &Dataset) -> String {
        // a make with > REFINE_THRESHOLD newsday listings
        MAKES
            .iter()
            .map(|(m, _)| *m)
            .find(|m| d.matching(SiteSlice::Newsday, Some(m), None).len() > REFINE_THRESHOLD)
            .expect("seeded dataset has a popular make")
            .to_string()
    }

    #[test]
    fn figure2_topology_home_to_form() {
        let (s, _) = site();
        let home = s.handle(&Request::get(Url::new(s.host(), "/")));
        let links = extract::links(&parse(home.html()));
        assert!(links.iter().any(|l| l.text == "Automobiles" && l.href == "/auto"));
        let hub = s.handle(&Request::get(Url::new(s.host(), "/auto")));
        let hub_links = extract::links(&parse(hub.html()));
        for expected in ["New Car Dealers", "Used Cars", "Collectible Cars", "Sport Utility"] {
            assert!(hub_links.iter().any(|l| l.text == expected), "missing {expected}");
        }
        let ucp = s.handle(&Request::get(Url::new(s.host(), "/auto/used")));
        let forms = extract::forms(&parse(ucp.html()));
        assert_eq!(forms.len(), 1);
        assert_eq!(forms[0].action, "/cgi-bin/nclassy");
        // make is a select without "any" → inferred mandatory; year has any
        assert_eq!(forms[0].inferred_mandatory_fields(), vec!["make"]);
    }

    #[test]
    fn conditional_refine_branch() {
        let (s, d) = site();
        let make = popular_make(&d);
        let resp = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/nclassy"),
            [("make", make.as_str())],
        ));
        // Too many matches → CarPg with form f2
        let forms = extract::forms(&parse(resp.html()));
        assert_eq!(forms.len(), 1, "expected refine form");
        assert_eq!(forms[0].action, "/cgi-bin/nclassy2");
        assert!(forms[0].field("make").is_some(), "hidden make carried");
        assert!(forms[0].field("model").is_some());
    }

    #[test]
    fn direct_data_branch_for_rare_make() {
        let (s, d) = site();
        // Find a make with 1..=REFINE_THRESHOLD listings.
        let rare = MAKES.iter().map(|(m, _)| *m).find(|m| {
            let n = d.matching(SiteSlice::Newsday, Some(m), None).len();
            n > 0 && n <= REFINE_THRESHOLD
        });
        let Some(make) = rare else {
            return; // seeded data had no rare make; other tests cover the branch
        };
        let resp =
            s.handle(&Request::post(Url::new(s.host(), "/cgi-bin/nclassy"), [("make", make)]));
        let tables = extract::tables(&parse(resp.html()));
        assert!(!tables.is_empty(), "rare make goes straight to data");
    }

    #[test]
    fn refine_then_paginate_collects_all() {
        let (s, d) = site();
        let make = popular_make(&d);
        let model = d
            .matching(SiteSlice::Newsday, Some(&make), None)
            .first()
            .map(|a| a.model.clone())
            .expect("has ads");
        let truth = d.matching(SiteSlice::Newsday, Some(&make), Some(&model)).len();
        let mut collected = 0;
        let mut page = 0;
        loop {
            let mut params = vec![("make", make.clone()), ("model", model.clone())];
            params.push(("page", page.to_string()));
            let resp = s.handle(&Request::post(Url::new(s.host(), "/cgi-bin/nclassy2"), params));
            let doc = parse(resp.html());
            let t = &extract::tables(&doc)[0];
            collected += t.rows.len();
            if extract::links(&doc).iter().any(|l| l.text == "More") {
                page += 1;
            } else {
                break;
            }
        }
        assert_eq!(collected, truth);
    }

    #[test]
    fn car_features_pages_resolve_from_rows() {
        let (s, d) = site();
        let ad = d.ads_for(SiteSlice::Newsday).next().expect("has ads");
        let resp = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/nclassy2"),
            [("make", ad.make.as_str()), ("model", ad.model.as_str())],
        ));
        let doc = parse(resp.html());
        let t = &extract::tables(&doc)[0];
        let href = t.links[0].last().cloned().flatten().expect("features link");
        let detail = s.handle(&Request::get(Url::new(s.host(), &href)));
        assert!(detail.is_ok());
        let text = parse(detail.html());
        assert!(text.to_html().contains("Features"));
    }

    #[test]
    fn missing_make_is_refused() {
        let (s, _) = site();
        let resp =
            s.handle(&Request::post(Url::new(s.host(), "/cgi-bin/nclassy"), [("model", "xj6")]));
        assert!(resp.html().contains("Please select a make"));
    }

    #[test]
    fn version2_adds_auto_applicable_changes() {
        let d = Dataset::generate(5, 600);
        let v1 = Newsday::new(d.clone(), 1);
        let v2 = Newsday::new(d, 2);
        let h1 = v1.handle(&Request::get(Url::new(v1.host(), "/auto")));
        let h2 = v2.handle(&Request::get(Url::new(v2.host(), "/auto")));
        let changes = webbase_html::diff::diff_pages(&parse(h1.html()), &parse(h2.html()));
        assert!(!changes.is_empty());
        assert!(changes
            .iter()
            .all(|c| c.severity() == webbase_html::diff::Severity::AutoApplicable));
    }
}
