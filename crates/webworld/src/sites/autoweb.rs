//! AutoWeb (`www.autoweb.com`): the make attribute is *defined through a
//! set of links* — the construct §7 of the paper calls out ("there are
//! also instances where attributes are implicitly defined through a set
//! of links (e.g., a list of links with car models)"). There is no make
//! form field; the designer tells the map builder that this link list
//! *is* the `make` attribute.

use crate::data::{CarAd, Dataset, SiteSlice, MAKES};
use crate::render::{href_with_params, Cell, PageBuilder, Widget};
use crate::request::{Request, Response};
use crate::server::Site;
use std::sync::Arc;

const PAGE_SIZE: usize = 5;

pub struct AutoWeb {
    data: Arc<Dataset>,
    slice: SiteSlice,
}

impl AutoWeb {
    pub fn new(data: Arc<Dataset>, slice: SiteSlice) -> AutoWeb {
        AutoWeb { data, slice }
    }

    fn home(&self) -> Response {
        // The make "attribute": one link per make.
        let items: Vec<(String, String)> =
            MAKES.iter().map(|(m, _)| (capitalize(m), format!("/cars/{m}"))).collect();
        Response::ok(
            PageBuilder::new("AutoWeb - Browse by Make")
                .heading("AutoWeb")
                .para("Browse used vehicles by make:")
                .link_list(&items)
                .finish(),
        )
    }

    fn make_page(&self, req: &Request, make: &str) -> Response {
        if !MAKES.iter().any(|(m, _)| *m == make) {
            return Response::not_found("unknown make");
        }
        let zip = req.param_nonempty("zip");
        let matches: Vec<&CarAd> = self
            .data
            .ads_for(self.slice)
            .filter(|a| a.make == make)
            .filter(|a| zip.is_none_or(|z| a.zip == z))
            .collect();
        let page: usize = req.param("page").and_then(|p| p.parse().ok()).unwrap_or(0);
        let start = page * PAGE_SIZE;
        let shown = &matches[start.min(matches.len())..(start + PAGE_SIZE).min(matches.len())];
        let rows: Vec<Vec<Cell>> = shown
            .iter()
            .map(|a| {
                vec![
                    Cell::text(&a.make),
                    Cell::text(&a.model),
                    Cell::text(a.year.to_string()),
                    Cell::text(format!("${}", a.price)),
                    Cell::text(a.features.join(", ")),
                    Cell::text(&a.zip),
                    Cell::text(&a.contact),
                ]
            })
            .collect();
        let mut pb = PageBuilder::new(&format!("AutoWeb - {} listings", capitalize(make)))
            .heading(&format!("{} vehicles", capitalize(make)))
            // An optional refine form on the results page itself.
            .form(
                &format!("/cars/{make}"),
                "get",
                &[Widget::text("zip", "Near zip code")],
                "Filter",
            )
            .table(&["Make", "Model", "Year", "Price", "Features", "Zip", "Contact"], &rows);
        if start + PAGE_SIZE < matches.len() {
            let next = (page + 1).to_string();
            let mut params: Vec<(&str, &str)> = vec![("page", &next)];
            if let Some(z) = zip {
                params.push(("zip", z));
            }
            pb = pb.link("More", &href_with_params(&format!("/cars/{make}"), &params));
        }
        Response::ok(pb.finish())
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

impl Site for AutoWeb {
    fn host(&self) -> &str {
        "www.autoweb.com"
    }

    fn handle(&self, req: &Request) -> Response {
        let path = req.url.path.clone();
        match path.as_str() {
            "/" => self.home(),
            p if p.starts_with("/cars/") => self.make_page(req, &p[6..]),
            other => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;
    use webbase_html::{extract, parse};

    fn site() -> (AutoWeb, Arc<Dataset>) {
        let d = Dataset::generate(3, 400);
        (AutoWeb::new(d.clone(), SiteSlice::AutoWeb), d)
    }

    #[test]
    fn home_lists_make_links() {
        let (s, _) = site();
        let home = s.handle(&Request::get(Url::new(s.host(), "/")));
        let links = extract::links(&parse(home.html()));
        assert_eq!(links.len(), MAKES.len());
        assert!(links.iter().any(|l| l.href == "/cars/jaguar"));
        // All inside a list environment (the extractor records it).
        assert!(links.iter().all(|l| l.environment.as_deref() == Some("ul")));
    }

    #[test]
    fn make_page_filters_and_paginates() {
        let (s, d) = site();
        let truth = d.ads_for(SiteSlice::AutoWeb).filter(|a| a.make == "ford").count();
        let mut seen = 0;
        let mut page = 0;
        loop {
            let r = s.handle(&Request::get(
                Url::new(s.host(), "/cars/ford").with_query([("page", page.to_string())]),
            ));
            let doc = parse(r.html());
            seen += extract::tables(&doc)[0].rows.len();
            if extract::links(&doc).iter().any(|l| l.text == "More") {
                page += 1;
            } else {
                break;
            }
        }
        assert_eq!(seen, truth);
    }

    #[test]
    fn zip_refinement() {
        let (s, d) = site();
        let some_zip =
            d.ads_for(SiteSlice::AutoWeb).find(|a| a.make == "toyota").map(|a| a.zip.clone());
        let Some(zip) = some_zip else { return };
        let r = s.handle(&Request::get(
            Url::new(s.host(), "/cars/toyota").with_query([("zip", zip.clone())]),
        ));
        let t = &extract::tables(&parse(r.html()))[0];
        assert!(t.rows.iter().all(|row| row[5] == zip));
    }

    #[test]
    fn unknown_make_404() {
        let (s, _) = site();
        let r = s.handle(&Request::get(Url::new(s.host(), "/cars/zeppelin")));
        assert_eq!(r.status, 404);
    }
}
