//! The simulated car-domain sites.
//!
//! Each module implements one Web site of the paper's evaluation (§7
//! timing table plus the Table 1 sources), with its own topology, form
//! chain, layout, and quirks:
//!
//! | site | host | shape |
//! |---|---|---|
//! | Newsday | `www.newsday.com` | Figure 2 exactly: link(auto) → form f1(make) → *either* data page *or* form f2(model, featrs) → data pages with "More" iteration; per-row "Car Features" links |
//! | NYTimes | `www.nytimes.com` | two-hop entry, make (mandatory) + model (optional) form, `<dl>` layout |
//! | NewYorkDaily | `www.nydailynews.com` | single form, **ill-formed HTML** (the paper's parser-recovery case) |
//! | WWWheels | `www.wwwheels.com` | big aggregator, make-only form, tiny pages → the most pages navigated, as in §7 |
//! | AutoConnect | `www.autoconnect.com` | make-only form, small pages |
//! | YahooCars | `autos.yahoo.com` | make + model form, medium pages |
//! | CarReviews | `www.carreviews.com` | make + model form, adds a Safety column |
//! | CarPoint | `carpoint.msn.com` | dealer: adds ZipCode column, optional zip field |
//! | AutoWeb | `www.autoweb.com` | make chosen through a **set of links** (the paper's link-defined attribute) |
//! | Kelly's | `www.kbb.com` | three-form chain (make → model → condition/year), blue-book prices; evolution adds 1999 models |
//! | CarAndDriver | `www.caranddriver.com` | make/model form → safety ratings |
//! | CarFinance | `www.carfinance.com` | zip + duration + plan form → interest rates |
//! | CarInsurance | `www.carinsurance.com` | make/model/coverage form → premiums (added for the Figure 5 Insurance concept) |

pub mod apartments;
pub mod autoweb;
pub mod car_and_driver;
pub mod car_finance;
pub mod car_insurance;
pub mod generic;
pub mod kellys;
pub mod newsday;

use crate::data::Dataset;
use crate::latency::LatencyModel;
use crate::server::{SyntheticWeb, WebBuilder};
use std::sync::Arc;

pub use apartments::{AptListings, AptMarket, RentGuide};
pub use autoweb::AutoWeb;
pub use car_and_driver::CarAndDriver;
pub use car_finance::CarFinance;
pub use car_insurance::CarInsurance;
pub use generic::{ClassifiedsSite, Layout};
pub use kellys::Kellys;
pub use newsday::Newsday;

/// Build the full simulated Web of the paper's evaluation: all thirteen
/// sites over one shared dataset.
pub fn standard_web(data: Arc<Dataset>, latency: LatencyModel) -> SyntheticWeb {
    standard_web_versioned(data, latency, 1)
}

/// Like [`standard_web`] but with site `version`s (for the map
/// maintenance experiments: version 2 applies the documented site
/// evolutions).
pub fn standard_web_versioned(
    data: Arc<Dataset>,
    latency: LatencyModel,
    version: u32,
) -> SyntheticWeb {
    builder_with_sites(data, version).latency(latency).build()
}

/// Like [`standard_web`] but with every site passed through `wrap`
/// (host, boxed site) → boxed site — the entry point of the fault-matrix
/// tests, which wrap sites in `crate::faults` degraders.
pub fn standard_web_faulty(
    data: Arc<Dataset>,
    latency: LatencyModel,
    wrap: impl Fn(&str, Box<dyn crate::server::Site>) -> Box<dyn crate::server::Site>,
) -> SyntheticWeb {
    builder_with_sites(data, 1).map_sites(wrap).latency(latency).build()
}

/// The thirteen hand-written sites of the paper's evaluation, as one
/// boxed list — the single registration point shared by every web
/// builder (and mirrored by `generate::GenCorpus` for generated sites).
pub fn standard_sites(data: Arc<Dataset>, version: u32) -> Vec<Box<dyn crate::server::Site>> {
    use crate::data::SiteSlice;
    vec![
        Box::new(Newsday::new(data.clone(), version)),
        Box::new(ClassifiedsSite::ny_times(data.clone())),
        Box::new(ClassifiedsSite::new_york_daily(data.clone())),
        Box::new(ClassifiedsSite::www_heels(data.clone())),
        Box::new(ClassifiedsSite::auto_connect(data.clone())),
        Box::new(ClassifiedsSite::yahoo_cars(data.clone())),
        Box::new(ClassifiedsSite::car_reviews(data.clone())),
        Box::new(ClassifiedsSite::car_point(data.clone())),
        Box::new(AutoWeb::new(data.clone(), SiteSlice::AutoWeb)),
        Box::new(Kellys::new(version)),
        Box::new(CarAndDriver::new()),
        Box::new(CarFinance::new()),
        Box::new(CarInsurance::new()),
    ]
}

fn builder_with_sites(data: Arc<Dataset>, version: u32) -> WebBuilder {
    standard_sites(data, version).into_iter().fold(SyntheticWeb::builder(), WebBuilder::boxed_site)
}

/// The ten hosts of the §7 timing table, in the paper's row order.
pub fn timing_table_hosts() -> Vec<&'static str> {
    vec![
        "www.autoweb.com",
        "www.wwwheels.com",
        "www.nytimes.com",
        "www.carreviews.com",
        "www.nydailynews.com",
        "www.caranddriver.com",
        "www.autoconnect.com",
        "www.newsday.com",
        "autos.yahoo.com",
        "www.kbb.com",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    #[test]
    fn standard_web_has_all_hosts() {
        let web = standard_web(Dataset::generate(1, 50), LatencyModel::zero());
        let hosts = web.hosts();
        for h in timing_table_hosts() {
            assert!(hosts.contains(&h.to_string()), "missing {h}");
        }
        assert!(hosts.contains(&"carpoint.msn.com".to_string()));
        assert!(hosts.contains(&"www.carfinance.com".to_string()));
        assert!(hosts.contains(&"www.carinsurance.com".to_string()));
        assert_eq!(hosts.len(), 13);
    }
}
