//! The configurable classifieds/dealer site family.
//!
//! Seven of the twelve simulated sites share this implementation with
//! different configurations (layout, form power, page size, entry
//! depth, faulty HTML). The heterogeneity is the point: the navigation
//! layer must cope with all of them through mapping by example, not
//! through site-specific code.

use crate::data::{CarAd, Dataset, SiteSlice, MAKES};
use crate::render::{href_with_params, Cell, PageBuilder, Widget};
use crate::request::{Request, Response};
use crate::server::Site;
use std::sync::Arc;

/// Result-page layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One `<table>` with one row per ad.
    Table,
    /// A `<dl>` per ad (NYTimes style).
    DefList,
}

/// Configuration of one site in the family.
pub struct ClassifiedsSite {
    host: String,
    title: String,
    slice: SiteSlice,
    data: Arc<Dataset>,
    layout: Layout,
    /// Ads per result page; small values produce the long "More" chains
    /// of the §7 timing table.
    page_size: usize,
    /// Whether the search form has a model field (sites without one
    /// return all ads of a make and force client-side filtering — more
    /// pages navigated).
    model_field: bool,
    /// Dealer sites expose the zip code column and an optional zip field.
    zip_field: bool,
    /// Review sites add a Safety column.
    safety_column: bool,
    /// Render faulty HTML (missing close tags).
    ill_formed: bool,
    /// Number of hub pages between the home page and the search form.
    entry_depth: usize,
    /// The form field name used for the make — `"mk"` on WWWheels, whose
    /// cryptic field names force the designer-rename path of §7.
    make_param: &'static str,
}

impl ClassifiedsSite {
    pub fn ny_times(data: Arc<Dataset>) -> ClassifiedsSite {
        ClassifiedsSite {
            host: "www.nytimes.com".into(),
            title: "New York Times Classifieds".into(),
            slice: SiteSlice::NyTimes,
            data,
            layout: Layout::DefList,
            page_size: 5,
            model_field: true,
            zip_field: false,
            safety_column: false,
            ill_formed: false,
            entry_depth: 2,
            make_param: "make",
        }
    }

    pub fn new_york_daily(data: Arc<Dataset>) -> ClassifiedsSite {
        ClassifiedsSite {
            host: "www.nydailynews.com".into(),
            title: "New York Daily News Auto Classifieds".into(),
            slice: SiteSlice::NewYorkDaily,
            data,
            layout: Layout::Table,
            page_size: 3,
            model_field: false,
            zip_field: false,
            safety_column: false,
            ill_formed: true, // the faulty-HTML site
            entry_depth: 1,
            make_param: "make",
        }
    }

    pub fn www_heels(data: Arc<Dataset>) -> ClassifiedsSite {
        ClassifiedsSite {
            host: "www.wwwheels.com".into(),
            title: "WWWheels - Cars on the Web".into(),
            slice: SiteSlice::WwWheels,
            data,
            layout: Layout::Table,
            page_size: 2, // big slice × tiny pages → most pages navigated (§7)
            model_field: false,
            zip_field: false,
            safety_column: false,
            ill_formed: false,
            entry_depth: 1,
            make_param: "mk",
        }
    }

    pub fn auto_connect(data: Arc<Dataset>) -> ClassifiedsSite {
        ClassifiedsSite {
            host: "www.autoconnect.com".into(),
            title: "AutoConnect Used Vehicles".into(),
            slice: SiteSlice::AutoConnect,
            data,
            layout: Layout::Table,
            page_size: 3,
            model_field: false,
            zip_field: false,
            safety_column: false,
            ill_formed: false,
            entry_depth: 1,
            make_param: "make",
        }
    }

    pub fn yahoo_cars(data: Arc<Dataset>) -> ClassifiedsSite {
        ClassifiedsSite {
            host: "autos.yahoo.com".into(),
            title: "Yahoo! Autos".into(),
            slice: SiteSlice::YahooCars,
            data,
            layout: Layout::Table,
            page_size: 4,
            model_field: true,
            zip_field: false,
            safety_column: false,
            ill_formed: false,
            entry_depth: 1,
            make_param: "make",
        }
    }

    pub fn car_reviews(data: Arc<Dataset>) -> ClassifiedsSite {
        ClassifiedsSite {
            host: "www.carreviews.com".into(),
            title: "Car Reviews Online".into(),
            slice: SiteSlice::YahooCars, // reviews aggregate the same listings
            data,
            layout: Layout::Table,
            page_size: 4,
            model_field: true,
            zip_field: false,
            safety_column: true,
            ill_formed: false,
            entry_depth: 2,
            make_param: "make",
        }
    }

    pub fn car_point(data: Arc<Dataset>) -> ClassifiedsSite {
        ClassifiedsSite {
            host: "carpoint.msn.com".into(),
            title: "CarPoint Dealer Search".into(),
            slice: SiteSlice::CarPoint,
            data,
            layout: Layout::Table,
            page_size: 5,
            model_field: true,
            zip_field: true,
            safety_column: false,
            ill_formed: false,
            entry_depth: 1,
            make_param: "make",
        }
    }

    fn page(&self, title: &str) -> PageBuilder {
        let p = PageBuilder::new(title);
        if self.ill_formed {
            p.ill_formed()
        } else {
            p
        }
    }

    fn matching(&self, req: &Request) -> Vec<&CarAd> {
        let make = req.param_nonempty(self.make_param);
        let model = if self.model_field { req.param_nonempty("model") } else { None };
        let zip = if self.zip_field { req.param_nonempty("zip") } else { None };
        self.data
            .ads_for(self.slice)
            .filter(|a| make.is_none_or(|m| a.make == m))
            .filter(|a| model.is_none_or(|m| a.model == m))
            .filter(|a| zip.is_none_or(|z| a.zip == z))
            .collect()
    }

    fn headers(&self) -> Vec<&'static str> {
        let mut h = vec!["Make", "Model", "Year", "Price", "Contact", "Features"];
        if self.zip_field {
            h.push("Zip");
        }
        if self.safety_column {
            h.push("Safety");
        }
        h
    }

    fn row(&self, ad: &CarAd) -> Vec<Cell> {
        let mut cells = vec![
            Cell::text(&ad.make),
            Cell::text(&ad.model),
            Cell::text(ad.year.to_string()),
            Cell::text(format!("${}", ad.price)),
            Cell::text(&ad.contact),
            Cell::text(ad.features.join(", ")),
        ];
        if self.zip_field {
            cells.push(Cell::text(&ad.zip));
        }
        if self.safety_column {
            cells.push(Cell::text(crate::data::safety_rating(&ad.make, &ad.model, ad.year)));
        }
        cells
    }

    fn results_page(&self, req: &Request) -> Response {
        let matches = self.matching(req);
        let page: usize = req.param("page").and_then(|p| p.parse().ok()).unwrap_or(0);
        let start = page * self.page_size;
        let slice: Vec<&CarAd> = matches.iter().skip(start).take(self.page_size).copied().collect();
        let mut pb = self
            .page(&format!("{} - Results", self.title))
            .heading("Search results")
            .para(&format!("Showing {} of {} listings", slice.len(), matches.len()));
        match self.layout {
            Layout::Table => {
                let rows: Vec<Vec<Cell>> = slice.iter().map(|a| self.row(a)).collect();
                pb = pb.table(&self.headers(), &rows);
            }
            Layout::DefList => {
                for ad in &slice {
                    let mut pairs = vec![
                        ("Make".to_string(), ad.make.clone()),
                        ("Model".to_string(), ad.model.clone()),
                        ("Year".to_string(), ad.year.to_string()),
                        ("Price".to_string(), format!("${}", ad.price)),
                        ("Contact".to_string(), ad.contact.clone()),
                        ("Features".to_string(), ad.features.join(", ")),
                    ];
                    if self.zip_field {
                        pairs.push(("Zip".to_string(), ad.zip.clone()));
                    }
                    pb = pb.definition_list(&pairs);
                }
            }
        }
        // "More" pagination, as in Figure 2.
        if start + self.page_size < matches.len() {
            let mut params: Vec<(&str, &str)> = Vec::new();
            let make = req.param_nonempty(self.make_param);
            let model = req.param_nonempty("model");
            let zip = req.param_nonempty("zip");
            if let Some(m) = make {
                params.push((self.make_param, m));
            }
            if let Some(m) = model {
                params.push(("model", m));
            }
            if let Some(z) = zip {
                params.push(("zip", z));
            }
            let next = (page + 1).to_string();
            params.push(("page", &next));
            pb = pb.link("More", &href_with_params("/cgi-bin/search", &params));
        }
        Response::ok(pb.finish())
    }

    fn search_form_page(&self) -> Response {
        let makes: Vec<&str> = MAKES.iter().map(|(m, _)| *m).collect();
        let mut widgets = vec![Widget::select(self.make_param, "Make", &makes, false)];
        if self.model_field {
            widgets.push(Widget::text("model", "Model"));
        }
        if self.zip_field {
            widgets.push(Widget::text("zip", "Zip code"));
        }
        let pb = self.page(&format!("{} - Search", self.title)).heading("Find a used car").form(
            "/cgi-bin/search",
            "post",
            &widgets,
            "Search",
        );
        Response::ok(pb.finish())
    }

    /// Hub pages between home and the search form.
    fn hub_page(&self, level: usize) -> Response {
        let next = if level + 1 == self.entry_depth {
            "/search".to_string()
        } else {
            format!("/hub{}", level + 1)
        };
        let pb = self.page(&self.title.clone()).heading(&self.title).link_list(&[
            ("Used Cars".to_string(), next),
            ("New Cars".to_string(), "/newcars".to_string()),
            ("Financing".to_string(), "/finance-info".to_string()),
        ]);
        Response::ok(pb.finish())
    }
}

impl Site for ClassifiedsSite {
    fn host(&self) -> &str {
        &self.host
    }

    fn handle(&self, req: &Request) -> Response {
        match req.url.path.as_str() {
            "/" => {
                if self.entry_depth == 0 {
                    self.search_form_page()
                } else {
                    self.hub_page(0)
                }
            }
            p if p.starts_with("/hub") => {
                let level: usize = p.trim_start_matches("/hub").parse().unwrap_or(self.entry_depth);
                if level < self.entry_depth {
                    self.hub_page(level)
                } else {
                    Response::not_found("no such hub")
                }
            }
            "/search" => self.search_form_page(),
            "/cgi-bin/search" => self.results_page(req),
            "/newcars" | "/finance-info" => {
                Response::ok(self.page("Under construction").para("Check back soon!").finish())
            }
            other => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;
    use webbase_html::{extract, parse};

    fn data() -> Arc<Dataset> {
        Dataset::generate(11, 400)
    }

    fn get(site: &ClassifiedsSite, path: &str) -> Response {
        site.handle(&Request::get(Url::new(site.host(), path)))
    }

    #[test]
    fn entry_chain_reaches_form() {
        let site = ClassifiedsSite::ny_times(data());
        let home = get(&site, "/");
        let doc = parse(home.html());
        let links = extract::links(&doc);
        assert!(links.iter().any(|l| l.text == "Used Cars"));
        // depth 2: hub0 -> hub1 -> search
        let hub1 = get(&site, "/hub1");
        let doc1 = parse(hub1.html());
        assert!(extract::links(&doc1).iter().any(|l| l.href == "/search"));
        let search = get(&site, "/search");
        let forms = extract::forms(&parse(search.html()));
        assert_eq!(forms.len(), 1);
        assert!(forms[0].field("model").is_some());
    }

    #[test]
    fn results_filter_and_paginate() {
        let d = data();
        let site = ClassifiedsSite::www_heels(d.clone());
        let total = d.matching(SiteSlice::WwWheels, Some("ford"), None).len();
        assert!(total > 4, "need enough fords for pagination (got {total})");
        let mut page = 0;
        let mut seen = 0;
        loop {
            let resp = site.handle(&Request::post(
                Url::new(site.host(), "/cgi-bin/search").with_query([("page", page.to_string())]),
                [("mk", "ford")], // wwwheels uses the cryptic field name
            ));
            let doc = parse(resp.html());
            let tables = extract::tables(&doc);
            seen += tables[0].rows.len();
            let links = extract::links(&doc);
            match links.iter().find(|l| l.text == "More") {
                Some(_) => page += 1,
                None => break,
            }
            assert!(page < 1000, "pagination must terminate");
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn model_field_ignored_when_absent() {
        let d = data();
        let site = ClassifiedsSite::www_heels(d.clone());
        // wwwheels has no model field: model param must be ignored
        let resp = site.handle(&Request::post(
            Url::new(site.host(), "/cgi-bin/search"),
            [("mk", "ford"), ("model", "escort")],
        ));
        let doc = parse(resp.html());
        let rows = &extract::tables(&doc)[0].rows;
        // first page contains fords of any model (when non-escort fords exist)
        assert!(rows.iter().all(|r| r[0] == "ford"));
    }

    #[test]
    fn ill_formed_site_still_extracts() {
        let site = ClassifiedsSite::new_york_daily(data());
        let resp = site
            .handle(&Request::post(Url::new(site.host(), "/cgi-bin/search"), [("make", "toyota")]));
        assert!(!resp.html().contains("</td>"));
        let doc = parse(resp.html());
        let tables = extract::tables(&doc);
        assert!(!tables.is_empty());
        assert!(tables[0].rows.iter().all(|r| r[0] == "toyota"));
    }

    #[test]
    fn deflist_layout_renders_pairs() {
        let site = ClassifiedsSite::ny_times(data());
        let resp = site
            .handle(&Request::post(Url::new(site.host(), "/cgi-bin/search"), [("make", "honda")]));
        let doc = parse(resp.html());
        assert!(resp.html().contains("<dl>"));
        assert!(doc.text_content(webbase_html::NodeId::ROOT).contains("honda"));
    }

    #[test]
    fn zip_and_safety_columns() {
        let d = data();
        let cp = ClassifiedsSite::car_point(d.clone());
        let resp =
            cp.handle(&Request::post(Url::new(cp.host(), "/cgi-bin/search"), [("make", "bmw")]));
        let t = &extract::tables(&parse(resp.html()))[0];
        assert!(t.header.contains(&"Zip".to_string()));
        let cr = ClassifiedsSite::car_reviews(d);
        let resp =
            cr.handle(&Request::post(Url::new(cr.host(), "/cgi-bin/search"), [("make", "bmw")]));
        let t = &extract::tables(&parse(resp.html()))[0];
        assert!(t.header.contains(&"Safety".to_string()));
    }
}
