//! Car Insurance (`www.carinsurance.com`): premium quotes — the source
//! behind Figure 5's Insurance concept (Full Coverage / Liability).
//!
//! This site is an addition relative to the paper's Table 1 (whose
//! Example 6.1 nevertheless *queries* insurance costs); the simulated
//! Web needs it so the structured-UR example can run end to end.

use crate::data::{insurance_cost, COVERAGES, MAKES};
use crate::render::{Cell, PageBuilder, Widget};
use crate::request::{Request, Response};
use crate::server::Site;

pub struct CarInsurance;

impl Default for CarInsurance {
    fn default() -> Self {
        CarInsurance::new()
    }
}

impl CarInsurance {
    pub fn new() -> CarInsurance {
        CarInsurance
    }

    fn home(&self) -> Response {
        let makes: Vec<&str> = MAKES.iter().map(|(m, _)| *m).collect();
        Response::ok(
            PageBuilder::new("CarInsurance.com - Instant Quote")
                .heading("Insure your used car")
                .form(
                    "/cgi-bin/quote",
                    "post",
                    &[
                        Widget::select("make", "Make", &makes, false),
                        Widget::text("model", "Model"),
                        Widget::radio("coverage", "Coverage", COVERAGES),
                        Widget::select(
                            "year",
                            "Year",
                            &["1999", "1998", "1997", "1996", "1995", "1994", "1993", "1992"],
                            true,
                        ),
                    ],
                    "Get quote",
                )
                .finish(),
        )
    }

    fn quote_page(&self, req: &Request) -> Response {
        let (Some(make), Some(model), Some(coverage)) = (
            req.param_nonempty("make"),
            req.param_nonempty("model"),
            req.param_nonempty("coverage"),
        ) else {
            return Response::ok(
                PageBuilder::new("CarInsurance - Error")
                    .para("Make, model and coverage are required.")
                    .finish(),
            );
        };
        let known = MAKES
            .iter()
            .find(|(m, _)| *m == make)
            .is_some_and(|(_, models)| models.contains(&model));
        if !known {
            return Response::ok(
                PageBuilder::new("CarInsurance - No quote")
                    .para("We cannot quote that vehicle.")
                    .finish(),
            );
        }
        let years: Vec<u32> = match req.param_nonempty("year").and_then(|y| y.parse().ok()) {
            Some(y) => vec![y],
            None => (1988..=1999).rev().collect(),
        };
        let rows: Vec<Vec<Cell>> = years
            .iter()
            .map(|&y| {
                vec![
                    Cell::text(make),
                    Cell::text(model),
                    Cell::text(y.to_string()),
                    Cell::text(coverage),
                    Cell::text(format!("${}", insurance_cost(make, model, y, coverage))),
                ]
            })
            .collect();
        Response::ok(
            PageBuilder::new("CarInsurance - Your quote")
                .heading(&format!("{make} {model} ({coverage})"))
                .table(&["Make", "Model", "Year", "Coverage", "Annual Cost"], &rows)
                .finish(),
        )
    }
}

impl Site for CarInsurance {
    fn host(&self) -> &str {
        "www.carinsurance.com"
    }

    fn handle(&self, req: &Request) -> Response {
        match req.url.path.as_str() {
            "/" => self.home(),
            "/cgi-bin/quote" => self.quote_page(req),
            other => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;
    use webbase_html::{extract, parse};

    #[test]
    fn quote_for_specific_year() {
        let s = CarInsurance::new();
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/quote"),
            [("make", "jaguar"), ("model", "xj6"), ("coverage", "full"), ("year", "1996")],
        ));
        let t = &extract::tables(&parse(r.html()))[0];
        assert_eq!(t.rows.len(), 1);
        let cost: u32 = t.rows[0][4].trim_start_matches('$').parse().expect("cost parses");
        assert_eq!(cost, insurance_cost("jaguar", "xj6", 1996, "full"));
    }

    #[test]
    fn all_years_when_year_omitted() {
        let s = CarInsurance::new();
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/quote"),
            [("make", "ford"), ("model", "escort"), ("coverage", "liability")],
        ));
        assert_eq!(extract::tables(&parse(r.html()))[0].rows.len(), 12);
    }

    #[test]
    fn coverage_mandatory() {
        let s = CarInsurance::new();
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/quote"),
            [("make", "ford"), ("model", "escort")],
        ));
        assert!(r.html().contains("required"));
    }

    #[test]
    fn unknown_vehicle_not_quoted() {
        let s = CarInsurance::new();
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/quote"),
            [("make", "ford"), ("model", "xj6"), ("coverage", "full")],
        ));
        assert!(r.html().contains("cannot quote"));
    }
}
