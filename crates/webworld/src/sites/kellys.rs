//! Kelly's Blue Book (`www.kbb.com`): a three-form chain ending in a
//! price page.
//!
//! Table 3 of the paper gives the handle: mandatory = {Make, Model,
//! Condition}, optional adds {Year}. The site enforces exactly that —
//! each form in the chain insists on its field:
//!
//! ```text
//! home ── link("Used Car Values") ──► make page (form: make)
//!   ──► model page (form: model select for that make; make hidden)
//!   ──► condition page (form: condition radio, year select; rest hidden)
//!   ──► price page (table: Make, Model, Year, Condition, Blue Book Price)
//! ```
//!
//! Version 2 reproduces the change the paper observed in early 1999:
//! "new links with information about 1999 cars have been added" — an
//! auto-applicable map repair.

use crate::data::{blue_book_price_typed, CONDITIONS, MAKES, PRICE_TYPES};
use crate::render::{Cell, PageBuilder, Widget};
use crate::request::{Request, Response};
use crate::server::Site;

pub struct Kellys {
    version: u32,
}

impl Kellys {
    pub fn new(version: u32) -> Kellys {
        Kellys { version }
    }

    fn years(&self) -> Vec<String> {
        let hi = if self.version >= 2 { 1999 } else { 1998 };
        (1988..=hi).rev().map(|y| y.to_string()).collect()
    }

    fn home(&self) -> Response {
        let mut items = vec![
            ("Used Car Values".to_string(), "/used".to_string()),
            ("New Car Pricing".to_string(), "/new".to_string()),
            ("Motorcycle Values".to_string(), "/cycles".to_string()),
        ];
        if self.version >= 2 {
            items.push(("1999 Models".to_string(), "/1999-models".to_string()));
        }
        Response::ok(
            PageBuilder::new("Kelley Blue Book")
                .heading("Kelley Blue Book")
                .link_list(&items)
                .finish(),
        )
    }

    fn make_page(&self) -> Response {
        let makes: Vec<&str> = MAKES.iter().map(|(m, _)| *m).collect();
        Response::ok(
            PageBuilder::new("Blue Book - Select Make")
                .heading("Used car values")
                .form("/models", "get", &[Widget::select("make", "Make", &makes, false)], "Next")
                .finish(),
        )
    }

    fn model_page(&self, req: &Request) -> Response {
        let Some(make) = req.param_nonempty("make") else {
            return Response::ok(
                PageBuilder::new("Blue Book - Error").para("A make is required.").finish(),
            );
        };
        let Some(models) = MAKES.iter().find(|(m, _)| *m == make).map(|(_, ms)| *ms) else {
            return Response::ok(
                PageBuilder::new("Blue Book - Error").para("Unknown make.").finish(),
            );
        };
        Response::ok(
            PageBuilder::new("Blue Book - Select Model")
                .heading(&format!("{make} models"))
                .form(
                    "/condition",
                    "get",
                    &[
                        Widget::hidden("make", make),
                        Widget::select_owned(
                            "model",
                            "Model",
                            models.iter().map(ToString::to_string).collect(),
                            false,
                        ),
                    ],
                    "Next",
                )
                .finish(),
        )
    }

    fn condition_page(&self, req: &Request) -> Response {
        let (Some(make), Some(model)) = (req.param_nonempty("make"), req.param_nonempty("model"))
        else {
            return Response::ok(
                PageBuilder::new("Blue Book - Error").para("Make and model required.").finish(),
            );
        };
        let years = self.years();
        Response::ok(
            PageBuilder::new("Blue Book - Condition")
                .heading(&format!("{make} {model}"))
                .form(
                    "/cgi-bin/bb",
                    "post",
                    &[
                        Widget::hidden("make", make),
                        Widget::hidden("model", model),
                        Widget::radio("condition", "Condition", CONDITIONS),
                        Widget::radio("pricetype", "Price type", PRICE_TYPES),
                        Widget::select_owned("year", "Year", years, true),
                    ],
                    "Get Blue Book value",
                )
                .finish(),
        )
    }

    fn price_page(&self, req: &Request) -> Response {
        let (Some(make), Some(model), Some(condition), Some(price_type)) = (
            req.param_nonempty("make"),
            req.param_nonempty("model"),
            req.param_nonempty("condition"),
            req.param_nonempty("pricetype"),
        ) else {
            return Response::ok(
                PageBuilder::new("Blue Book - Error")
                    .para("Make, model, condition and price type are all required.")
                    .finish(),
            );
        };
        let years: Vec<u32> = match req.param_nonempty("year").and_then(|y| y.parse().ok()) {
            Some(y) => vec![y],
            None => {
                let hi = if self.version >= 2 { 1999 } else { 1998 };
                (1988..=hi).rev().collect()
            }
        };
        let rows: Vec<Vec<Cell>> = years
            .iter()
            .map(|&y| {
                vec![
                    Cell::text(make),
                    Cell::text(model),
                    Cell::text(y.to_string()),
                    Cell::text(condition),
                    Cell::text(price_type),
                    Cell::text(format!(
                        "${}",
                        blue_book_price_typed(make, model, y, condition, price_type)
                    )),
                ]
            })
            .collect();
        Response::ok(
            PageBuilder::new("Blue Book Values")
                .heading(&format!("{make} {model} ({condition}, {price_type})"))
                .table(
                    &["Make", "Model", "Year", "Condition", "Price Type", "Blue Book Price"],
                    &rows,
                )
                .finish(),
        )
    }
}

impl Site for Kellys {
    fn host(&self) -> &str {
        "www.kbb.com"
    }

    fn handle(&self, req: &Request) -> Response {
        match req.url.path.as_str() {
            "/" => self.home(),
            "/used" => self.make_page(),
            "/models" => self.model_page(req),
            "/condition" => self.condition_page(req),
            "/cgi-bin/bb" => self.price_page(req),
            "/new" | "/cycles" | "/1999-models" => Response::ok(
                PageBuilder::new("Blue Book").para("Section under construction.").finish(),
            ),
            other => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;
    use webbase_html::{extract, parse};

    #[test]
    fn full_chain_reaches_price() {
        let s = Kellys::new(1);
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/bb"),
            [
                ("make", "jaguar"),
                ("model", "xj6"),
                ("condition", "good"),
                ("pricetype", "retail"),
                ("year", "1995"),
            ],
        ));
        let t = &extract::tables(&parse(r.html()))[0];
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][2], "1995");
        let price: u32 = t.rows[0][5].trim_start_matches('$').parse().expect("price parses");
        assert_eq!(price, blue_book_price_typed("jaguar", "xj6", 1995, "good", "retail"));
    }

    #[test]
    fn year_optional_returns_all_years() {
        let s = Kellys::new(1);
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/bb"),
            [
                ("make", "ford"),
                ("model", "escort"),
                ("condition", "fair"),
                ("pricetype", "trade-in"),
            ],
        ));
        let t = &extract::tables(&parse(r.html()))[0];
        assert_eq!(t.rows.len(), 11); // 1988..=1998
    }

    #[test]
    fn mandatory_fields_enforced() {
        let s = Kellys::new(1);
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/bb"),
            [("make", "ford"), ("model", "escort")],
        ));
        assert!(r.html().contains("required"));
    }

    #[test]
    fn model_select_depends_on_make() {
        let s = Kellys::new(1);
        let r =
            s.handle(&Request::get(Url::new(s.host(), "/models").with_query([("make", "jaguar")])));
        let f = &extract::forms(&parse(r.html()))[0];
        let model = f.field("model").expect("model field");
        let domain = model.kind.domain().expect("select has domain");
        assert!(domain.contains(&"xj6".to_string()));
        assert!(!domain.contains(&"escort".to_string()));
    }

    #[test]
    fn condition_radio_inferred_mandatory() {
        let s = Kellys::new(1);
        let r = s.handle(&Request::get(
            Url::new(s.host(), "/condition").with_query([("make", "ford"), ("model", "escort")]),
        ));
        let f = &extract::forms(&parse(r.html()))[0];
        assert!(f.inferred_mandatory_fields().contains(&"condition"));
        // year has an "any" option → optional
        assert_eq!(f.field("year").expect("year").kind.inferred_mandatory(), Some(false));
    }

    #[test]
    fn version2_adds_1999() {
        let v1 = Kellys::new(1);
        let v2 = Kellys::new(2);
        let h1 = v1.handle(&Request::get(Url::new(v1.host(), "/")));
        let h2 = v2.handle(&Request::get(Url::new(v2.host(), "/")));
        let changes = webbase_html::diff::diff_pages(&parse(h1.html()), &parse(h2.html()));
        assert!(changes.iter().any(
            |c| matches!(c, webbase_html::diff::PageChange::LinkAdded { text, .. } if text == "1999 Models")
        ));
        // And the year select gained an option — also auto-applicable.
        let c1 = v1.handle(&Request::get(
            Url::new(v1.host(), "/condition").with_query([("make", "ford"), ("model", "escort")]),
        ));
        let c2 = v2.handle(&Request::get(
            Url::new(v2.host(), "/condition").with_query([("make", "ford"), ("model", "escort")]),
        ));
        let changes = webbase_html::diff::diff_pages(&parse(c1.html()), &parse(c2.html()));
        assert!(changes
            .iter()
            .all(|c| c.severity() == webbase_html::diff::Severity::AutoApplicable));
        assert!(!changes.is_empty());
    }
}
