//! Car and Driver (`www.caranddriver.com`): reliability/safety ratings —
//! the VPS relation `carAndDriver(Car, Safety)` of Table 1.

use crate::data::{safety_rating, MAKES};
use crate::render::{Cell, PageBuilder, Widget};
use crate::request::{Request, Response};
use crate::server::Site;

pub struct CarAndDriver;

impl Default for CarAndDriver {
    fn default() -> Self {
        CarAndDriver::new()
    }
}

impl CarAndDriver {
    pub fn new() -> CarAndDriver {
        CarAndDriver
    }

    fn home(&self) -> Response {
        let makes: Vec<&str> = MAKES.iter().map(|(m, _)| *m).collect();
        Response::ok(
            PageBuilder::new("Car and Driver - Safety Ratings")
                .heading("Safety and reliability ratings")
                .form(
                    "/cgi-bin/safety",
                    "get",
                    &[
                        Widget::select("make", "Make", &makes, false),
                        Widget::text("model", "Model"),
                    ],
                    "Look up",
                )
                .finish(),
        )
    }

    fn safety_page(&self, req: &Request) -> Response {
        let (Some(make), Some(model)) = (req.param_nonempty("make"), req.param_nonempty("model"))
        else {
            return Response::ok(
                PageBuilder::new("Car and Driver - Error")
                    .para("Both make and model are required.")
                    .finish(),
            );
        };
        let valid_model = MAKES
            .iter()
            .find(|(m, _)| *m == make)
            .is_some_and(|(_, models)| models.contains(&model));
        if !valid_model {
            return Response::ok(
                PageBuilder::new("Car and Driver - No data")
                    .para("We have no ratings for that vehicle.")
                    .finish(),
            );
        }
        let rows: Vec<Vec<Cell>> = (1988..=1999)
            .rev()
            .map(|y| {
                vec![
                    Cell::text(make),
                    Cell::text(model),
                    Cell::text(y.to_string()),
                    Cell::text(safety_rating(make, model, y)),
                ]
            })
            .collect();
        Response::ok(
            PageBuilder::new(&format!("Safety ratings: {make} {model}"))
                .heading(&format!("{make} {model}"))
                .table(&["Make", "Model", "Year", "Safety"], &rows)
                .finish(),
        )
    }
}

impl Site for CarAndDriver {
    fn host(&self) -> &str {
        "www.caranddriver.com"
    }

    fn handle(&self, req: &Request) -> Response {
        match req.url.path.as_str() {
            "/" => self.home(),
            "/cgi-bin/safety" => self.safety_page(req),
            other => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;
    use webbase_html::{extract, parse};

    #[test]
    fn ratings_for_all_years() {
        let s = CarAndDriver::new();
        let r = s.handle(&Request::get(
            Url::new(s.host(), "/cgi-bin/safety")
                .with_query([("make", "jaguar"), ("model", "xj6")]),
        ));
        let t = &extract::tables(&parse(r.html()))[0];
        assert_eq!(t.rows.len(), 12);
        assert_eq!(t.rows[0][3], safety_rating("jaguar", "xj6", 1999));
    }

    #[test]
    fn both_fields_mandatory() {
        let s = CarAndDriver::new();
        let r = s.handle(&Request::get(
            Url::new(s.host(), "/cgi-bin/safety").with_query([("make", "ford")]),
        ));
        assert!(r.html().contains("required"));
    }

    #[test]
    fn unknown_model_reports_no_data() {
        let s = CarAndDriver::new();
        let r = s.handle(&Request::get(
            Url::new(s.host(), "/cgi-bin/safety").with_query([("make", "ford"), ("model", "xj6")]),
        ));
        assert!(r.html().contains("no ratings"));
    }
}
