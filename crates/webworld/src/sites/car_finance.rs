//! Car Finance (`www.carfinance.com`): loan/lease interest rates — the
//! VPS relation `carFinance(Car, ZipCode, Duration, Rate)` of Table 1.
//!
//! Rates depend on zip and duration (mandatory) plus the car's age
//! (older cars pay a surcharge); make/model/year are optional form
//! fields echoed into the result.

use crate::data::{finance_rate, DURATIONS, MAKES, PLANS, ZIPS};
use crate::render::{Cell, PageBuilder, Widget};
use crate::request::{Request, Response};
use crate::server::Site;

pub struct CarFinance;

impl Default for CarFinance {
    fn default() -> Self {
        CarFinance::new()
    }
}

impl CarFinance {
    pub fn new() -> CarFinance {
        CarFinance
    }

    fn home(&self) -> Response {
        let makes: Vec<&str> = MAKES.iter().map(|(m, _)| *m).collect();
        let durations: Vec<String> = DURATIONS.iter().map(ToString::to_string).collect();
        let dur_refs: Vec<&str> = durations.iter().map(String::as_str).collect();
        Response::ok(
            PageBuilder::new("CarFinance.com - Rate Quote")
                .heading("Get a used-car loan quote")
                .form(
                    "/cgi-bin/rates",
                    "post",
                    &[
                        Widget::text("zip", "Zip code"),
                        Widget::radio("duration", "Duration (months)", &dur_refs),
                        Widget::radio("plan", "Plan", PLANS),
                        Widget::select("make", "Make", &makes, true),
                        Widget::text("model", "Model"),
                        Widget::select(
                            "year",
                            "Year",
                            &["1999", "1998", "1997", "1996", "1995", "1994", "1993"],
                            true,
                        ),
                    ],
                    "Get rates",
                )
                .finish(),
        )
    }

    fn rates_page(&self, req: &Request) -> Response {
        let (Some(zip), Some(duration), Some(plan)) =
            (req.param_nonempty("zip"), req.param_nonempty("duration"), req.param_nonempty("plan"))
        else {
            return Response::ok(
                PageBuilder::new("CarFinance - Error")
                    .para("Zip code, duration and plan are required.")
                    .finish(),
            );
        };
        let Ok(dur) = duration.parse::<u32>() else {
            return Response::ok(
                PageBuilder::new("CarFinance - Error").para("Bad duration.").finish(),
            );
        };
        if !ZIPS.contains(&zip) {
            return Response::ok(
                PageBuilder::new("CarFinance - Outside service area")
                    .para("We do not serve that zip code yet.")
                    .finish(),
            );
        }
        let make = req.param_nonempty("make").unwrap_or("");
        let model = req.param_nonempty("model").unwrap_or("");
        let year: Option<u32> = req.param_nonempty("year").and_then(|y| y.parse().ok());
        let mut rate = finance_rate(zip, dur, plan);
        if year.is_some_and(|y| y < 1995) {
            rate += 0.4; // older-vehicle surcharge
        }
        let rows = vec![vec![
            Cell::text(make),
            Cell::text(model),
            Cell::text(year.map(|y| y.to_string()).unwrap_or_default()),
            Cell::text(zip),
            Cell::text(dur.to_string()),
            Cell::text(plan),
            Cell::text(format!("{rate:.2}%")),
        ]];
        Response::ok(
            PageBuilder::new("CarFinance - Your rate")
                .heading("Quoted rate")
                .table(&["Make", "Model", "Year", "Zip", "Duration", "Plan", "Rate"], &rows)
                .finish(),
        )
    }
}

impl Site for CarFinance {
    fn host(&self) -> &str {
        "www.carfinance.com"
    }

    fn handle(&self, req: &Request) -> Response {
        match req.url.path.as_str() {
            "/" => self.home(),
            "/cgi-bin/rates" => self.rates_page(req),
            other => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;
    use webbase_html::{extract, parse};

    #[test]
    fn quote_with_car_details() {
        let s = CarFinance::new();
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/rates"),
            [
                ("zip", "10001"),
                ("duration", "36"),
                ("plan", "loan"),
                ("make", "jaguar"),
                ("model", "xj6"),
                ("year", "1996"),
            ],
        ));
        let t = &extract::tables(&parse(r.html()))[0];
        assert_eq!(t.rows[0][0], "jaguar");
        let rate: f64 = t.rows[0][6].trim_end_matches('%').parse().expect("rate parses");
        // The page prints two decimals; compare at that precision.
        assert!((rate - finance_rate("10001", 36, "loan")).abs() < 0.005 + 1e-9);
    }

    #[test]
    fn older_cars_pay_surcharge() {
        let s = CarFinance::new();
        let quote = |year: &str| -> f64 {
            let r = s.handle(&Request::post(
                Url::new(s.host(), "/cgi-bin/rates"),
                [("zip", "10001"), ("duration", "36"), ("plan", "loan"), ("year", year)],
            ));
            let t = &extract::tables(&parse(r.html()))[0];
            t.rows[0][6].trim_end_matches('%').parse().expect("rate parses")
        };
        assert!(quote("1993") > quote("1997"));
    }

    #[test]
    fn zip_and_duration_mandatory() {
        let s = CarFinance::new();
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/rates"),
            [("zip", "10001"), ("duration", "36")],
        ));
        assert!(r.html().contains("required"));
    }

    #[test]
    fn out_of_area_zip() {
        let s = CarFinance::new();
        let r = s.handle(&Request::post(
            Url::new(s.host(), "/cgi-bin/rates"),
            [("zip", "99999"), ("duration", "36"), ("plan", "loan")],
        ));
        assert!(r.html().contains("service area"));
    }

    #[test]
    fn duration_radio_is_mandatory_widget() {
        let s = CarFinance::new();
        let r = s.handle(&Request::get(Url::new(s.host(), "/")));
        let f = &extract::forms(&parse(r.html()))[0];
        assert!(f.inferred_mandatory_fields().contains(&"duration"));
    }
}
