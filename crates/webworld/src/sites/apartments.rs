//! A second application domain: apartment hunting.
//!
//! §6 of the paper: "we believe that webbases will be designed for
//! application domains (such as cars, jobs, houses) by the experts in
//! those domains". These two sites exist to prove the machinery is a
//! framework, not a car-shaped demo: `examples/apartment_hunting.rs`
//! builds a complete webbase over them using only the public API.
//!
//! * `www.aptlistings.com` — classified rental listings: borough
//!   (mandatory select) + bedrooms (optional), paginated results;
//! * `www.rentguide.com` — fair-rent guidelines: borough + bedrooms
//!   (both mandatory) → the guideline rate (the "blue book" of rents).

use crate::render::{href_with_params, Cell, PageBuilder, Widget};
use crate::request::{Request, Response};
use crate::server::Site;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// NYC boroughs, the domain of the `borough` attribute.
pub const BOROUGHS: &[&str] = &["manhattan", "brooklyn", "queens", "bronx", "staten island"];

/// Bedroom counts offered by the sites' forms.
pub const BEDROOMS: &[&str] = &["0", "1", "2", "3"];

/// One rental listing.
#[derive(Debug, Clone, PartialEq)]
pub struct AptAd {
    pub id: u32,
    pub borough: String,
    pub bedrooms: u32,
    pub rent: u32,
    pub contact: String,
}

/// The synthetic rental market (seeded, deterministic).
#[derive(Debug)]
pub struct AptMarket {
    pub ads: Vec<AptAd>,
}

impl AptMarket {
    pub fn generate(seed: u64, n: usize) -> Arc<AptMarket> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA9A97);
        let mut ads = Vec::with_capacity(n);
        for id in 0..n as u32 {
            let borough = BOROUGHS[rng.random_range(0..BOROUGHS.len())].to_string();
            let bedrooms = rng.random_range(0..=3u32);
            let base = fair_rent(&borough, bedrooms) as f64;
            let rent = (base * rng.random_range(0.75..1.35) / 25.0).round() as u32 * 25;
            ads.push(AptAd {
                id,
                borough,
                bedrooms,
                rent,
                contact: format!("(212) 555-{:04}", 2000 + (id * 53) % 7000),
            });
        }
        Arc::new(AptMarket { ads })
    }

    /// Ground truth for tests.
    pub fn matching(&self, borough: Option<&str>, bedrooms: Option<u32>) -> Vec<&AptAd> {
        self.ads
            .iter()
            .filter(|a| borough.is_none_or(|b| a.borough == b))
            .filter(|a| bedrooms.is_none_or(|b| a.bedrooms == b))
            .collect()
    }
}

/// The 1999 fair-rent guideline, deterministic in (borough, bedrooms).
pub fn fair_rent(borough: &str, bedrooms: u32) -> u32 {
    let base: u32 = match borough {
        "manhattan" => 1450,
        "brooklyn" => 950,
        "queens" => 850,
        "bronx" => 700,
        _ => 650,
    };
    base + bedrooms * 350
}

/// The classified-listings site.
pub struct AptListings {
    market: Arc<AptMarket>,
}

const PAGE_SIZE: usize = 4;

impl AptListings {
    pub fn new(market: Arc<AptMarket>) -> AptListings {
        AptListings { market }
    }
}

impl Site for AptListings {
    fn host(&self) -> &str {
        "www.aptlistings.com"
    }

    fn handle(&self, req: &Request) -> Response {
        match req.url.path.as_str() {
            "/" => Response::ok(
                PageBuilder::new("AptListings - NYC Rentals")
                    .heading("Find an apartment")
                    .form(
                        "/cgi-bin/find",
                        "post",
                        &[
                            Widget::select("borough", "Borough", BOROUGHS, false),
                            Widget::select("beds", "Bedrooms", BEDROOMS, true),
                        ],
                        "Search",
                    )
                    .finish(),
            ),
            "/cgi-bin/find" => {
                let Some(borough) = req.param_nonempty("borough") else {
                    return Response::ok(
                        PageBuilder::new("AptListings - Error")
                            .para("A borough is required.")
                            .finish(),
                    );
                };
                let beds: Option<u32> = req.param_nonempty("beds").and_then(|b| b.parse().ok());
                let matches = self.market.matching(Some(borough), beds);
                let page: usize = req.param("page").and_then(|p| p.parse().ok()).unwrap_or(0);
                let start = page * PAGE_SIZE;
                let shown =
                    &matches[start.min(matches.len())..(start + PAGE_SIZE).min(matches.len())];
                let rows: Vec<Vec<Cell>> = shown
                    .iter()
                    .map(|a| {
                        vec![
                            Cell::text(&a.borough),
                            Cell::text(a.bedrooms.to_string()),
                            Cell::text(format!("${}", a.rent)),
                            Cell::text(&a.contact),
                        ]
                    })
                    .collect();
                let mut pb = PageBuilder::new("AptListings - Results")
                    .heading(&format!("{} listings", matches.len()))
                    .table(&["Borough", "Bedrooms", "Rent", "Contact"], &rows);
                if start + PAGE_SIZE < matches.len() {
                    let next = (page + 1).to_string();
                    let mut params = vec![("borough", borough)];
                    let beds_s;
                    if let Some(b) = beds {
                        beds_s = b.to_string();
                        params.push(("beds", &beds_s));
                    }
                    params.push(("page", &next));
                    pb = pb.link("More", &href_with_params("/cgi-bin/find", &params));
                }
                Response::ok(pb.finish())
            }
            other => Response::not_found(other),
        }
    }
}

/// The fair-rent guideline site.
pub struct RentGuide;

impl Default for RentGuide {
    fn default() -> Self {
        RentGuide::new()
    }
}

impl RentGuide {
    pub fn new() -> RentGuide {
        RentGuide
    }
}

impl Site for RentGuide {
    fn host(&self) -> &str {
        "www.rentguide.com"
    }

    fn handle(&self, req: &Request) -> Response {
        match req.url.path.as_str() {
            "/" => Response::ok(
                PageBuilder::new("RentGuide - Fair Rent Guidelines")
                    .heading("1999 fair-rent guidelines")
                    .form(
                        "/cgi-bin/guide",
                        "get",
                        &[
                            Widget::select("borough", "Borough", BOROUGHS, false),
                            Widget::radio("beds", "Bedrooms", BEDROOMS),
                        ],
                        "Look up",
                    )
                    .finish(),
            ),
            "/cgi-bin/guide" => {
                let (Some(borough), Some(beds)) =
                    (req.param_nonempty("borough"), req.param_nonempty("beds"))
                else {
                    return Response::ok(
                        PageBuilder::new("RentGuide - Error")
                            .para("Borough and bedrooms are required.")
                            .finish(),
                    );
                };
                let Ok(b) = beds.parse::<u32>() else {
                    return Response::ok(
                        PageBuilder::new("RentGuide - Error").para("Bad bedrooms.").finish(),
                    );
                };
                let rows = vec![vec![
                    Cell::text(borough),
                    Cell::text(b.to_string()),
                    Cell::text(format!("${}", fair_rent(borough, b))),
                ]];
                Response::ok(
                    PageBuilder::new("RentGuide - Guideline")
                        .heading(&format!("{borough}, {b} bedroom(s)"))
                        .table(&["Borough", "Bedrooms", "Fair Rent"], &rows)
                        .finish(),
                )
            }
            other => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::server::SyntheticWeb;
    use crate::url::Url;
    use webbase_html::{extract, parse};

    fn web() -> (SyntheticWeb, Arc<AptMarket>) {
        let market = AptMarket::generate(3, 120);
        let web = SyntheticWeb::builder()
            .site(AptListings::new(market.clone()))
            .site(RentGuide::new())
            .latency(LatencyModel::zero())
            .build();
        (web, market)
    }

    #[test]
    fn listings_filter_and_paginate() {
        let (web, market) = web();
        let truth = market.matching(Some("brooklyn"), None).len();
        let mut seen = 0;
        let mut page = 0;
        loop {
            let (r, _) = web.fetch(&Request::post(
                Url::new("www.aptlistings.com", "/cgi-bin/find")
                    .with_query([("page", page.to_string())]),
                [("borough", "brooklyn")],
            ));
            let doc = parse(r.html());
            seen += extract::tables(&doc)[0].rows.len();
            if extract::links(&doc).iter().any(|l| l.text == "More") {
                page += 1;
            } else {
                break;
            }
        }
        assert_eq!(seen, truth);
    }

    #[test]
    fn guide_agrees_with_generator() {
        let (web, _) = web();
        let (r, _) = web.fetch(&Request::get(
            Url::new("www.rentguide.com", "/cgi-bin/guide")
                .with_query([("borough", "queens"), ("beds", "2")]),
        ));
        let t = &extract::tables(&parse(r.html()))[0];
        let shown: u32 = t.rows[0][2].trim_start_matches('$').parse().expect("rent");
        assert_eq!(shown, fair_rent("queens", 2));
    }

    #[test]
    fn mandatory_fields_enforced() {
        let (web, _) = web();
        let (r, _) = web.fetch(&Request::post(
            Url::new("www.aptlistings.com", "/cgi-bin/find"),
            [("beds", "2")],
        ));
        assert!(r.html().contains("required"));
        let (r, _) = web.fetch(&Request::get(
            Url::new("www.rentguide.com", "/cgi-bin/guide").with_query([("borough", "bronx")]),
        ));
        assert!(r.html().contains("required"));
    }

    #[test]
    fn market_rent_tracks_guideline() {
        let market = AptMarket::generate(9, 300);
        for ad in &market.ads {
            let guide = fair_rent(&ad.borough, ad.bedrooms) as f64;
            assert!((ad.rent as f64) > guide * 0.6 && (ad.rent as f64) < guide * 1.5);
        }
    }
}
