//! Property-based tests for the Transaction F-logic engine.

use proptest::prelude::*;
use webbase_flogic::goal::Goal;
use webbase_flogic::parser::{parse_goal, parse_program};
use webbase_flogic::pretty;
use webbase_flogic::store::ObjectStore;
use webbase_flogic::term::{Sym, Term, Var};
use webbase_flogic::unify::Bindings;
use webbase_flogic::Machine;

/// Generate small ground terms.
fn ground_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Term::atom(&s)),
        any::<i32>().prop_map(|i| Term::Int(i as i64)),
        "[a-zA-Z0-9 ]{0,8}".prop_map(Term::Str),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        (proptest::sample::select(vec!["f", "g", "pair"]), proptest::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::compound(f, args))
    })
}

/// Generate terms with variables 0..4.
fn open_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u32..4).prop_map(|v| Term::Var(Var(v))),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Term::atom(&s)),
        any::<i16>().prop_map(|i| Term::Int(i as i64)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        (proptest::sample::select(vec!["f", "g"]), proptest::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| Term::compound(f, args))
    })
}

proptest! {
    /// Unification of a term with itself always succeeds and binds nothing
    /// new that changes its resolution.
    #[test]
    fn unify_reflexive(t in open_term()) {
        let mut b = Bindings::new();
        prop_assert!(b.unify(&t, &t));
        prop_assert_eq!(b.resolve(&t), b.resolve(&t));
    }

    /// Unification is symmetric in success, and the resulting resolved
    /// terms agree (a unifier).
    #[test]
    fn unify_symmetric_and_agrees(a in open_term(), b in open_term()) {
        let mut b1 = Bindings::new();
        let ok1 = b1.unify(&a, &b);
        let mut b2 = Bindings::new();
        let ok2 = b2.unify(&b, &a);
        prop_assert_eq!(ok1, ok2);
        if ok1 {
            prop_assert_eq!(b1.resolve(&a), b1.resolve(&b));
            prop_assert_eq!(b2.resolve(&a), b2.resolve(&b));
        }
    }

    /// A failed unification never leaves residual bindings.
    #[test]
    fn failed_unify_is_clean(a in open_term(), b in open_term()) {
        let mut bs = Bindings::new();
        if !bs.unify(&a, &b) {
            prop_assert!(bs.is_empty());
        }
    }

    /// Ground terms unify iff they are equal.
    #[test]
    fn ground_unify_is_equality(a in ground_term(), b in ground_term()) {
        let mut bs = Bindings::new();
        prop_assert_eq!(bs.unify(&a, &b), a == b);
    }

    /// Pretty-printed terms re-parse to the same term.
    #[test]
    fn term_pretty_roundtrip(t in ground_term()) {
        let printed = pretty::term(&t);
        let reparsed = webbase_flogic::parser::parse_term(&printed)
            .unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        prop_assert_eq!(reparsed, t);
    }

    /// Store rollback is exact: after undo_to(mark), every molecule
    /// inserted after the mark is gone and every one before it survives.
    #[test]
    fn store_rollback_exact(
        before in proptest::collection::vec(("[a-c]", "[a-c]", 0i64..100), 0..10),
        after in proptest::collection::vec(("[a-c]", "[a-c]", 0i64..100), 0..10),
    ) {
        let mut st = ObjectStore::new();
        for (o, a, v) in &before {
            st.insert_setval(Term::atom(o), Sym::new(a), Term::Int(*v));
        }
        let count_before = st.molecule_count();
        let mark = st.mark();
        for (o, a, v) in &after {
            st.insert_setval(Term::atom(o), Sym::new(a), Term::Int(*v));
        }
        st.undo_to(mark);
        prop_assert_eq!(st.molecule_count(), count_before);
        for (o, a, v) in &before {
            prop_assert!(st.get_setvals(&Term::atom(o), Sym::new(a)).contains(&Term::Int(*v)));
        }
    }

    /// The engine enumerates exactly the facts that match a query pattern.
    #[test]
    fn fact_enumeration_complete(facts in proptest::collection::btree_set((0i64..50, 0i64..50), 0..20)) {
        let mut src = String::new();
        for (a, b) in &facts {
            src.push_str(&format!("r({a}, {b}). "));
        }
        if src.is_empty() { src.push_str("unused."); }
        let prog = parse_program(&src).expect("parses");
        let mut m = Machine::new(&prog, ObjectStore::new());
        if facts.is_empty() { return Ok(()); }
        let sols = m.solve_str("r(X, Y)").expect("solves");
        prop_assert_eq!(sols.len(), facts.len());
        for s in &sols {
            let x = match s["X"] { Term::Int(i) => i, ref t => panic!("{t:?}") };
            let y = match s["Y"] { Term::Int(i) => i, ref t => panic!("{t:?}") };
            prop_assert!(facts.contains(&(x, y)));
        }
    }

    /// Goal pretty/parse roundtrip on randomly structured goals.
    #[test]
    fn goal_pretty_roundtrip(seed in proptest::collection::vec(0u8..6, 1..8)) {
        // Build a goal tree from the seed bytes.
        fn build(seed: &[u8], i: &mut usize, depth: u32) -> Goal {
            let b = if *i < seed.len() { seed[*i] } else { 0 };
            *i += 1;
            if depth > 2 {
                return Goal::atom("leaf", vec![Term::Int(b as i64)]);
            }
            match b {
                0 => Goal::atom("p", vec![Term::Var(Var(0)), Term::Int(b as i64)]),
                1 => Goal::ScalarAttr(Term::atom("o"), Sym::new("a"), Term::Var(Var(1))),
                2 => Goal::seq(vec![build(seed, i, depth + 1), build(seed, i, depth + 1)]),
                3 => Goal::choice(vec![build(seed, i, depth + 1), build(seed, i, depth + 1)]),
                4 => Goal::Naf(Box::new(build(seed, i, depth + 1))),
                _ => Goal::InsertSet(Term::atom("o"), Sym::new("xs"), Term::Int(b as i64)),
            }
        }
        let mut i = 0;
        let g = build(&seed, &mut i, 0);
        // The parser renumbers variables by first occurrence, so compare
        // the *print normal form*: printing is a fixpoint under reparse.
        let printed = pretty::goal(&g);
        let (g2, _) = parse_goal(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        let printed2 = pretty::goal(&g2);
        let (g3, _) = parse_goal(&printed2).unwrap_or_else(|e| panic!("reparse {printed2:?}: {e}"));
        prop_assert_eq!(g3, g2);
    }
}
