//! Pretty-printing of terms, goals, rules, and programs.
//!
//! The output is re-parseable by [`crate::parser`] (a property the test
//! suite checks), and is the format in which the repro harness prints the
//! paper's Figure 4 navigation expressions.

use crate::goal::Goal;
use crate::program::{Program, Rule};
use crate::term::{Term, Var};
use std::fmt::Write;

/// Render a variable as `V0`, `V1`, … (parseable uppercase names).
fn var_name(v: Var) -> String {
    format!("V{}", v.0)
}

/// Render a term in concrete syntax.
pub fn term(t: &Term) -> String {
    match t {
        Term::Var(v) => var_name(*v),
        Term::Atom(s) => {
            let n = s.name();
            if is_plain_atom(&n) {
                n
            } else {
                format!("'{n}'")
            }
        }
        Term::Int(i) => i.to_string(),
        Term::Float(x) => {
            // Keep a decimal point so the value re-parses as a float.
            let s = x.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Term::Str(s) => format!("\"{s}\""),
        Term::Compound(f, args) => {
            if args.is_empty() {
                // `f()` is not parseable; a zero-ary compound prints as its
                // atom (parse normal form).
                return term(&Term::Atom(*f));
            }
            let inner: Vec<String> = args.iter().map(term).collect();
            format!("{}({})", f.name(), inner.join(", "))
        }
    }
}

fn is_plain_atom(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Render a goal in concrete syntax. `⊗` prints as `,` and `∨` as `;`,
/// with parentheses where precedence requires.
pub fn goal(g: &Goal) -> String {
    match g {
        Goal::True => "true".into(),
        Goal::Fail => "fail".into(),
        Goal::Atom(p, args) => {
            if args.is_empty() {
                p.name()
            } else {
                let inner: Vec<String> = args.iter().map(term).collect();
                format!("{}({})", p.name(), inner.join(", "))
            }
        }
        Goal::IsA(o, c) => format!("{} : {}", term(o), c.name()),
        Goal::ScalarAttr(o, a, v) => format!("{}[{} -> {}]", term(o), a.name(), term(v)),
        Goal::SetAttr(o, a, v) => format!("{}[{} ->> {}]", term(o), a.name(), term(v)),
        Goal::InsertIsA(o, c) => format!("ins({} : {})", term(o), c.name()),
        Goal::InsertScalar(o, a, v) => format!("ins({}[{} -> {}])", term(o), a.name(), term(v)),
        Goal::InsertSet(o, a, v) => format!("ins({}[{} ->> {}])", term(o), a.name(), term(v)),
        Goal::DeleteSet(o, a, v) => format!("del({}[{} ->> {}])", term(o), a.name(), term(v)),
        Goal::DeleteScalar(o, a) => format!("del({}[{} -> _])", term(o), a.name()),
        Goal::Seq(gs) => {
            let parts: Vec<String> = gs.iter().map(seq_operand).collect();
            parts.join(", ")
        }
        Goal::Choice(gs) => {
            let parts: Vec<String> = gs.iter().map(choice_operand).collect();
            format!("({})", parts.join(" ; "))
        }
        Goal::Naf(g) => format!("not({})", goal(g)),
        Goal::Cmp(op, a, b) => format!("{} {} {}", term(a), op.symbol(), term(b)),
    }
}

fn seq_operand(g: &Goal) -> String {
    // Choices inside a sequence already print parenthesised.
    goal(g)
}

fn choice_operand(g: &Goal) -> String {
    match g {
        Goal::Seq(_) => goal(g), // comma binds tighter textually inside ( ; )
        _ => goal(g),
    }
}

/// Render a rule.
pub fn rule(r: &Rule) -> String {
    let head = if r.head_args.is_empty() {
        r.head_pred.name()
    } else {
        let inner: Vec<String> = r.head_args.iter().map(term).collect();
        format!("{}({})", r.head_pred.name(), inner.join(", "))
    };
    match &r.body {
        Goal::True => format!("{head}."),
        b => format!("{head} :-\n    {}.", goal(b)),
    }
}

/// Render a whole program, one rule per line group.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for r in p.rules() {
        let _ = writeln!(out, "{}", rule(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_goal, parse_program};

    #[test]
    fn atoms_quoted_when_needed() {
        assert_eq!(term(&Term::atom("ford")), "ford");
        assert_eq!(term(&Term::atom("Car Features")), "'Car Features'");
        assert_eq!(term(&Term::atom("9lives")), "'9lives'");
    }

    #[test]
    fn floats_reparse_as_floats() {
        let printed = term(&Term::Float(2.0));
        assert_eq!(printed, "2.0");
    }

    #[test]
    fn goal_roundtrip() {
        let samples = [
            "p(X, 1), q(X)",
            "(a ; b, c)",
            "o[attr -> V], o[xs ->> W], o : page",
            "ins(o[a -> 1]), del(o[xs ->> 2]), not(q(X))",
            "X < 2, Y >= 3.5, Z \\= w",
        ];
        for s in samples {
            let (g, _) = parse_goal(s).expect("parses");
            let printed = goal(&g);
            let (g2, _) =
                parse_goal(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
            assert_eq!(g, g2, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn program_roundtrip() {
        let src = "p(X) :- q(X), (r(X) ; s(X)). q(1). q(2).";
        let p = parse_program(src).expect("parses");
        let printed = program(&p);
        let p2 = parse_program(&printed).unwrap_or_else(|e| panic!("reparse: {e}\n{printed}"));
        assert_eq!(p.rule_count(), p2.rule_count());
        assert_eq!(program(&p2), printed);
    }
}
