//! The Transaction F-logic interpreter.
//!
//! Execution follows the procedural reading of serial-Horn Transaction
//! Logic: solving a goal means finding an *execution path* — a sequence
//! of database states. Serial conjunction `a ⊗ b` executes `a`, leaving
//! the store in the state `a`'s path ends in, then executes `b` from
//! there. Backtracking out of an alternative rolls the store back to the
//! state where the alternative began (atomicity of failed branches).
//!
//! The engine is a depth-first resolution procedure in
//! continuation-passing style. Solutions are enumerated through a
//! callback which can stop the search ([`Flow::Stop`]); fuel and depth
//! limits turn runaway navigation programs into errors instead of hangs.

use crate::goal::{CmpOp, Goal};
use crate::oracle::{NullOracle, Oracle, OracleOutcome};
use crate::program::Program;
use crate::store::ObjectStore;
use crate::term::{Sym, Term, Var};
use crate::unify::Bindings;
use std::collections::HashMap;
use std::fmt;

/// Search control returned by solution callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep enumerating alternatives.
    Continue,
    /// Stop the search; the current state is kept.
    Stop,
}

/// Errors surfaced by the engine (all indicate a broken program or an
/// exhausted resource, never "no solutions").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Atom called with a predicate neither the program nor the oracle
    /// knows.
    UnknownPredicate(String, usize),
    /// The per-query fuel budget ran out (runaway recursion guard).
    FuelExhausted,
    /// Recursion exceeded the depth limit.
    DepthExceeded,
    /// A comparison was attempted on non-ground or incomparable terms.
    BadComparison(String),
    /// An update goal had unbound arguments at execution time.
    NonGroundUpdate(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownPredicate(p, n) => write!(f, "unknown predicate {p}/{n}"),
            EngineError::FuelExhausted => write!(f, "fuel exhausted"),
            EngineError::DepthExceeded => write!(f, "depth limit exceeded"),
            EngineError::BadComparison(s) => write!(f, "bad comparison: {s}"),
            EngineError::NonGroundUpdate(s) => write!(f, "non-ground update: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

type SolveResult = Result<Flow, EngineError>;

/// One enumerated solution: the query's variables resolved to terms.
pub type Solution = HashMap<String, Term>;

/// A Transaction F-logic machine: program + mutable state + oracle.
pub struct Machine<'p, O: Oracle = NullOracle> {
    program: &'p Program,
    pub store: ObjectStore,
    pub oracle: O,
    fuel: u64,
    max_depth: u32,
}

/// Default fuel per query — generous enough for full-site navigation,
/// small enough to stop a diverging recursion promptly.
pub const DEFAULT_FUEL: u64 = 5_000_000;
/// Default recursion depth limit. Navigation programs recurse once per
/// result page ("More" iteration), so real depths stay in the low
/// hundreds; the limit also keeps the interpreter's own stack usage
/// bounded (each logical level costs a handful of Rust frames).
pub const DEFAULT_MAX_DEPTH: u32 = 600;

impl<'p> Machine<'p, NullOracle> {
    pub fn new(program: &'p Program, store: ObjectStore) -> Self {
        Machine::with_oracle(program, store, NullOracle)
    }
}

impl<'p, O: Oracle> Machine<'p, O> {
    pub fn with_oracle(program: &'p Program, store: ObjectStore, oracle: O) -> Self {
        Machine { program, store, oracle, fuel: DEFAULT_FUEL, max_depth: DEFAULT_MAX_DEPTH }
    }

    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Enumerate every solution of `goal`, reporting the resolved values
    /// of `vars` (name → variable) for each.
    pub fn solve_all(
        &mut self,
        goal: &Goal,
        vars: &[(String, Var)],
    ) -> Result<Vec<Solution>, EngineError> {
        let mut solutions = Vec::new();
        let mut bindings = Bindings::new();
        let next_var = goal.var_ceiling();
        self.solve(goal, &mut bindings, next_var, 0, &mut |_m, b, _nv| {
            let sol: Solution =
                vars.iter().map(|(n, v)| (n.clone(), b.resolve(&Term::Var(*v)))).collect();
            solutions.push(sol);
            Ok(Flow::Continue)
        })?;
        Ok(solutions)
    }

    /// Execute `goal` once; returns whether a successful execution path
    /// exists. The store keeps the final state of the first successful
    /// path (transaction semantics: commit on success).
    pub fn run(&mut self, goal: &Goal) -> Result<bool, EngineError> {
        let mut bindings = Bindings::new();
        let next_var = goal.var_ceiling();
        let mut found = false;
        self.solve(goal, &mut bindings, next_var, 0, &mut |_m, _b, _nv| {
            found = true;
            Ok(Flow::Stop)
        })?;
        Ok(found)
    }

    /// Parse `text` as a goal and enumerate all solutions keyed by the
    /// variable names appearing in it. Convenience for tests and examples.
    pub fn solve_str(&mut self, text: &str) -> Result<Vec<Solution>, EngineError> {
        let (goal, vars) =
            crate::parser::parse_goal(text).unwrap_or_else(|e| panic!("bad goal {text:?}: {e}"));
        self.solve_all(&goal, &vars)
    }

    fn spend_fuel(&mut self) -> Result<(), EngineError> {
        if self.fuel == 0 {
            return Err(EngineError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Core CPS solver. `next_var` is the next fresh variable index for
    /// clause renaming; `k` is invoked at each successful execution.
    ///
    /// This dispatcher stays tiny; every goal kind is handled by its own
    /// `#[inline(never)]` method so a deep recursion only pays the stack
    /// frames of the goal kinds it actually traverses (debug-build frames
    /// of one merged match would be an order of magnitude larger).
    fn solve(
        &mut self,
        goal: &Goal,
        bnd: &mut Bindings,
        next_var: u32,
        depth: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        if depth > self.max_depth {
            return Err(EngineError::DepthExceeded);
        }
        match goal {
            Goal::True => k(self, bnd, next_var),
            Goal::Fail => Ok(Flow::Continue),
            Goal::Seq(goals) => self.solve_seq(goals, bnd, next_var, depth, k),
            Goal::Choice(alts) => self.solve_choice(alts, bnd, next_var, depth, k),
            Goal::Naf(inner) => self.solve_naf(inner, bnd, next_var, depth, k),
            Goal::Cmp(op, a, b) => self.solve_cmp(*op, a, b, bnd, next_var, k),
            Goal::IsA(o, c) => self.solve_isa(o, *c, bnd, next_var, k),
            Goal::ScalarAttr(o, a, v) => self.solve_scalar(o, *a, v, bnd, next_var, k),
            Goal::SetAttr(o, a, v) => self.solve_setattr(o, *a, v, bnd, next_var, k),
            Goal::InsertIsA(..)
            | Goal::InsertScalar(..)
            | Goal::InsertSet(..)
            | Goal::DeleteSet(..)
            | Goal::DeleteScalar(..) => self.solve_update(goal, bnd, next_var, k),
            Goal::Atom(pred, args) => self.solve_atom(*pred, args, bnd, next_var, depth, k),
        }
    }

    #[inline(never)]
    fn solve_choice(
        &mut self,
        alts: &[Goal],
        bnd: &mut Bindings,
        next_var: u32,
        depth: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        for alt in alts {
            let bm = bnd.mark();
            let sm = self.store.mark();
            let flow = self.solve(alt, bnd, next_var, depth + 1, k)?;
            if flow == Flow::Stop {
                return Ok(Flow::Stop);
            }
            bnd.undo_to(bm);
            self.store.undo_to(sm);
        }
        Ok(Flow::Continue)
    }

    #[inline(never)]
    fn solve_naf(
        &mut self,
        inner: &Goal,
        bnd: &mut Bindings,
        next_var: u32,
        depth: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        // Isolation: nothing a failed (or succeeded) NAF probe did to the
        // state may survive.
        let bm = bnd.mark();
        let sm = self.store.mark();
        let mut succeeded = false;
        self.solve(inner, bnd, next_var, depth + 1, &mut |_m, _b, _nv| {
            succeeded = true;
            Ok(Flow::Stop)
        })?;
        bnd.undo_to(bm);
        self.store.undo_to(sm);
        if succeeded {
            Ok(Flow::Continue)
        } else {
            k(self, bnd, next_var)
        }
    }

    #[inline(never)]
    fn solve_cmp(
        &mut self,
        op: CmpOp,
        a: &Term,
        b: &Term,
        bnd: &mut Bindings,
        next_var: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        let ra = bnd.resolve(a);
        let rb = bnd.resolve(b);
        if compare(op, &ra, &rb)? {
            k(self, bnd, next_var)
        } else {
            Ok(Flow::Continue)
        }
    }

    #[inline(never)]
    fn solve_isa(
        &mut self,
        o: &Term,
        c: Sym,
        bnd: &mut Bindings,
        next_var: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        let ro = bnd.resolve(o);
        if ro.is_ground() {
            if self.store.is_member(&ro, c) {
                return k(self, bnd, next_var);
            }
            return Ok(Flow::Continue);
        }
        // Enumerate members of the class.
        for m in self.store.members(c) {
            let bm = bnd.mark();
            if bnd.unify(o, &m) {
                let flow = k(self, bnd, next_var)?;
                if flow == Flow::Stop {
                    return Ok(Flow::Stop);
                }
            }
            bnd.undo_to(bm);
        }
        Ok(Flow::Continue)
    }

    #[inline(never)]
    fn solve_scalar(
        &mut self,
        o: &Term,
        a: Sym,
        v: &Term,
        bnd: &mut Bindings,
        next_var: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        let ro = bnd.resolve(o);
        let candidates: Vec<(Term, Term)> = if ro.is_ground() {
            match self.store.get_scalar(&ro, a) {
                Some(val) => vec![(ro, val.clone())],
                None => return Ok(Flow::Continue),
            }
        } else {
            self.store.scalar_pairs(a)
        };
        for (obj, val) in candidates {
            let bm = bnd.mark();
            if bnd.unify(o, &obj) && bnd.unify(v, &val) {
                let flow = k(self, bnd, next_var)?;
                if flow == Flow::Stop {
                    return Ok(Flow::Stop);
                }
            }
            bnd.undo_to(bm);
        }
        Ok(Flow::Continue)
    }

    #[inline(never)]
    fn solve_setattr(
        &mut self,
        o: &Term,
        a: Sym,
        v: &Term,
        bnd: &mut Bindings,
        next_var: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        let ro = bnd.resolve(o);
        let candidates: Vec<(Term, Term)> = if ro.is_ground() {
            self.store.get_setvals(&ro, a).iter().map(|v| (ro.clone(), v.clone())).collect()
        } else {
            self.store.setval_pairs(a)
        };
        for (obj, val) in candidates {
            let bm = bnd.mark();
            if bnd.unify(o, &obj) && bnd.unify(v, &val) {
                let flow = k(self, bnd, next_var)?;
                if flow == Flow::Stop {
                    return Ok(Flow::Stop);
                }
            }
            bnd.undo_to(bm);
        }
        Ok(Flow::Continue)
    }

    #[inline(never)]
    fn solve_update(
        &mut self,
        goal: &Goal,
        bnd: &mut Bindings,
        next_var: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        match goal {
            Goal::InsertIsA(o, c) => {
                let ro = self.ground(bnd, o, "ins(_ : _)")?;
                self.store.insert_isa(ro, *c);
            }
            Goal::InsertScalar(o, a, v) => {
                let ro = self.ground(bnd, o, "ins(_[_ -> _])")?;
                let rv = self.ground(bnd, v, "ins(_[_ -> _])")?;
                self.store.insert_scalar(ro, *a, rv);
            }
            Goal::InsertSet(o, a, v) => {
                let ro = self.ground(bnd, o, "ins(_[_ ->> _])")?;
                let rv = self.ground(bnd, v, "ins(_[_ ->> _])")?;
                self.store.insert_setval(ro, *a, rv);
            }
            Goal::DeleteSet(o, a, v) => {
                let ro = self.ground(bnd, o, "del(_[_ ->> _])")?;
                let rv = self.ground(bnd, v, "del(_[_ ->> _])")?;
                self.store.delete_setval(&ro, *a, &rv);
            }
            Goal::DeleteScalar(o, a) => {
                let ro = self.ground(bnd, o, "del(_[_ -> _])")?;
                self.store.delete_scalar(&ro, *a);
            }
            other => unreachable!("solve_update called on non-update goal {other:?}"),
        }
        k(self, bnd, next_var)
    }

    #[inline(never)]
    fn solve_seq(
        &mut self,
        goals: &[Goal],
        bnd: &mut Bindings,
        next_var: u32,
        depth: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        match goals.split_first() {
            None => k(self, bnd, next_var),
            Some((first, rest)) => self.solve(first, bnd, next_var, depth + 1, &mut |m, b, nv| {
                m.solve_seq(rest, b, nv, depth, k)
            }),
        }
    }

    #[inline(never)]
    fn solve_atom(
        &mut self,
        pred: Sym,
        args: &[Term],
        bnd: &mut Bindings,
        next_var: u32,
        depth: u32,
        k: &mut dyn FnMut(&mut Self, &mut Bindings, u32) -> SolveResult,
    ) -> SolveResult {
        self.spend_fuel()?;
        let arity = args.len();
        if self.program.is_defined(pred, arity) {
            // Clone the rule list handle to appease the borrow checker; the
            // rules themselves are cheap Rc-free clones only when matched.
            let rules: Vec<_> = self.program.lookup(pred, arity).to_vec();
            for rule in &rules {
                let bm = bnd.mark();
                let sm = self.store.mark();
                let fresh_head: Vec<Term> = args.to_vec();
                let offset = next_var;
                let rule_ceiling = rule.var_ceiling();
                let renamed_args: Vec<Term> =
                    rule.head_args.iter().map(|t| t.offset_vars(offset)).collect();
                let mut ok = true;
                for (call_arg, head_arg) in fresh_head.iter().zip(&renamed_args) {
                    if !bnd.unify(call_arg, head_arg) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let body = rule.body.offset_vars(offset);
                    let flow = self.solve(&body, bnd, offset + rule_ceiling, depth + 1, k)?;
                    if flow == Flow::Stop {
                        return Ok(Flow::Stop);
                    }
                }
                bnd.undo_to(bm);
                self.store.undo_to(sm);
            }
            return Ok(Flow::Continue);
        }
        // Not a program predicate: ask the oracle.
        let resolved: Vec<Term> = args.iter().map(|a| bnd.resolve(a)).collect();
        match self.oracle.call(pred, &resolved, &mut self.store, bnd) {
            OracleOutcome::NotMine => Err(EngineError::UnknownPredicate(pred.name(), arity)),
            OracleOutcome::Fail => Ok(Flow::Continue),
            OracleOutcome::Solutions(sols) => {
                for sol in sols {
                    if sol.len() != arity {
                        continue; // malformed oracle answer: skip
                    }
                    let bm = bnd.mark();
                    let sm = self.store.mark();
                    let mut ok = true;
                    for (arg, val) in args.iter().zip(&sol) {
                        if !bnd.unify(arg, val) {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let flow = k(self, bnd, next_var)?;
                        if flow == Flow::Stop {
                            return Ok(Flow::Stop);
                        }
                    }
                    bnd.undo_to(bm);
                    self.store.undo_to(sm);
                }
                Ok(Flow::Continue)
            }
        }
    }

    fn ground(&self, bnd: &Bindings, t: &Term, ctx: &str) -> Result<Term, EngineError> {
        let r = bnd.resolve(t);
        if r.is_ground() {
            Ok(r)
        } else {
            Err(EngineError::NonGroundUpdate(format!("{ctx}: {r:?}")))
        }
    }
}

/// Compare two ground terms. Numeric comparisons coerce Int/Float; `=`
/// and `\=` are structural equality on any ground terms; ordering on
/// strings and atoms is lexicographic.
fn compare(op: CmpOp, a: &Term, b: &Term) -> Result<bool, EngineError> {
    use std::cmp::Ordering;
    if !a.is_ground() || !b.is_ground() {
        return Err(EngineError::BadComparison(format!("{a:?} {} {b:?}", op.symbol())));
    }
    if matches!(op, CmpOp::Eq) {
        return Ok(a == b || numeric_eq(a, b));
    }
    if matches!(op, CmpOp::Ne) {
        return Ok(a != b && !numeric_eq(a, b));
    }
    let ord: Ordering = match (a, b) {
        (Term::Int(x), Term::Int(y)) => x.cmp(y),
        (Term::Float(x), Term::Float(y)) => {
            x.partial_cmp(y).ok_or_else(|| EngineError::BadComparison("NaN".into()))?
        }
        (Term::Int(x), Term::Float(y)) => {
            (*x as f64).partial_cmp(y).ok_or_else(|| EngineError::BadComparison("NaN".into()))?
        }
        (Term::Float(x), Term::Int(y)) => {
            x.partial_cmp(&(*y as f64)).ok_or_else(|| EngineError::BadComparison("NaN".into()))?
        }
        (Term::Str(x), Term::Str(y)) => x.cmp(y),
        (Term::Atom(x), Term::Atom(y)) => x.name().cmp(&y.name()),
        _ => return Err(EngineError::BadComparison(format!("{a:?} {} {b:?}", op.symbol()))),
    };
    Ok(match op {
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
        CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
    })
}

fn numeric_eq(a: &Term, b: &Term) -> bool {
    match (a, b) {
        (Term::Int(x), Term::Float(y)) | (Term::Float(y), Term::Int(x)) => *x as f64 == *y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_goal, parse_program};

    fn machine(prog: &Program) -> Machine<'_> {
        Machine::new(prog, ObjectStore::new())
    }

    #[test]
    fn facts_and_rules() {
        let p = parse_program(
            "parent(tom, bob). parent(bob, ann). \
             grand(X, Z) :- parent(X, Y), parent(Y, Z).",
        )
        .expect("parses");
        let mut m = machine(&p);
        let sols = m.solve_str("grand(tom, Z)").expect("solves");
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["Z"], Term::atom("ann"));
    }

    #[test]
    fn recursion_with_multiple_answers() {
        let p = parse_program(
            "edge(a,b). edge(b,c). edge(c,d). \
             path(X,Y) :- edge(X,Y). \
             path(X,Z) :- edge(X,Y), path(Y,Z).",
        )
        .expect("parses");
        let mut m = machine(&p);
        let sols = m.solve_str("path(a, Z)").expect("solves");
        let mut zs: Vec<String> = sols.iter().map(|s| format!("{:?}", s["Z"])).collect();
        zs.sort();
        assert_eq!(zs.len(), 3);
    }

    #[test]
    fn choice_explores_both_branches() {
        let p = parse_program("a(1). b(2).").expect("parses");
        let mut m = machine(&p);
        let sols = m.solve_str("(a(X) ; b(X))").expect("solves");
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn serial_update_then_query() {
        let p = Program::new();
        let mut m = machine(&p);
        let sols = m.solve_str("ins(car1[price -> 500]), car1[price -> P]").expect("solves");
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["P"], Term::Int(500));
    }

    #[test]
    fn failed_branch_rolls_back_state() {
        let p = Program::new();
        let mut m = machine(&p);
        // First alternative inserts then fails; second must not see the insert.
        let sols = m.solve_str("( (ins(o[a -> 1]), fail) ; true ), o[a -> V]").expect("solves");
        assert!(sols.is_empty(), "insert from failed branch leaked");
    }

    #[test]
    fn committed_path_keeps_state() {
        let p = parse_program("t :- ins(o[a -> 1]).").expect("parses");
        let mut m = machine(&p);
        assert!(m.run(&parse_goal("t").expect("goal").0).expect("runs"));
        assert_eq!(m.store.get_scalar(&Term::atom("o"), Sym::new("a")), Some(&Term::Int(1)));
    }

    #[test]
    fn naf_isolation() {
        let p = Program::new();
        let mut m = machine(&p);
        // The NAF probe's insert must not survive, and not(fail) succeeds.
        let sols = m.solve_str("not((ins(o[a -> 1]), fail)), o[a -> V]").expect("solves");
        assert!(sols.is_empty());
    }

    #[test]
    fn naf_success_blocks() {
        let p = parse_program("q(1).").expect("parses");
        let mut m = machine(&p);
        assert!(m.solve_str("not(q(1))").expect("ok").is_empty());
        assert_eq!(m.solve_str("not(q(2))").expect("ok").len(), 1);
    }

    #[test]
    fn comparisons() {
        let p = Program::new();
        let mut m = machine(&p);
        assert_eq!(m.solve_str("1 < 2").expect("ok").len(), 1);
        assert!(m.solve_str("2 < 1").expect("ok").is_empty());
        assert_eq!(m.solve_str("1 =< 1").expect("ok").len(), 1);
        assert_eq!(m.solve_str("3 > 2.5").expect("ok").len(), 1);
        assert_eq!(m.solve_str("1 = 1.0").expect("ok").len(), 1);
        assert_eq!(m.solve_str("a \\= b").expect("ok").len(), 1);
    }

    #[test]
    fn unground_comparison_is_error() {
        let p = Program::new();
        let mut m = machine(&p);
        assert!(matches!(m.solve_str("X < 2"), Err(EngineError::BadComparison(_))));
    }

    #[test]
    fn unknown_predicate_is_error() {
        let p = Program::new();
        let mut m = machine(&p);
        assert!(matches!(m.solve_str("nosuch(1)"), Err(EngineError::UnknownPredicate(_, 1))));
    }

    #[test]
    fn infinite_recursion_exhausts_fuel_or_depth() {
        let p = parse_program("loop :- loop.").expect("parses");
        let mut m = machine(&p);
        m.set_fuel(10_000);
        let err = m.solve_str("loop").expect_err("diverges");
        assert!(matches!(err, EngineError::FuelExhausted | EngineError::DepthExceeded));
    }

    #[test]
    fn isa_and_set_attributes() {
        let p = Program::new();
        let mut m = machine(&p);
        let sols = m
            .solve_str(
                "ins(f1 : form), ins(pg[actions ->> f1]), ins(pg[actions ->> l1]), \
                 pg[actions ->> A], A : form",
            )
            .expect("solves");
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["A"], Term::atom("f1"));
    }

    #[test]
    fn subclass_membership_in_queries() {
        let p = Program::new();
        let mut m = machine(&p);
        // form is a subclass of action; f1 : form implies f1 : action.
        m.store.insert_subclass(Sym::new("form"), Sym::new("action"));
        let sols = m.solve_str("ins(f1 : form), X : action").expect("solves");
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn table_oracle_builtins() {
        use crate::oracle::TableOracle;
        let p = parse_program("q(X, Y) :- fetch(X, Y).").expect("parses");
        let mut oracle = TableOracle::new();
        oracle.define(
            "fetch",
            vec![vec![Term::atom("u1"), Term::Int(1)], vec![Term::atom("u2"), Term::Int(2)]],
        );
        let mut m = Machine::with_oracle(&p, ObjectStore::new(), oracle);
        let sols = m.solve_str("q(A, B)").expect("solves");
        assert_eq!(sols.len(), 2);
        assert_eq!(m.oracle.calls.len(), 1);
    }

    #[test]
    fn oracle_answers_filtered_by_bound_args() {
        use crate::oracle::TableOracle;
        let p = Program::new();
        let mut oracle = TableOracle::new();
        oracle.define(
            "fetch",
            vec![vec![Term::atom("u1"), Term::Int(1)], vec![Term::atom("u2"), Term::Int(2)]],
        );
        let mut m = Machine::with_oracle(&p, ObjectStore::new(), oracle);
        let sols = m.solve_str("fetch(u2, N)").expect("solves");
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["N"], Term::Int(2));
    }

    #[test]
    fn seq_threads_state_left_to_right() {
        let p = Program::new();
        let mut m = machine(&p);
        // The right conjunct must see the left's update (path semantics).
        let sols =
            m.solve_str("ins(s[v -> 1]), s[v -> X], ins(s[v -> 2]), s[v -> Y]").expect("solves");
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["X"], Term::Int(1));
        assert_eq!(sols[0]["Y"], Term::Int(2));
    }

    #[test]
    fn delete_goal() {
        let p = Program::new();
        let mut m = machine(&p);
        let sols =
            m.solve_str("ins(o[xs ->> 1]), del(o[xs ->> 1]), not(o[xs ->> 1])").expect("solves");
        assert_eq!(sols.len(), 1);
    }

    /// An oracle implementing `dec(N, N-1)` for recursion tests.
    struct Dec;
    impl Oracle for Dec {
        fn call(
            &mut self,
            pred: Sym,
            args: &[Term],
            _store: &mut ObjectStore,
            _b: &Bindings,
        ) -> OracleOutcome {
            if pred == Sym::new("dec") {
                if let Term::Int(n) = args[0] {
                    return OracleOutcome::Solutions(vec![vec![Term::Int(n), Term::Int(n - 1)]]);
                }
                return OracleOutcome::Fail;
            }
            OracleOutcome::NotMine
        }
    }

    #[test]
    fn deep_but_bounded_recursion_ok() {
        // ~100 nested calls — the depth of a long "More"-button iteration —
        // must succeed within the default limits.
        let p = parse_program("count(0). count(N) :- N > 0, dec(N, M), count(M).").expect("parses");
        let mut m = Machine::with_oracle(&p, ObjectStore::new(), Dec);
        let sols = m.solve_str("count(100)").expect("solves");
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn over_deep_recursion_reports_depth_error() {
        let p = parse_program("count(0). count(N) :- N > 0, dec(N, M), count(M).").expect("parses");
        let mut m = Machine::with_oracle(&p, ObjectStore::new(), Dec);
        assert_eq!(m.solve_str("count(100000)"), Err(EngineError::DepthExceeded));
    }
}
