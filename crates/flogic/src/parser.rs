//! A concrete syntax for serial-Horn Transaction F-logic.
//!
//! This is the textual form used in tests, examples, and the Figure 4
//! pretty-printer. It follows Prolog/Florid conventions:
//!
//! ```text
//! rule     ::= head [ ":-" body ] "."
//! head     ::= pred [ "(" term {"," term} ")" ]
//! body     ::= conj { ";" conj }        -- ";" is choice ∨ (loosest)
//! conj     ::= unit { "," unit }        -- "," is serial conjunction ⊗
//! unit     ::= "(" body ")" | "not" "(" body ")"
//!            | "ins" "(" molecule ")" | "del" "(" molecule ")"
//!            | "true" | "fail" | molecule | comparison | call
//! molecule ::= path ":" ident
//!            | path "[" ident ("->" | "->>") term "]"
//! path     ::= term { "." ident }   -- F-logic path expression sugar:
//!                                      o.a[b -> V] ≡ o[a -> F], F[b -> V]
//! comparison ::= term ("=" | "\=" | "<" | ">" | "=<" | ">=") term
//! term     ::= VAR | INT | FLOAT | STRING | ident [ "(" term {"," term} ")" ]
//! ```
//!
//! Variables start with an uppercase letter or `_`; identifiers with a
//! lowercase letter. `'quoted atoms'` allow arbitrary characters.

use crate::goal::{CmpOp, Goal};
use crate::program::{Program, Rule};
use crate::term::{Sym, Term, Var};
use std::collections::HashMap;
use std::fmt;

/// A parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a whole program (a sequence of `.`-terminated rules and facts).
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(text);
    let mut program = Program::new();
    p.skip_ws();
    while !p.at_end() {
        program.push(p.rule()?);
        p.skip_ws();
    }
    Ok(program)
}

/// Parse a single goal (no trailing `.`); returns the goal and the named
/// variables occurring in it, in first-occurrence order.
pub fn parse_goal(text: &str) -> Result<(Goal, Vec<(String, Var)>), ParseError> {
    let mut p = Parser::new(text);
    let goal = p.body()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after goal"));
    }
    let vars = p
        .vars
        .iter()
        .map(|(name, var)| (name.clone(), *var))
        .collect::<Vec<_>>()
        .into_iter()
        .collect::<Vec<_>>();
    let mut ordered: Vec<(String, Var)> = vars;
    ordered.sort_by_key(|(_, v)| v.0);
    // Anonymous variables are not reported.
    ordered.retain(|(n, _)| !n.starts_with('_'));
    Ok((goal, ordered))
}

/// Parse a single term. Variables are numbered in first-occurrence order.
pub fn parse_term(text: &str) -> Result<Term, ParseError> {
    let mut p = Parser::new(text);
    let t = p.term()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after term"));
    }
    Ok(t)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    vars: HashMap<String, Var>,
    next_var: u32,
    anon: u32,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { text, bytes: text.as_bytes(), pos: 0, vars: HashMap::new(), next_var: 0, anon: 0 }
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError { offset: self.pos, message: msg.to_string() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> u8 {
        if self.at_end() {
            0
        } else {
            self.bytes[self.pos]
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while !self.at_end() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Line comments: % ... \n
            if self.peek() == b'%' {
                while !self.at_end() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        // Per-rule variable scope.
        self.vars.clear();
        self.next_var = 0;
        self.skip_ws();
        let (pred, args) = self.head()?;
        let body = if self.eat(":-") { self.body()? } else { Goal::True };
        self.expect(".")?;
        Ok(Rule { head_pred: pred, head_args: args, body })
    }

    fn head(&mut self) -> Result<(Sym, Vec<Term>), ParseError> {
        let name = self.ident()?;
        let mut args = Vec::new();
        if self.eat("(") {
            loop {
                args.push(self.term()?);
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(")")?;
        }
        Ok((Sym::new(&name), args))
    }

    /// `body := conj { ";" conj }` — `;` (choice) binds looser than `,`
    /// (serial conjunction), matching Prolog precedence.
    fn body(&mut self) -> Result<Goal, ParseError> {
        let mut parts = vec![self.conj()?];
        while self.eat(";") {
            parts.push(self.conj()?);
        }
        Ok(Goal::choice(parts))
    }

    fn conj(&mut self) -> Result<Goal, ParseError> {
        let mut parts = vec![self.unit()?];
        while self.eat(",") {
            parts.push(self.unit()?);
        }
        Ok(Goal::seq(parts))
    }

    fn unit(&mut self) -> Result<Goal, ParseError> {
        self.skip_ws();
        if self.eat("(") {
            let g = self.body()?;
            self.expect(")")?;
            return Ok(g);
        }
        // Keywords that look like calls.
        if self.lookahead_keyword("not") {
            self.expect("not")?;
            self.expect("(")?;
            let g = self.body()?;
            self.expect(")")?;
            return Ok(Goal::Naf(Box::new(g)));
        }
        if self.lookahead_keyword("ins") {
            self.expect("ins")?;
            self.expect("(")?;
            let g = self.update_molecule(true)?;
            self.expect(")")?;
            return Ok(g);
        }
        if self.lookahead_keyword("del") {
            self.expect("del")?;
            self.expect("(")?;
            let g = self.update_molecule(false)?;
            self.expect(")")?;
            return Ok(g);
        }
        if self.lookahead_keyword("true") {
            self.expect("true")?;
            return Ok(Goal::True);
        }
        if self.lookahead_keyword("fail") {
            self.expect("fail")?;
            return Ok(Goal::Fail);
        }
        // Otherwise: a term followed by molecule/comparison syntax, or a call.
        let t = self.term()?;
        // F-logic path expression (the paper's "shortcuts for longer
        // F-logic expressions" [13, 14]): `o.a.b[c -> V]` desugars to
        // `o[a -> F1] ⊗ F1[b -> F2] ⊗ F2[c -> V]` with fresh variables.
        // A `.` continues a path only when immediately followed by a
        // lowercase identifier (so rule-terminating dots stay dots).
        let mut hops: Vec<Goal> = Vec::new();
        let mut subject = t;
        while self.peek() == b'.'
            && self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_lowercase)
        {
            self.pos += 1;
            let attr = self.raw_ident()?;
            let fresh = Term::Var(Var(self.next_var));
            self.next_var += 1;
            self.anon += 1;
            self.vars.insert(format!("_path{}", self.anon), Var(self.next_var - 1));
            hops.push(Goal::ScalarAttr(subject, Sym::new(&attr), fresh.clone()));
            subject = fresh;
        }
        let t = subject;
        if !hops.is_empty() {
            self.skip_ws();
            if self.peek() != b'[' && self.peek() != b':' {
                return Err(self.err("a path expression must end in a molecule"));
            }
        }
        let wrap = |hops: Vec<Goal>, last: Goal| {
            if hops.is_empty() {
                last
            } else {
                let mut gs = hops;
                gs.push(last);
                Goal::seq(gs)
            }
        };
        self.skip_ws();
        match self.peek() {
            b':' if !self.text[self.pos..].starts_with(":-") => {
                self.pos += 1;
                let class = self.ident()?;
                Ok(wrap(hops, Goal::IsA(t, Sym::new(&class))))
            }
            b'[' => {
                self.pos += 1;
                let attr = self.ident()?;
                let setv = if self.eat("->>") {
                    true
                } else if self.eat("->") {
                    false
                } else {
                    return Err(self.err("expected -> or ->> in molecule"));
                };
                let v = self.term()?;
                self.expect("]")?;
                Ok(wrap(
                    hops,
                    if setv {
                        Goal::SetAttr(t, Sym::new(&attr), v)
                    } else {
                        Goal::ScalarAttr(t, Sym::new(&attr), v)
                    },
                ))
            }
            _ => {
                if let Some(op) = self.try_cmp_op() {
                    let rhs = self.term()?;
                    return Ok(Goal::Cmp(op, t, rhs));
                }
                // Plain predicate call.
                match t {
                    Term::Atom(s) => Ok(Goal::Atom(s, vec![])),
                    Term::Compound(s, args) => Ok(Goal::Atom(s, args)),
                    other => Err(ParseError {
                        offset: self.pos,
                        message: format!("expected a goal, found bare term {other:?}"),
                    }),
                }
            }
        }
    }

    fn update_molecule(&mut self, insert: bool) -> Result<Goal, ParseError> {
        let t = self.term()?;
        self.skip_ws();
        match self.peek() {
            b':' => {
                self.pos += 1;
                let class = self.ident()?;
                if insert {
                    Ok(Goal::InsertIsA(t, Sym::new(&class)))
                } else {
                    Err(self.err("del of class membership is not supported"))
                }
            }
            b'[' => {
                self.pos += 1;
                let attr = self.ident()?;
                if self.eat("->>") {
                    let v = self.term()?;
                    self.expect("]")?;
                    Ok(if insert {
                        Goal::InsertSet(t, Sym::new(&attr), v)
                    } else {
                        Goal::DeleteSet(t, Sym::new(&attr), v)
                    })
                } else if self.eat("->") {
                    if !insert {
                        // del(o[a -> _]) — value ignored, scalar removed.
                        let _ = self.term()?;
                        self.expect("]")?;
                        return Ok(Goal::DeleteScalar(t, Sym::new(&attr)));
                    }
                    let v = self.term()?;
                    self.expect("]")?;
                    Ok(Goal::InsertScalar(t, Sym::new(&attr), v))
                } else {
                    Err(self.err("expected -> or ->> in update molecule"))
                }
            }
            _ => Err(self.err("expected a molecule inside ins/del")),
        }
    }

    fn try_cmp_op(&mut self) -> Option<CmpOp> {
        self.skip_ws();
        // Order matters: multi-char operators first. ">=" before ">", "=<"
        // before "=".
        for (s, op) in [
            ("\\=", CmpOp::Ne),
            ("=<", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.text[self.pos..].starts_with(s) {
                self.pos += s.len();
                return Some(op);
            }
        }
        None
    }

    fn lookahead_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        rest.starts_with(kw)
            && rest[kw.len()..]
                .chars()
                .next()
                .map(|c| !c.is_alphanumeric() && c != '_')
                .unwrap_or(true)
            // `not(`/`ins(`/`del(` must be followed by '(' to be a keyword;
            // `true`/`fail` must not.
            && match kw {
                "not" | "ins" | "del" => rest[kw.len()..].trim_start().starts_with('('),
                _ => !rest[kw.len()..].trim_start().starts_with('('),
            }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        let c = self.peek();
        match c {
            b'\'' => {
                // quoted atom
                self.pos += 1;
                let start = self.pos;
                while !self.at_end() && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.at_end() {
                    return Err(self.err("unterminated quoted atom"));
                }
                let name = self.text[start..self.pos].to_string();
                self.pos += 1;
                Ok(Term::Atom(Sym::new(&name)))
            }
            b'"' => {
                self.pos += 1;
                let start = self.pos;
                while !self.at_end() && self.bytes[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.at_end() {
                    return Err(self.err("unterminated string"));
                }
                let s = self.text[start..self.pos].to_string();
                self.pos += 1;
                Ok(Term::Str(s))
            }
            b'-' | b'0'..=b'9' => self.number(),
            b'_' | b'A'..=b'Z' => {
                let name = self.raw_ident()?;
                if name == "_" {
                    // Each bare underscore is a fresh anonymous variable.
                    let v = Var(self.next_var);
                    self.next_var += 1;
                    self.anon += 1;
                    self.vars.insert(format!("_anon{}", self.anon), v);
                    return Ok(Term::Var(v));
                }
                let next = self.next_var;
                let entry = self.vars.entry(name).or_insert_with(|| Var(next));
                if entry.0 == next {
                    self.next_var += 1;
                }
                Ok(Term::Var(*entry))
            }
            b'a'..=b'z' => {
                let name = self.raw_ident()?;
                self.skip_ws_nocomment();
                if self.peek() == b'(' {
                    self.pos += 1;
                    let mut args = Vec::new();
                    loop {
                        args.push(self.term()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect(")")?;
                    Ok(Term::Compound(Sym::new(&name), args))
                } else {
                    Ok(Term::Atom(Sym::new(&name)))
                }
            }
            _ => Err(self.err("expected a term")),
        }
    }

    fn skip_ws_nocomment(&mut self) {
        while !self.at_end() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn number(&mut self) -> Result<Term, ParseError> {
        let start = self.pos;
        if self.peek() == b'-' {
            self.pos += 1;
        }
        while !self.at_end() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == b'.'
            && self.pos + 1 < self.bytes.len()
            && self.bytes[self.pos + 1].is_ascii_digit()
        {
            is_float = true;
            self.pos += 1;
            while !self.at_end() && self.bytes[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
        }
        let s = &self.text[start..self.pos];
        if s.is_empty() || s == "-" {
            return Err(self.err("expected a number"));
        }
        if is_float {
            s.parse::<f64>().map(Term::Float).map_err(|_| self.err("bad float"))
        } else {
            s.parse::<i64>().map(Term::Int).map_err(|_| self.err("integer overflow"))
        }
    }

    /// Identifier starting with a lowercase letter.
    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if !self.peek().is_ascii_lowercase() {
            return Err(self.err("expected an identifier"));
        }
        self.raw_ident()
    }

    fn raw_ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while !self.at_end() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        Ok(self.text[start..self.pos].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_facts() {
        let p = parse_program("edge(a, b). edge(b, c).").expect("parses");
        assert_eq!(p.rule_count(), 2);
    }

    #[test]
    fn parse_rule_with_body() {
        let p = parse_program("p(X) :- q(X), r(X, 1).").expect("parses");
        let r = &p.lookup(Sym::new("p"), 1)[0];
        match &r.body {
            Goal::Seq(gs) => assert_eq!(gs.len(), 2),
            g => panic!("expected Seq, got {g:?}"),
        }
    }

    #[test]
    fn variables_scoped_per_rule() {
        let p = parse_program("p(X) :- q(X). r(X) :- s(X).").expect("parses");
        for (pred, arity) in [("p", 1), ("r", 1)] {
            let rule = &p.lookup(Sym::new(pred), arity)[0];
            assert_eq!(rule.head_args[0], Term::Var(Var(0)));
        }
    }

    #[test]
    fn molecules() {
        let (g, _) = parse_goal("pg[actions ->> A], A : form, A[cgi -> Url]").expect("parses");
        match g {
            Goal::Seq(gs) => {
                assert!(matches!(gs[0], Goal::SetAttr(..)));
                assert!(matches!(gs[1], Goal::IsA(..)));
                assert!(matches!(gs[2], Goal::ScalarAttr(..)));
            }
            g => panic!("expected Seq, got {g:?}"),
        }
    }

    #[test]
    fn updates() {
        let (g, _) =
            parse_goal("ins(o : page), ins(o[a -> 1]), ins(o[xs ->> 2]), del(o[xs ->> 2])")
                .expect("parses");
        match g {
            Goal::Seq(gs) => {
                assert!(matches!(gs[0], Goal::InsertIsA(..)));
                assert!(matches!(gs[1], Goal::InsertScalar(..)));
                assert!(matches!(gs[2], Goal::InsertSet(..)));
                assert!(matches!(gs[3], Goal::DeleteSet(..)));
            }
            g => panic!("expected Seq, got {g:?}"),
        }
    }

    #[test]
    fn choice_and_grouping() {
        let (g, _) = parse_goal("a, (b ; c, d), e").expect("parses");
        match g {
            Goal::Seq(gs) => {
                assert_eq!(gs.len(), 3);
                match &gs[1] {
                    Goal::Choice(alts) => {
                        assert_eq!(alts.len(), 2);
                        assert!(matches!(alts[1], Goal::Seq(_)));
                    }
                    g => panic!("expected Choice, got {g:?}"),
                }
            }
            g => panic!("expected Seq, got {g:?}"),
        }
    }

    #[test]
    fn comparisons_parse() {
        for (txt, op) in [
            ("X = 1", CmpOp::Eq),
            ("X \\= 1", CmpOp::Ne),
            ("X < 1", CmpOp::Lt),
            ("X =< 1", CmpOp::Le),
            ("X > 1", CmpOp::Gt),
            ("X >= 1", CmpOp::Ge),
        ] {
            let (g, _) = parse_goal(txt).expect("parses");
            assert!(matches!(g, Goal::Cmp(o, _, _) if o == op), "{txt}");
        }
    }

    #[test]
    fn quoted_atoms_and_strings() {
        let t = parse_term("'Car Features'").expect("parses");
        assert_eq!(t, Term::atom("Car Features"));
        let t = parse_term("\"New York\"").expect("parses");
        assert_eq!(t, Term::str("New York"));
    }

    #[test]
    fn numbers() {
        assert_eq!(parse_term("42").expect("int"), Term::Int(42));
        assert_eq!(parse_term("-7").expect("neg"), Term::Int(-7));
        assert_eq!(parse_term("3.25").expect("float"), Term::Float(3.25));
    }

    #[test]
    fn compound_terms() {
        let t = parse_term("page(url(\"/x\"), 1)").expect("parses");
        assert_eq!(
            t,
            Term::compound(
                "page",
                vec![Term::compound("url", vec![Term::str("/x")]), Term::Int(1)]
            )
        );
    }

    #[test]
    fn goal_vars_reported_in_order() {
        let (_, vars) = parse_goal("p(Z, A), q(A, M)").expect("parses");
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Z", "A", "M"]);
    }

    #[test]
    fn anonymous_vars_are_fresh_and_hidden() {
        let (g, vars) = parse_goal("p(_, _)").expect("parses");
        assert!(vars.is_empty());
        match g {
            Goal::Atom(_, args) => assert_ne!(args[0], args[1]),
            g => panic!("expected Atom, got {g:?}"),
        }
    }

    #[test]
    fn comments_skipped() {
        let p = parse_program("% a comment\np(1). % trailing\nq(2).").expect("parses");
        assert_eq!(p.rule_count(), 2);
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_program("p(X) :- .").expect_err("bad");
        assert!(e.offset > 0);
        assert!(parse_goal("p(").is_err());
        assert!(parse_term("'unterminated").is_err());
    }

    #[test]
    fn true_fail_keywords() {
        let (g, _) = parse_goal("true, fail").expect("parses");
        // seq() drops True, so this is just Fail
        assert_eq!(g, Goal::Fail);
    }

    #[test]
    fn not_requires_parens_else_atom() {
        // `note` is an atom call, not a NAF
        let p = parse_program("note. q :- note.").expect("parses");
        assert_eq!(p.rule_count(), 2);
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use crate::interp::Machine;
    use crate::store::ObjectStore;

    #[test]
    fn path_desugars_to_hops() {
        let (g, _) = parse_goal("o.a[b -> V]").expect("parses");
        match g {
            Goal::Seq(gs) => {
                assert_eq!(gs.len(), 2);
                assert!(matches!(&gs[0], Goal::ScalarAttr(Term::Atom(_), _, Term::Var(_))));
                assert!(matches!(&gs[1], Goal::ScalarAttr(Term::Var(_), _, Term::Var(_))));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn multi_hop_path_executes() {
        // The paper's Fig 4 shortcut style: browser.currentUrl etc.
        let p = parse_program(
            "setup :- ins(o[a -> m]), ins(m[b -> n]), ins(n[c -> 42]). \
             q(V) :- setup, o.a.b[c -> V].",
        )
        .expect("parses");
        let mut m = Machine::new(&p, ObjectStore::new());
        let sols = m.solve_str("q(V)").expect("solves");
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["V"], Term::Int(42));
    }

    #[test]
    fn path_to_class_membership() {
        let p = parse_program(
            "setup :- ins(pg[next -> pg2]), ins(pg2 : data_page). \
             q :- setup, pg.next : data_page.",
        )
        .expect("parses");
        let mut m = Machine::new(&p, ObjectStore::new());
        assert_eq!(m.solve_str("q").expect("solves").len(), 1);
    }

    #[test]
    fn rule_dot_still_terminates() {
        // `p.` must not be mistaken for a path start.
        let p = parse_program("p. q :- p.").expect("parses");
        assert_eq!(p.rule_count(), 2);
    }

    #[test]
    fn unterminated_path_is_an_error() {
        assert!(parse_goal("o.a").is_err());
        assert!(parse_goal("o.a, q").is_err());
    }

    #[test]
    fn path_with_set_molecule() {
        let p = parse_program(
            "setup :- ins(site[home -> pg]), ins(pg[actions ->> a1]), ins(pg[actions ->> a2]). \
             q(A) :- setup, site.home[actions ->> A].",
        )
        .expect("parses");
        let mut m = Machine::new(&p, ObjectStore::new());
        assert_eq!(m.solve_str("q(A)").expect("solves").len(), 2);
    }
}
