//! Serial-Horn programs: rule storage and lookup.

use crate::goal::Goal;
use crate::term::{Sym, Term};
use std::collections::HashMap;

/// One serial-Horn rule `head(args) :- body` where the body is executed
/// as a serial conjunction. Facts have body `Goal::True`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub head_pred: Sym,
    pub head_args: Vec<Term>,
    pub body: Goal,
}

impl Rule {
    pub fn new(pred: &str, args: Vec<Term>, body: Goal) -> Rule {
        Rule { head_pred: Sym::new(pred), head_args: args, body }
    }

    pub fn fact(pred: &str, args: Vec<Term>) -> Rule {
        Rule::new(pred, args, Goal::True)
    }

    /// Highest variable index + 1 used in the rule.
    pub fn var_ceiling(&self) -> u32 {
        self.head_args.iter().map(Term::var_ceiling).max().unwrap_or(0).max(self.body.var_ceiling())
    }
}

/// An indexed collection of rules, keyed by `(predicate, arity)`.
#[derive(Debug, Default, Clone)]
pub struct Program {
    rules: HashMap<(Sym, usize), Vec<Rule>>,
    order: Vec<(Sym, usize)>,
}

impl Program {
    pub fn new() -> Self {
        Program::default()
    }

    pub fn push(&mut self, rule: Rule) {
        let key = (rule.head_pred, rule.head_args.len());
        let entry = self.rules.entry(key).or_default();
        if entry.is_empty() {
            self.order.push(key);
        }
        entry.push(rule);
    }

    pub fn from_rules(rules: impl IntoIterator<Item = Rule>) -> Program {
        let mut p = Program::new();
        for r in rules {
            p.push(r);
        }
        p
    }

    /// Rules for `pred/arity`, in definition order. Empty slice when the
    /// predicate is undefined (the interpreter then asks the oracle).
    pub fn lookup(&self, pred: Sym, arity: usize) -> &[Rule] {
        self.rules.get(&(pred, arity)).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn is_defined(&self, pred: Sym, arity: usize) -> bool {
        self.rules.contains_key(&(pred, arity))
    }

    /// All defined predicates in first-definition order.
    pub fn predicates(&self) -> impl Iterator<Item = (Sym, usize)> + '_ {
        self.order.iter().copied()
    }

    /// All rules, grouped by predicate in definition order.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.order.iter().flat_map(|k| self.rules[k].iter())
    }

    pub fn rule_count(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// Merge another program's rules into this one (used to combine the
    /// per-handle navigation programs of one site).
    pub fn extend(&mut self, other: Program) {
        for key in other.order {
            let rules = &other.rules[&key];
            for r in rules {
                self.push(r.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, Var};

    #[test]
    fn lookup_by_pred_and_arity() {
        let mut p = Program::new();
        p.push(Rule::fact("edge", vec![Term::atom("a"), Term::atom("b")]));
        p.push(Rule::fact("edge", vec![Term::atom("b"), Term::atom("c")]));
        p.push(Rule::fact("edge", vec![Term::atom("a")])); // different arity
        assert_eq!(p.lookup(Sym::new("edge"), 2).len(), 2);
        assert_eq!(p.lookup(Sym::new("edge"), 1).len(), 1);
        assert!(p.lookup(Sym::new("missing"), 0).is_empty());
        assert_eq!(p.rule_count(), 3);
    }

    #[test]
    fn predicates_in_definition_order() {
        let mut p = Program::new();
        p.push(Rule::fact("b", vec![]));
        p.push(Rule::fact("a", vec![]));
        p.push(Rule::fact("b", vec![Term::Int(1)]));
        let preds: Vec<String> = p.predicates().map(|(s, a)| format!("{s}/{a}")).collect();
        assert_eq!(preds, vec!["b/0", "a/0", "b/1"]);
    }

    #[test]
    fn rule_var_ceiling() {
        let r = Rule::new("p", vec![Term::Var(Var(1))], Goal::atom("q", vec![Term::Var(Var(4))]));
        assert_eq!(r.var_ceiling(), 5);
    }

    #[test]
    fn extend_merges() {
        let mut a = Program::new();
        a.push(Rule::fact("p", vec![]));
        let mut b = Program::new();
        b.push(Rule::fact("q", vec![]));
        b.push(Rule::fact("p", vec![]));
        a.extend(b);
        assert_eq!(a.rule_count(), 3);
        assert_eq!(a.lookup(Sym::new("p"), 0).len(), 2);
    }
}
