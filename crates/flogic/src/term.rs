//! Terms of the navigation calculus.
//!
//! Symbols are interned into a global table ([`Sym`] is a `u32`), so term
//! comparison and hashing never touch string data on the hot path — the
//! interpreter unifies millions of terms while iterating "More" pages.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned symbol (atom, functor, attribute, or object name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<String, Sym>,
    names: Vec<String>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner { map: HashMap::new(), names: Vec::new() }))
}

impl Sym {
    /// Intern `name`, returning its symbol.
    pub fn new(name: &str) -> Sym {
        {
            let int = interner().read();
            if let Some(&s) = int.map.get(name) {
                return s;
            }
        }
        let mut int = interner().write();
        if let Some(&s) = int.map.get(name) {
            return s;
        }
        let s = Sym(int.names.len() as u32);
        int.names.push(name.to_string());
        int.map.insert(name.to_string(), s);
        s
    }

    /// The interned string for this symbol.
    pub fn name(self) -> String {
        interner().read().names[self.0 as usize].clone()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

/// A logical variable, identified by index within its clause/query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A term: variable, atom, integer, float, string, or compound.
///
/// `Eq`/`Hash` treat floats by bit pattern; the engine never constructs
/// NaN (floats only arise from parsing prices and rates), so `Eq`'s
/// reflexivity holds in practice.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    Var(Var),
    /// An atomic symbol — also serves as an object identifier in F-logic
    /// molecules.
    Atom(Sym),
    Int(i64),
    /// Floats appear in prices and rates; they never unify with ints.
    Float(f64),
    Str(String),
    /// `f(t1, …, tn)` — compound terms model structured oids such as
    /// `page(url)` and `tuple(Make, Model, …)`.
    Compound(Sym, Vec<Term>),
}

impl Eq for Term {}

impl std::hash::Hash for Term {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Term::Var(v) => v.hash(state),
            Term::Atom(s) => s.hash(state),
            Term::Int(i) => i.hash(state),
            Term::Float(f) => f.to_bits().hash(state),
            Term::Str(s) => s.hash(state),
            Term::Compound(f, args) => {
                f.hash(state);
                args.hash(state);
            }
        }
    }
}

impl Term {
    pub fn atom(name: &str) -> Term {
        Term::Atom(Sym::new(name))
    }

    pub fn compound(name: &str, args: Vec<Term>) -> Term {
        Term::Compound(Sym::new(name), args)
    }

    pub fn str(s: impl Into<String>) -> Term {
        Term::Str(s.into())
    }

    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
            _ => true,
        }
    }

    /// Collect the variables occurring in this term, in first-occurrence
    /// order, into `out` (duplicates skipped).
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Var(v) if !out.contains(v) => {
                out.push(*v);
            }
            Term::Compound(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }

    /// Renumber every variable by adding `offset` — used to freshen rule
    /// clauses before resolution.
    pub fn offset_vars(&self, offset: u32) -> Term {
        match self {
            Term::Var(Var(v)) => Term::Var(Var(v + offset)),
            Term::Compound(f, args) => {
                Term::Compound(*f, args.iter().map(|a| a.offset_vars(offset)).collect())
            }
            other => other.clone(),
        }
    }

    /// Highest variable index occurring in the term plus one (0 if none).
    pub fn var_ceiling(&self) -> u32 {
        match self {
            Term::Var(Var(v)) => v + 1,
            Term::Compound(_, args) => args.iter().map(Term::var_ceiling).max().unwrap_or(0),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Sym::new("newsday");
        let b = Sym::new("newsday");
        assert_eq!(a, b);
        assert_eq!(a.name(), "newsday");
        assert_ne!(Sym::new("x"), Sym::new("y"));
    }

    #[test]
    fn groundness() {
        assert!(Term::atom("a").is_ground());
        assert!(!Term::Var(Var(0)).is_ground());
        assert!(!Term::compound("f", vec![Term::Int(1), Term::Var(Var(2))]).is_ground());
        assert!(Term::compound("f", vec![Term::Int(1), Term::str("x")]).is_ground());
    }

    #[test]
    fn collect_vars_dedups_in_order() {
        let t = Term::compound("f", vec![Term::Var(Var(3)), Term::Var(Var(1)), Term::Var(Var(3))]);
        let mut vs = Vec::new();
        t.collect_vars(&mut vs);
        assert_eq!(vs, vec![Var(3), Var(1)]);
    }

    #[test]
    fn offset_vars_shifts_all() {
        let t = Term::compound("f", vec![Term::Var(Var(0)), Term::atom("a")]);
        let s = t.offset_vars(10);
        assert_eq!(s, Term::compound("f", vec![Term::Var(Var(10)), Term::atom("a")]));
        assert_eq!(s.var_ceiling(), 11);
    }

    #[test]
    fn floats_and_ints_distinct() {
        assert_ne!(Term::Int(1), Term::Float(1.0));
    }
}
