//! # webbase-flogic
//!
//! A serial-Horn **Transaction F-logic** interpreter — the navigation
//! calculus of *"A Layered Architecture for Querying Dynamic Web
//! Content"* (SIGMOD 1999).
//!
//! The paper's navigation expressions are written in a subset of
//! Transaction F-logic (Kifer 1995): an amalgamation of
//!
//! * **F-logic** — objects with single-valued (`obj[attr -> v]`) and
//!   set-valued (`obj[attr ->> v]`) attributes, class membership
//!   (`obj : class`), subclassing (`c1 :: c2`) and signatures
//!   (`obj[attr => type]`), and
//! * **Transaction Logic** — formulas whose truth is defined over *paths*
//!   of database states: serial conjunction `a ⊗ b` ("do a, then b"),
//!   choice `a ∨ b`, recursion, and elementary state updates, with
//!   atomicity and isolation realised by rolling back updates on
//!   backtracking.
//!
//! The interpreter executes **serial-Horn rules** — `head :- b₁ ⊗ … ⊗ bₙ`
//! where each `bᵢ` is an atom, an F-logic molecule, an update, a choice,
//! or a *builtin action* dispatched to an [`oracle::Oracle`]. The
//! navigation layer plugs in an oracle whose builtins follow links and
//! submit forms on the (simulated) Web, which makes compiled navigation
//! expressions *executable specifications*, exactly as the paper demands.
//!
//! ```
//! use webbase_flogic::{interp::Machine, parser::parse_program, store::ObjectStore};
//!
//! let prog = parse_program(
//!     "edge(a, b). edge(b, c). \
//!      path(X, Y) :- edge(X, Y). \
//!      path(X, Z) :- edge(X, Y), path(Y, Z).",
//! ).unwrap();
//! let mut m = Machine::new(&prog, ObjectStore::new());
//! let sols = m.solve_str("path(a, Z)").unwrap();
//! assert_eq!(sols.len(), 2); // a->b, a->c
//! ```

pub mod goal;
pub mod interp;
pub mod oracle;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod signatures;
pub mod store;
pub mod term;
pub mod unify;

pub use goal::Goal;
pub use interp::Machine;
pub use oracle::{NullOracle, Oracle};
pub use program::{Program, Rule};
pub use store::ObjectStore;
pub use term::{Sym, Term};
pub use unify::Bindings;
