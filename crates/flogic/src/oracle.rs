//! Oracles: the hook through which Transaction F-logic touches the Web.
//!
//! The paper's interpreter runs on XSB with PiLLoW supplying `follow
//! link`, `submit form`, and `retrieve document` as side-effecting
//! primitives. Our equivalent is the [`Oracle`] trait: when the
//! interpreter reaches an atom whose predicate the program does not
//! define, it asks the oracle. The navigation crate implements an oracle
//! whose builtins drive a browser session over the simulated Web and
//! assert the resulting page objects into the [`ObjectStore`].
//!
//! Oracle calls are *actions*, not pure queries: they may both extend the
//! store and bind output arguments. Like real fetches, their external
//! effects are not undone on backtracking (the paper relies on fetch
//! caching for re-execution); their store effects are, via the normal
//! undo log.

use crate::store::ObjectStore;
use crate::term::{Sym, Term};
use crate::unify::Bindings;

/// Outcome of one oracle invocation.
pub enum OracleOutcome {
    /// The predicate is not an oracle builtin — fall through to rule
    /// resolution (and fail if no rules exist either).
    NotMine,
    /// The call failed (no solutions).
    Fail,
    /// The call succeeded with the given alternative argument vectors;
    /// each is unified against the call's arguments in turn on
    /// backtracking.
    Solutions(Vec<Vec<Term>>),
}

/// External-action provider for the interpreter.
pub trait Oracle {
    /// Attempt builtin `pred(args)`; `args` are resolved against the
    /// current bindings before the call. May mutate `store` (changes are
    /// subject to rollback) and any external world it owns (changes are
    /// not).
    fn call(
        &mut self,
        pred: Sym,
        args: &[Term],
        store: &mut ObjectStore,
        bindings: &Bindings,
    ) -> OracleOutcome;
}

/// Mutable references to oracles are oracles, so a long-lived oracle
/// (with its caches) can be lent to successive [`crate::Machine`]s.
impl<T: Oracle> Oracle for &mut T {
    fn call(
        &mut self,
        pred: Sym,
        args: &[Term],
        store: &mut ObjectStore,
        bindings: &Bindings,
    ) -> OracleOutcome {
        (**self).call(pred, args, store, bindings)
    }
}

/// An oracle with no builtins — pure-logic programs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullOracle;

impl Oracle for NullOracle {
    fn call(
        &mut self,
        _pred: Sym,
        _args: &[Term],
        _store: &mut ObjectStore,
        _bindings: &Bindings,
    ) -> OracleOutcome {
        OracleOutcome::NotMine
    }
}

/// A recording oracle for tests: answers from a fixed table and logs
/// every call it receives.
#[derive(Debug, Default)]
pub struct TableOracle {
    entries: Vec<(Sym, Vec<Vec<Term>>)>,
    pub calls: Vec<(Sym, Vec<Term>)>,
}

impl TableOracle {
    pub fn new() -> Self {
        TableOracle::default()
    }

    /// Register `pred` to answer with the given solutions.
    pub fn define(&mut self, pred: &str, solutions: Vec<Vec<Term>>) {
        self.entries.push((Sym::new(pred), solutions));
    }
}

impl Oracle for TableOracle {
    fn call(
        &mut self,
        pred: Sym,
        args: &[Term],
        _store: &mut ObjectStore,
        _bindings: &Bindings,
    ) -> OracleOutcome {
        self.calls.push((pred, args.to_vec()));
        match self.entries.iter().find(|(p, _)| *p == pred) {
            Some((_, sols)) => OracleOutcome::Solutions(sols.clone()),
            None => OracleOutcome::NotMine,
        }
    }
}
