//! The F-logic object store: the *database state* of Transaction Logic.
//!
//! A state is a set of ground molecules:
//!
//! * `o : c` — object `o` is a member of class `c`;
//! * `c :: d` — class `c` is a subclass of `d`;
//! * `o[a -> v]` — single-valued attribute;
//! * `o[a ->> v]` — set-valued attribute membership.
//!
//! Transaction Logic gives executions **atomicity and isolation**: when a
//! branch of a choice fails, every elementary update it performed must be
//! rolled back. The store therefore keeps an undo log; the interpreter
//! takes a [`StoreMark`] before a branch and calls [`ObjectStore::undo_to`]
//! when abandoning it.

use crate::term::{Sym, Term};
use std::collections::{HashMap, HashSet};

/// Ground molecule kinds recorded in the undo log.
#[derive(Debug, Clone)]
enum UndoOp {
    /// Remove `(o, c)` from the membership set.
    UnIsa(Term, Sym),
    /// Remove `(c, d)` from the subclass set.
    UnSub(Sym, Sym),
    /// Restore scalar attribute `(o, a)` to its previous value (None =
    /// remove).
    RestoreScalar(Term, Sym, Option<Term>),
    /// Remove `v` from set-valued `(o, a)`.
    UnSetVal(Term, Sym, Term),
    /// Re-insert `v` into set-valued `(o, a)` (undo of a delete).
    ReSetVal(Term, Sym, Term),
}

/// Watermark into the store's undo log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMark(usize);

/// A mutable F-logic object database with rollback.
#[derive(Debug, Default, Clone)]
pub struct ObjectStore {
    isa: HashSet<(Term, Sym)>,
    subclass: HashSet<(Sym, Sym)>,
    scalar: HashMap<(Term, Sym), Term>,
    setval: HashMap<(Term, Sym), Vec<Term>>,
    undo: Vec<UndoOp>,
}

impl ObjectStore {
    pub fn new() -> Self {
        ObjectStore::default()
    }

    pub fn mark(&self) -> StoreMark {
        StoreMark(self.undo.len())
    }

    /// Roll back every update made since `mark` (most recent first).
    pub fn undo_to(&mut self, mark: StoreMark) {
        while self.undo.len() > mark.0 {
            match self.undo.pop().expect("undo length checked") {
                UndoOp::UnIsa(o, c) => {
                    self.isa.remove(&(o, c));
                }
                UndoOp::UnSub(c, d) => {
                    self.subclass.remove(&(c, d));
                }
                UndoOp::RestoreScalar(o, a, prev) => match prev {
                    Some(v) => {
                        self.scalar.insert((o, a), v);
                    }
                    None => {
                        self.scalar.remove(&(o, a));
                    }
                },
                UndoOp::UnSetVal(o, a, v) => {
                    if let Some(vals) = self.setval.get_mut(&(o, a)) {
                        if let Some(pos) = vals.iter().position(|x| *x == v) {
                            vals.remove(pos);
                        }
                    }
                }
                UndoOp::ReSetVal(o, a, v) => {
                    self.setval.entry((o, a)).or_default().push(v);
                }
            }
        }
    }

    // ---- updates (all logged) ----

    /// Assert `o : c`. Idempotent.
    pub fn insert_isa(&mut self, o: Term, c: Sym) {
        debug_assert!(o.is_ground(), "store holds only ground molecules");
        if self.isa.insert((o.clone(), c)) {
            self.undo.push(UndoOp::UnIsa(o, c));
        }
    }

    /// Assert `c :: d`. Idempotent.
    pub fn insert_subclass(&mut self, c: Sym, d: Sym) {
        if self.subclass.insert((c, d)) {
            self.undo.push(UndoOp::UnSub(c, d));
        }
    }

    /// Assert `o[a -> v]`, replacing any previous value (functionality of
    /// scalar attributes).
    pub fn insert_scalar(&mut self, o: Term, a: Sym, v: Term) {
        debug_assert!(o.is_ground() && v.is_ground());
        let prev = self.scalar.insert((o.clone(), a), v);
        self.undo.push(UndoOp::RestoreScalar(o, a, prev));
    }

    /// Assert `o[a ->> v]`. Idempotent.
    pub fn insert_setval(&mut self, o: Term, a: Sym, v: Term) {
        debug_assert!(o.is_ground() && v.is_ground());
        let vals = self.setval.entry((o.clone(), a)).or_default();
        if !vals.contains(&v) {
            vals.push(v.clone());
            self.undo.push(UndoOp::UnSetVal(o, a, v));
        }
    }

    /// Retract `o[a ->> v]` if present.
    pub fn delete_setval(&mut self, o: &Term, a: Sym, v: &Term) {
        if let Some(vals) = self.setval.get_mut(&(o.clone(), a)) {
            if let Some(pos) = vals.iter().position(|x| x == v) {
                vals.remove(pos);
                self.undo.push(UndoOp::ReSetVal(o.clone(), a, v.clone()));
            }
        }
    }

    /// Retract a scalar attribute if present.
    pub fn delete_scalar(&mut self, o: &Term, a: Sym) {
        if let Some(prev) = self.scalar.remove(&(o.clone(), a)) {
            self.undo.push(UndoOp::RestoreScalar(o.clone(), a, Some(prev)));
        }
    }

    // ---- queries ----

    /// Is `o : c`, directly or through the subclass hierarchy?
    pub fn is_member(&self, o: &Term, c: Sym) -> bool {
        if self.isa.contains(&(o.clone(), c)) {
            return true;
        }
        // o : c holds if o : d for some d with d ::* c.
        self.isa.iter().any(|(obj, d)| obj == o && self.is_subclass(*d, c))
    }

    /// Reflexive-transitive subclass check `c ::* d`.
    pub fn is_subclass(&self, c: Sym, d: Sym) -> bool {
        if c == d {
            return true;
        }
        let mut seen = HashSet::new();
        let mut stack = vec![c];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            for (a, b) in &self.subclass {
                if *a == x {
                    if *b == d {
                        return true;
                    }
                    stack.push(*b);
                }
            }
        }
        false
    }

    /// All members of class `c` (directly or via subclasses).
    pub fn members(&self, c: Sym) -> Vec<Term> {
        self.isa.iter().filter(|(_, d)| self.is_subclass(*d, c)).map(|(o, _)| o.clone()).collect()
    }

    /// All direct class memberships `(object, class)`.
    pub fn memberships(&self) -> impl Iterator<Item = &(Term, Sym)> {
        self.isa.iter()
    }

    pub fn get_scalar(&self, o: &Term, a: Sym) -> Option<&Term> {
        self.scalar.get(&(o.clone(), a))
    }

    pub fn get_setvals(&self, o: &Term, a: Sym) -> &[Term] {
        self.setval.get(&(o.clone(), a)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Enumerate all `(o, v)` pairs with `o[a -> v]` — needed when the
    /// object itself is a variable in a molecule query.
    pub fn scalar_pairs(&self, a: Sym) -> Vec<(Term, Term)> {
        self.scalar
            .iter()
            .filter(|((_, attr), _)| *attr == a)
            .map(|((o, _), v)| (o.clone(), v.clone()))
            .collect()
    }

    /// Enumerate all `(o, v)` pairs with `o[a ->> v]`.
    pub fn setval_pairs(&self, a: Sym) -> Vec<(Term, Term)> {
        self.setval
            .iter()
            .filter(|((_, attr), _)| *attr == a)
            .flat_map(|((o, _), vs)| vs.iter().map(move |v| (o.clone(), v.clone())))
            .collect()
    }

    /// Number of molecules currently in the state (used by the map-builder
    /// statistics of §7).
    pub fn molecule_count(&self) -> usize {
        self.isa.len()
            + self.subclass.len()
            + self.scalar.len()
            + self.setval.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Sym, Term};

    fn s(n: &str) -> Sym {
        Sym::new(n)
    }

    #[test]
    fn scalar_insert_and_get() {
        let mut st = ObjectStore::new();
        let o = Term::atom("form01");
        st.insert_scalar(o.clone(), s("method"), Term::atom("post"));
        assert_eq!(st.get_scalar(&o, s("method")), Some(&Term::atom("post")));
        assert_eq!(st.get_scalar(&o, s("cgi")), None);
    }

    #[test]
    fn scalar_replacement_and_rollback() {
        let mut st = ObjectStore::new();
        let o = Term::atom("o");
        st.insert_scalar(o.clone(), s("a"), Term::Int(1));
        let m = st.mark();
        st.insert_scalar(o.clone(), s("a"), Term::Int(2));
        assert_eq!(st.get_scalar(&o, s("a")), Some(&Term::Int(2)));
        st.undo_to(m);
        assert_eq!(st.get_scalar(&o, s("a")), Some(&Term::Int(1)));
    }

    #[test]
    fn setval_idempotent_and_rollback() {
        let mut st = ObjectStore::new();
        let o = Term::atom("pg");
        let m = st.mark();
        st.insert_setval(o.clone(), s("actions"), Term::atom("a1"));
        st.insert_setval(o.clone(), s("actions"), Term::atom("a1"));
        st.insert_setval(o.clone(), s("actions"), Term::atom("a2"));
        assert_eq!(st.get_setvals(&o, s("actions")).len(), 2);
        st.undo_to(m);
        assert!(st.get_setvals(&o, s("actions")).is_empty());
    }

    #[test]
    fn delete_setval_rolls_back() {
        let mut st = ObjectStore::new();
        let o = Term::atom("pg");
        st.insert_setval(o.clone(), s("xs"), Term::Int(1));
        let m = st.mark();
        st.delete_setval(&o, s("xs"), &Term::Int(1));
        assert!(st.get_setvals(&o, s("xs")).is_empty());
        st.undo_to(m);
        assert_eq!(st.get_setvals(&o, s("xs")), &[Term::Int(1)]);
    }

    #[test]
    fn class_hierarchy() {
        let mut st = ObjectStore::new();
        st.insert_subclass(s("form"), s("action"));
        st.insert_subclass(s("link"), s("action"));
        st.insert_subclass(s("data_page"), s("web_page"));
        st.insert_isa(Term::atom("f1"), s("form"));
        assert!(st.is_member(&Term::atom("f1"), s("form")));
        assert!(st.is_member(&Term::atom("f1"), s("action")));
        assert!(!st.is_member(&Term::atom("f1"), s("web_page")));
        assert!(st.is_subclass(s("form"), s("form")));
        assert!(!st.is_subclass(s("action"), s("form")));
    }

    #[test]
    fn subclass_cycle_terminates() {
        let mut st = ObjectStore::new();
        st.insert_subclass(s("a"), s("b"));
        st.insert_subclass(s("b"), s("a"));
        assert!(st.is_subclass(s("a"), s("b")));
        assert!(!st.is_subclass(s("a"), s("zzz")));
    }

    #[test]
    fn members_via_subclass() {
        let mut st = ObjectStore::new();
        st.insert_subclass(s("form"), s("action"));
        st.insert_isa(Term::atom("f1"), s("form"));
        st.insert_isa(Term::atom("l1"), s("action"));
        let mut m = st.members(s("action"));
        m.sort_by_key(|t| format!("{t:?}"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn isa_rollback() {
        let mut st = ObjectStore::new();
        let m = st.mark();
        st.insert_isa(Term::atom("x"), s("c"));
        assert!(st.is_member(&Term::atom("x"), s("c")));
        st.undo_to(m);
        assert!(!st.is_member(&Term::atom("x"), s("c")));
    }

    #[test]
    fn molecule_count_tracks_all_kinds() {
        let mut st = ObjectStore::new();
        st.insert_isa(Term::atom("x"), s("c"));
        st.insert_subclass(s("c"), s("d"));
        st.insert_scalar(Term::atom("x"), s("a"), Term::Int(1));
        st.insert_setval(Term::atom("x"), s("b"), Term::Int(2));
        st.insert_setval(Term::atom("x"), s("b"), Term::Int(3));
        assert_eq!(st.molecule_count(), 5);
    }
}
