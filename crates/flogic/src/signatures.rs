//! F-logic signatures: the class declarations of the paper's Figure 3.
//!
//! Signatures (`class[attr => type]` / `class[attr =>> type]`) declare
//! the *types* of attributes and methods rather than their states. The
//! navigation layer declares the common WWW data structures — `action`,
//! `form`, `link`, `web_page`, `data_page`, `attrValPair` — through this
//! module, and the repro harness pretty-prints them to regenerate
//! Figure 3.

use crate::store::ObjectStore;
use crate::term::Sym;
use std::collections::HashMap;
use std::fmt::Write;

/// Arrow kind in a signature declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigArrow {
    /// `=>` — single-valued attribute.
    Scalar,
    /// `=>>` — set-valued attribute.
    SetValued,
}

/// One attribute/method declaration within a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigEntry {
    pub attr: String,
    pub arrow: SigArrow,
    pub ty: String,
    /// Figure 3 annotates each declaration; kept for faithful output.
    pub comment: String,
}

/// A class declaration: name, superclasses, attribute signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDecl {
    pub name: String,
    pub superclasses: Vec<String>,
    pub entries: Vec<SigEntry>,
    pub comment: String,
}

impl ClassDecl {
    pub fn new(name: &str, comment: &str) -> Self {
        ClassDecl {
            name: name.into(),
            superclasses: Vec::new(),
            entries: Vec::new(),
            comment: comment.into(),
        }
    }

    pub fn subclass_of(mut self, sup: &str) -> Self {
        self.superclasses.push(sup.into());
        self
    }

    pub fn scalar(mut self, attr: &str, ty: &str, comment: &str) -> Self {
        self.entries.push(SigEntry {
            attr: attr.into(),
            arrow: SigArrow::Scalar,
            ty: ty.into(),
            comment: comment.into(),
        });
        self
    }

    pub fn set_valued(mut self, attr: &str, ty: &str, comment: &str) -> Self {
        self.entries.push(SigEntry {
            attr: attr.into(),
            arrow: SigArrow::SetValued,
            ty: ty.into(),
            comment: comment.into(),
        });
        self
    }

    /// Install this declaration's subclass edges into a store so that
    /// membership queries respect the hierarchy.
    pub fn install(&self, store: &mut ObjectStore) {
        for sup in &self.superclasses {
            store.insert_subclass(Sym::new(&self.name), Sym::new(sup));
        }
    }

    /// Figure 3 textual rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "% {}", self.comment);
        for sup in &self.superclasses {
            let _ = writeln!(out, "{} :: {}.", self.name, sup);
        }
        for e in &self.entries {
            let arrow = match e.arrow {
                SigArrow::Scalar => "=>",
                SigArrow::SetValued => "=>>",
            };
            let _ =
                writeln!(out, "{}[{} {} {}].   % {}", self.name, e.attr, arrow, e.ty, e.comment);
        }
        out
    }
}

/// A queryable index over a set of class declarations: answers "is this
/// class declared?" and "what does attribute `a` mean on class `c`?",
/// resolving attributes through the transitive superclass chain (an
/// attribute declared on `web_page` is inherited by `data_page`).
///
/// This is what turns the Figure 3 signatures from pretty-printed
/// documentation into something a checker can enforce.
#[derive(Debug, Clone, Default)]
pub struct SignatureIndex {
    classes: HashMap<String, ClassDecl>,
}

impl SignatureIndex {
    pub fn new(decls: impl IntoIterator<Item = ClassDecl>) -> SignatureIndex {
        let mut idx = SignatureIndex::default();
        for d in decls {
            idx.add(d);
        }
        idx
    }

    /// Add a declaration; a repeated class name merges superclasses and
    /// entries (layers may supplement the base declarations).
    pub fn add(&mut self, decl: ClassDecl) {
        match self.classes.get_mut(&decl.name) {
            Some(existing) => {
                for s in decl.superclasses {
                    if !existing.superclasses.contains(&s) {
                        existing.superclasses.push(s);
                    }
                }
                for e in decl.entries {
                    if !existing.entries.iter().any(|x| x.attr == e.attr) {
                        existing.entries.push(e);
                    }
                }
            }
            None => {
                self.classes.insert(decl.name.clone(), decl);
            }
        }
    }

    pub fn has_class(&self, name: &str) -> bool {
        self.classes.contains_key(name)
    }

    /// Resolve `attr` on `class`, walking superclasses breadth-first.
    /// `None` when the class is unknown or declares no such attribute
    /// anywhere up the chain.
    pub fn resolve(&self, class: &str, attr: &str) -> Option<&SigEntry> {
        let mut queue = std::collections::VecDeque::from([class.to_string()]);
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = queue.pop_front() {
            if !seen.insert(c.clone()) {
                continue; // cycle guard
            }
            let Some(decl) = self.classes.get(&c) else { continue };
            if let Some(e) = decl.entries.iter().find(|e| e.attr == attr) {
                return Some(e);
            }
            queue.extend(decl.superclasses.iter().cloned());
        }
        None
    }
}

/// The common WWW data structures of Figure 3, verbatim in structure.
pub fn figure3_classes() -> Vec<ClassDecl> {
    vec![
        ClassDecl::new("browser", "Current URL of browsing process PID").scalar(
            "currentUrl",
            "url",
            "pid ~> url",
        ),
        ClassDecl::new("action", "Declaration of Class Action")
            .scalar("object", "flink_formg", "Action can apply to a form or a link")
            .scalar("source", "web_page", "Page where the action belongs")
            .set_valued("targets", "web_page", "Where this could lead us")
            .scalar("doit", "attrValPair", "Method to execute action"),
        ClassDecl::new("form_submit", "Form fillout is an action").subclass_of("action"),
        ClassDecl::new("link_follow", "Following a link is an action").subclass_of("action"),
        ClassDecl::new("web_page", "Declaration of Class WebPage")
            .scalar("address", "url", "URL of page")
            .scalar("title", "string", "Title of the page")
            .scalar("contents", "string", "HTML contents of page")
            .set_valued("actions", "action", "List of actions found in the page"),
        ClassDecl::new("data_page", "The class of data Web pages is a subclass of web_page")
            .subclass_of("web_page")
            .scalar("extract", "relation", "Data pages have a data extraction method"),
        ClassDecl::new("link", "Declaration of Class Link")
            .scalar("name", "string", "Name of link")
            .scalar("address", "url", "URL of link"),
        ClassDecl::new("form", "Declaration of Class Form")
            .scalar("cgi", "url", "CGI script's URL associated with this form")
            .scalar("method", "meth", "CGI invocation method")
            .set_valued("mandatory", "attribute", "Mandatory attributes of this form")
            .set_valued("optional", "attribute", "Optional attributes of this form")
            .set_valued("state", "attrValPair", "State of form (set of attribute-value pairs)"),
        ClassDecl::new("attrValPair", "Declaration of Class AttrValPair")
            .scalar("attrName", "string", "Name of the attribute part")
            .scalar("type", "widget", "Checkbox, select, radio, text etc.")
            .scalar("default", "object", "Default value of the attribute")
            .scalar("value", "object", "The value part"),
    ]
}

/// Install every Figure 3 class hierarchy edge into a store.
pub fn install_figure3(store: &mut ObjectStore) {
    for c in figure3_classes() {
        c.install(store);
    }
}

/// Render all of Figure 3.
pub fn render_figure3() -> String {
    figure3_classes().iter().map(ClassDecl::render).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn figure3_has_all_classes() {
        let names: Vec<String> = figure3_classes().into_iter().map(|c| c.name).collect();
        for expected in [
            "action",
            "form_submit",
            "link_follow",
            "web_page",
            "data_page",
            "link",
            "form",
            "attrValPair",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn install_creates_hierarchy() {
        let mut st = ObjectStore::new();
        install_figure3(&mut st);
        assert!(st.is_subclass(Sym::new("form_submit"), Sym::new("action")));
        assert!(st.is_subclass(Sym::new("data_page"), Sym::new("web_page")));
        st.insert_isa(Term::atom("p1"), Sym::new("data_page"));
        assert!(st.is_member(&Term::atom("p1"), Sym::new("web_page")));
    }

    #[test]
    fn index_resolves_through_superclasses() {
        let idx = SignatureIndex::new(figure3_classes());
        assert!(idx.has_class("data_page"));
        assert!(!idx.has_class("bogus"));
        // declared directly
        assert_eq!(idx.resolve("web_page", "address").map(|e| e.arrow), Some(SigArrow::Scalar));
        assert_eq!(idx.resolve("web_page", "actions").map(|e| e.arrow), Some(SigArrow::SetValued));
        // inherited: data_page :: web_page
        assert_eq!(idx.resolve("data_page", "title").map(|e| e.arrow), Some(SigArrow::Scalar));
        // unknown attribute / class
        assert!(idx.resolve("web_page", "nope").is_none());
        assert!(idx.resolve("bogus", "address").is_none());
    }

    #[test]
    fn index_merges_supplementary_declarations() {
        let mut idx = SignatureIndex::new(figure3_classes());
        idx.add(ClassDecl::new("link_follow", "supplement").scalar("name", "string", "anchor"));
        assert_eq!(idx.resolve("link_follow", "name").map(|e| e.arrow), Some(SigArrow::Scalar));
        // the base subclass edge survives the merge
        assert_eq!(idx.resolve("link_follow", "source").map(|e| e.arrow), Some(SigArrow::Scalar));
    }

    #[test]
    fn rendering_mentions_signature_arrows() {
        let txt = render_figure3();
        assert!(txt.contains("form[cgi => url]"));
        assert!(txt.contains("form[mandatory =>> attribute]"));
        assert!(txt.contains("data_page :: web_page."));
    }
}
