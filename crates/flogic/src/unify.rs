//! Substitutions and unification.
//!
//! Bindings form a trail-backed union of variable → term assignments;
//! the interpreter records a watermark before trying an alternative and
//! pops the trail on backtracking, so undoing a failed branch is O(number
//! of bindings made in the branch), not O(total bindings).

use crate::term::{Term, Var};
use std::collections::HashMap;

/// A substitution with an undo trail.
#[derive(Debug, Default, Clone)]
pub struct Bindings {
    map: HashMap<Var, Term>,
    trail: Vec<Var>,
}

/// A trail watermark: pass to [`Bindings::undo_to`] to roll back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark(usize);

impl Bindings {
    pub fn new() -> Self {
        Bindings::default()
    }

    pub fn mark(&self) -> Mark {
        Mark(self.trail.len())
    }

    /// Undo all bindings made since `mark`.
    pub fn undo_to(&mut self, mark: Mark) {
        while self.trail.len() > mark.0 {
            let v = self.trail.pop().expect("trail length checked");
            self.map.remove(&v);
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn bind(&mut self, v: Var, t: Term) {
        self.map.insert(v, t);
        self.trail.push(v);
    }

    /// Follow variable chains one step at a time until a non-variable or an
    /// unbound variable is reached.
    pub fn walk<'a>(&'a self, t: &'a Term) -> &'a Term {
        let mut cur = t;
        while let Term::Var(v) = cur {
            match self.map.get(v) {
                Some(next) => cur = next,
                None => return cur,
            }
        }
        cur
    }

    /// Fully apply the substitution to a term.
    pub fn resolve(&self, t: &Term) -> Term {
        let w = self.walk(t);
        match w {
            Term::Compound(f, args) => {
                Term::Compound(*f, args.iter().map(|a| self.resolve(a)).collect())
            }
            other => other.clone(),
        }
    }

    /// Does `v` occur in `t` under the current bindings?
    fn occurs(&self, v: Var, t: &Term) -> bool {
        match self.walk(t) {
            Term::Var(w) => *w == v,
            Term::Compound(_, args) => args.iter().any(|a| self.occurs(v, a)),
            _ => false,
        }
    }

    /// Unify two terms, extending the substitution. On failure the
    /// substitution is left unchanged (the caller's mark discipline also
    /// covers partial failure inside compounds).
    pub fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let mark = self.mark();
        if self.unify_inner(a, b) {
            true
        } else {
            self.undo_to(mark);
            false
        }
    }

    fn unify_inner(&mut self, a: &Term, b: &Term) -> bool {
        let wa = self.walk(a).clone();
        let wb = self.walk(b).clone();
        match (wa, wb) {
            (Term::Var(x), Term::Var(y)) if x == y => true,
            (Term::Var(x), t) | (t, Term::Var(x)) => {
                if self.occurs(x, &t) {
                    false // occurs check keeps navigation terms finite
                } else {
                    self.bind(x, t);
                    true
                }
            }
            (Term::Atom(x), Term::Atom(y)) => x == y,
            (Term::Int(x), Term::Int(y)) => x == y,
            (Term::Float(x), Term::Float(y)) => x == y,
            (Term::Str(x), Term::Str(y)) => x == y,
            (Term::Compound(f, xs), Term::Compound(g, ys)) => {
                f == g
                    && xs.len() == ys.len()
                    && xs.iter().zip(&ys).all(|(x, y)| self.unify_inner(x, y))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, Var};

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn unify_var_with_atom() {
        let mut b = Bindings::new();
        assert!(b.unify(&v(0), &Term::atom("ford")));
        assert_eq!(b.resolve(&v(0)), Term::atom("ford"));
    }

    #[test]
    fn unify_compounds() {
        let mut b = Bindings::new();
        let t1 = Term::compound("car", vec![v(0), Term::atom("escort")]);
        let t2 = Term::compound("car", vec![Term::atom("ford"), v(1)]);
        assert!(b.unify(&t1, &t2));
        assert_eq!(b.resolve(&v(0)), Term::atom("ford"));
        assert_eq!(b.resolve(&v(1)), Term::atom("escort"));
    }

    #[test]
    fn arity_mismatch_fails_cleanly() {
        let mut b = Bindings::new();
        let t1 = Term::compound("f", vec![v(0)]);
        let t2 = Term::compound("f", vec![Term::Int(1), Term::Int(2)]);
        assert!(!b.unify(&t1, &t2));
        assert!(b.is_empty()); // failed unification left no bindings
    }

    #[test]
    fn partial_failure_rolls_back() {
        let mut b = Bindings::new();
        let t1 = Term::compound("f", vec![v(0), Term::atom("x")]);
        let t2 = Term::compound("f", vec![Term::atom("a"), Term::atom("y")]);
        assert!(!b.unify(&t1, &t2));
        assert!(b.is_empty()); // X=a must have been undone
    }

    #[test]
    fn occurs_check() {
        let mut b = Bindings::new();
        let t = Term::compound("f", vec![v(0)]);
        assert!(!b.unify(&v(0), &t));
    }

    #[test]
    fn trail_undo() {
        let mut b = Bindings::new();
        assert!(b.unify(&v(0), &Term::Int(1)));
        let m = b.mark();
        assert!(b.unify(&v(1), &Term::Int(2)));
        assert!(b.unify(&v(2), &Term::Int(3)));
        b.undo_to(m);
        assert_eq!(b.len(), 1);
        assert_eq!(b.resolve(&v(0)), Term::Int(1));
        assert_eq!(b.resolve(&v(1)), v(1));
    }

    #[test]
    fn variable_chains_resolve() {
        let mut b = Bindings::new();
        assert!(b.unify(&v(0), &v(1)));
        assert!(b.unify(&v(1), &v(2)));
        assert!(b.unify(&v(2), &Term::str("done")));
        assert_eq!(b.resolve(&v(0)), Term::str("done"));
    }

    #[test]
    fn unify_same_var() {
        let mut b = Bindings::new();
        assert!(b.unify(&v(5), &v(5)));
        assert!(b.is_empty());
    }
}
