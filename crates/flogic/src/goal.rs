//! Goals: the body language of serial-Horn Transaction F-logic.

use crate::term::{Sym, Term};

/// Comparison operators usable between ground terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "\\=",
            CmpOp::Lt => "<",
            CmpOp::Le => "=<",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A goal of the navigation calculus.
///
/// Truth is path-based (Transaction Logic): `Seq` is serial conjunction
/// `⊗` ("execute left, then right, on consecutive sub-paths"), `Choice`
/// is `∨` ("execute either"), updates are elementary state transitions,
/// and everything else is a query over the current state.
#[derive(Debug, Clone, PartialEq)]
pub enum Goal {
    /// `p(t₁, …, tₙ)` — call a user predicate (rules) or a builtin action
    /// handled by the oracle.
    Atom(Sym, Vec<Term>),
    /// `o : c` — class membership query.
    IsA(Term, Sym),
    /// `o[a -> v]` — scalar attribute query.
    ScalarAttr(Term, Sym, Term),
    /// `o[a ->> v]` — set-valued attribute membership query.
    SetAttr(Term, Sym, Term),
    /// `ins(o : c)` / `ins(o[a -> v])` / `ins(o[a ->> v])` — elementary
    /// insert transitions.
    InsertIsA(Term, Sym),
    InsertScalar(Term, Sym, Term),
    InsertSet(Term, Sym, Term),
    /// `del(o[a ->> v])` — elementary delete transition.
    DeleteSet(Term, Sym, Term),
    DeleteScalar(Term, Sym),
    /// Serial conjunction `g₁ ⊗ g₂ ⊗ …` — empty sequence is the trivially
    /// true path.
    Seq(Vec<Goal>),
    /// Choice `g₁ ∨ g₂ ∨ …` — empty choice fails.
    Choice(Vec<Goal>),
    /// Negation as failure over the *current* state (no state change may
    /// escape it).
    Naf(Box<Goal>),
    /// Ground comparison (`X < Y` etc.; both sides must resolve to ground
    /// comparable terms at call time).
    Cmp(CmpOp, Term, Term),
    /// `true`
    True,
    /// `fail`
    Fail,
}

impl Goal {
    /// Sequence constructor that flattens nested sequences and drops
    /// `True` units.
    pub fn seq(goals: Vec<Goal>) -> Goal {
        let mut flat = Vec::with_capacity(goals.len());
        for g in goals {
            match g {
                Goal::Seq(inner) => flat.extend(inner),
                Goal::True => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Goal::True,
            1 => flat.pop().expect("len is 1"),
            _ => Goal::Seq(flat),
        }
    }

    /// Choice constructor that flattens nested choices.
    pub fn choice(goals: Vec<Goal>) -> Goal {
        let mut flat = Vec::with_capacity(goals.len());
        for g in goals {
            match g {
                Goal::Choice(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Goal::Fail,
            1 => flat.pop().expect("len is 1"),
            _ => Goal::Choice(flat),
        }
    }

    pub fn atom(name: &str, args: Vec<Term>) -> Goal {
        Goal::Atom(Sym::new(name), args)
    }

    /// Renumber all variables by `offset` (clause freshening).
    pub fn offset_vars(&self, offset: u32) -> Goal {
        let t = |x: &Term| x.offset_vars(offset);
        match self {
            Goal::Atom(p, args) => Goal::Atom(*p, args.iter().map(t).collect()),
            Goal::IsA(o, c) => Goal::IsA(t(o), *c),
            Goal::ScalarAttr(o, a, v) => Goal::ScalarAttr(t(o), *a, t(v)),
            Goal::SetAttr(o, a, v) => Goal::SetAttr(t(o), *a, t(v)),
            Goal::InsertIsA(o, c) => Goal::InsertIsA(t(o), *c),
            Goal::InsertScalar(o, a, v) => Goal::InsertScalar(t(o), *a, t(v)),
            Goal::InsertSet(o, a, v) => Goal::InsertSet(t(o), *a, t(v)),
            Goal::DeleteSet(o, a, v) => Goal::DeleteSet(t(o), *a, t(v)),
            Goal::DeleteScalar(o, a) => Goal::DeleteScalar(t(o), *a),
            Goal::Seq(gs) => Goal::Seq(gs.iter().map(|g| g.offset_vars(offset)).collect()),
            Goal::Choice(gs) => Goal::Choice(gs.iter().map(|g| g.offset_vars(offset)).collect()),
            Goal::Naf(g) => Goal::Naf(Box::new(g.offset_vars(offset))),
            Goal::Cmp(op, a, b) => Goal::Cmp(*op, t(a), t(b)),
            Goal::True => Goal::True,
            Goal::Fail => Goal::Fail,
        }
    }

    /// Highest variable index + 1 occurring anywhere in the goal.
    pub fn var_ceiling(&self) -> u32 {
        match self {
            Goal::Atom(_, args) => args.iter().map(Term::var_ceiling).max().unwrap_or(0),
            Goal::IsA(o, _) => o.var_ceiling(),
            Goal::ScalarAttr(o, _, v) | Goal::SetAttr(o, _, v) => {
                o.var_ceiling().max(v.var_ceiling())
            }
            Goal::InsertIsA(o, _) => o.var_ceiling(),
            Goal::InsertScalar(o, _, v) | Goal::InsertSet(o, _, v) | Goal::DeleteSet(o, _, v) => {
                o.var_ceiling().max(v.var_ceiling())
            }
            Goal::DeleteScalar(o, _) => o.var_ceiling(),
            Goal::Seq(gs) | Goal::Choice(gs) => gs.iter().map(Goal::var_ceiling).max().unwrap_or(0),
            Goal::Naf(g) => g.var_ceiling(),
            Goal::Cmp(_, a, b) => a.var_ceiling().max(b.var_ceiling()),
            Goal::True | Goal::Fail => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    #[test]
    fn seq_flattens_and_drops_true() {
        let g = Goal::seq(vec![
            Goal::True,
            Goal::Seq(vec![Goal::atom("a", vec![]), Goal::atom("b", vec![])]),
            Goal::atom("c", vec![]),
        ]);
        match g {
            Goal::Seq(gs) => assert_eq!(gs.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn singleton_seq_unwraps() {
        assert_eq!(Goal::seq(vec![Goal::atom("a", vec![])]), Goal::atom("a", vec![]));
        assert_eq!(Goal::seq(vec![]), Goal::True);
    }

    #[test]
    fn empty_choice_fails() {
        assert_eq!(Goal::choice(vec![]), Goal::Fail);
    }

    #[test]
    fn var_ceiling_spans_structure() {
        let g = Goal::Seq(vec![
            Goal::atom("p", vec![Term::Var(Var(2))]),
            Goal::Naf(Box::new(Goal::atom("q", vec![Term::Var(Var(7))]))),
        ]);
        assert_eq!(g.var_ceiling(), 8);
        let shifted = g.offset_vars(10);
        assert_eq!(shifted.var_ceiling(), 18);
    }
}
