//! Logical relation definitions — Table 2.

use webbase_relational::prelude::*;

/// A logical relation: a name and its defining algebra over VPS
/// relations.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalRelation {
    pub name: String,
    pub def: Expr,
}

impl LogicalRelation {
    pub fn new(name: &str, def: Expr) -> LogicalRelation {
        LogicalRelation { name: name.to_string(), def }
    }
}

/// The attributes of the paper's `Car` shorthand.
pub const CAR_ATTRS: [&str; 3] = ["make", "model", "year"];

/// The Table 2 logical schema, extended with the additional classified
/// sources our simulated Web carries (the paper's own table lists the
/// 1999 sources; the mapping technique is the same):
///
/// ```text
/// classifieds(Car, Price, Contact, Features) =
///     π(newsday ⋈ newsdayCarFeatures) ∪ π(nyTimes) ∪ π(nyDaily)
/// dealers(Car, Price, Contact, Features)     = π(carPoint) ∪ π(autoWeb)
/// blue_price(Car, Condition, BBPrice)        = kellys
/// reliability(Car, Safety)                   = carAndDriver
/// interest(Car, ZipCode, Duration, Rate)     = carFinance
/// ```
///
/// plus the aggregator and insurance views of the extended experiments:
///
/// ```text
/// aggregators(Car, Price, Contact, Features) =
///     π(wwwheels) ∪ π(autoConnect) ∪ π(yahooCars)
/// insurance(Car, Coverage, Cost)             = carInsurance
/// ```
pub fn paper_schema() -> Vec<LogicalRelation> {
    let ad_attrs = ["make", "model", "year", "price", "contact", "features"];
    let classifieds = Expr::relation("newsday")
        .join(Expr::relation("newsdayCarFeatures"))
        .project(ad_attrs)
        .union(Expr::relation("nyTimes").project(ad_attrs))
        .union(Expr::relation("nyDaily").project(ad_attrs));
    let dealers = Expr::relation("carPoint")
        .project(ad_attrs)
        .union(Expr::relation("autoWeb").project(ad_attrs));
    let aggregators = Expr::relation("wwwheels")
        .project(ad_attrs)
        .union(Expr::relation("autoConnect").project(ad_attrs))
        .union(Expr::relation("yahooCars").project(ad_attrs));
    let blue_price = Expr::relation("kellys").project([
        "make",
        "model",
        "year",
        "condition",
        "pricetype",
        "bbprice",
    ]);
    let reliability = Expr::relation("carAndDriver").project(["make", "model", "year", "safety"]);
    let interest = Expr::relation("carFinance")
        .project(["make", "model", "year", "zip", "duration", "plan", "rate"]);
    let insurance =
        Expr::relation("carInsurance").project(["make", "model", "year", "coverage", "cost"]);
    vec![
        LogicalRelation::new("classifieds", classifieds),
        LogicalRelation::new("dealers", dealers),
        LogicalRelation::new("aggregators", aggregators),
        LogicalRelation::new("blue_price", blue_price),
        LogicalRelation::new("reliability", reliability),
        LogicalRelation::new("interest", interest),
        LogicalRelation::new("insurance", insurance),
    ]
}

/// The Table 2 rendering: each logical relation with its definition.
pub fn render_table2(relations: &[LogicalRelation]) -> String {
    let mut out = String::from("Logical-level relations\n");
    for r in relations {
        out.push_str(&format!("  {} = {}\n", r.name, r.def));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_the_paper_relations() {
        let rels = paper_schema();
        for name in ["classifieds", "dealers", "blue_price", "reliability", "interest"] {
            assert!(rels.iter().any(|r| r.name == name), "missing {name}");
        }
    }

    #[test]
    fn definitions_reference_vps_relations() {
        let rels = paper_schema();
        let classifieds = rels.iter().find(|r| r.name == "classifieds").expect("exists");
        let bases = classifieds.def.base_relations();
        assert!(bases.contains(&"newsday"));
        assert!(bases.contains(&"newsdayCarFeatures"));
        assert!(bases.contains(&"nyTimes"));
    }

    #[test]
    fn table2_renders() {
        let txt = render_table2(&paper_schema());
        assert!(txt.contains("classifieds = "));
        assert!(txt.contains("⋈"));
        assert!(txt.contains("∪"));
    }
}
