//! # webbase-logical
//!
//! The **logical layer** (§5 of the paper): a site-independent relational
//! view over the VPS.
//!
//! "While \[the\] VPS layer has eight relations that shield the user from
//! navigation details, the five logical relations … show a view of the
//! Web data that is completely transparent with respect to the location
//! of the data source."
//!
//! * [`schema`] — logical relations as algebra over VPS relations; the
//!   exact Table 2 instance is [`schema::paper_schema`];
//! * [`standardize`] — attribute-name standardisation with the fuzzy
//!   matching fallback §7 describes;
//! * [`layer`] — [`layer::LogicalLayer`] evaluates logical relations
//!   (with binding propagation and join ordering inherited from
//!   `webbase-relational`) and is itself a `RelationProvider`, so the
//!   external-schema layer can treat logical relations as base tables.

pub mod layer;
pub mod schema;

/// Attribute standardisation lives in `webbase-relational` (it is a
/// schema-level concern shared with the navigation recorder); re-exported
/// here because §5/§7 discuss it as a logical-layer responsibility.
pub use webbase_relational::standardize;

pub use layer::LogicalLayer;
pub use schema::{paper_schema, LogicalRelation};
pub use webbase_relational::standardize::Standardizer;
// Re-exported so the external-schema layer can surface per-site
// degradation and query budgets without depending on the navigation
// crate.
pub use webbase_vps::{
    parse_resume, render_resume, BudgetDenial, BudgetSnapshot, BudgetTracker, DegradationReport,
    FetchPolicy, JournalEntry, NavPosition, QueryBudget, RepairReport, ResumeToken,
    SiteDegradation, SiteRepair, SiteSpend,
};
pub use webbase_vps::{
    Metric, MetricsRegistry, MetricsSnapshot, Obs, QueryObservation, QueryTrace, Span, SpanHandle,
    SpanKind, TraceSink, METRICS, QUERY_TRACK,
};
