//! The logical layer as a `RelationProvider`.
//!
//! [`LogicalLayer`] wraps a [`VpsCatalog`] and a set of
//! [`LogicalRelation`] definitions. It answers schema/binding questions
//! by *propagating* through the defining algebra (the §5 rules) and
//! evaluates fetches by running the definition through the relational
//! evaluator — which performs the binding-aware dependent joins against
//! the VPS. Because the layer is itself a provider, the external-schema
//! layer on top can treat logical relations exactly like base tables
//! (the classical "layers all the way down" of Figure 1).

use crate::schema::LogicalRelation;
use webbase_relational::binding::{propagate, BindingSet};
use webbase_relational::eval::{AccessSpec, EvalError, Evaluator, RelationProvider};
use webbase_relational::{Relation, Schema};
use webbase_vps::{SpanKind, VpsCatalog, QUERY_TRACK};

/// The logical layer: definitions + the VPS beneath them.
pub struct LogicalLayer {
    pub vps: VpsCatalog,
    relations: Vec<LogicalRelation>,
    relaxed_union: bool,
}

impl LogicalLayer {
    pub fn new(vps: VpsCatalog, relations: Vec<LogicalRelation>) -> LogicalLayer {
        LogicalLayer { vps, relations, relaxed_union: false }
    }

    /// Accept partial answers from unions with un-invocable sides (the
    /// paper's relaxed union).
    pub fn with_relaxed_union(mut self, relaxed: bool) -> LogicalLayer {
        self.relaxed_union = relaxed;
        self
    }

    pub fn relations(&self) -> &[LogicalRelation] {
        &self.relations
    }

    pub fn relation(&self, name: &str) -> Option<&LogicalRelation> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// The §5 binding-propagation report: every logical relation with
    /// its derived minimal bindings (the paper's `classifieds → {Make}`
    /// example).
    pub fn binding_report(&self) -> String {
        let mut out = String::from("Binding propagation (logical layer)\n");
        for r in &self.relations {
            let b = self.bindings(&r.name).unwrap_or_else(BindingSet::unsatisfiable);
            out.push_str(&format!("  {}: {}\n", r.name, b));
        }
        out
    }
}

impl RelationProvider for LogicalLayer {
    fn schema(&self, name: &str) -> Option<Schema> {
        let def = &self.relation(name)?.def;
        def.schema(&|n| self.vps.schema(n))
    }

    fn bindings(&self, name: &str) -> Option<BindingSet> {
        let def = &self.relation(name)?.def;
        Some(propagate(def, &|n| self.vps.bindings(n), &|n| self.vps.schema(n), self.relaxed_union))
    }

    fn fetch(&mut self, name: &str, spec: &AccessSpec) -> Result<Relation, EvalError> {
        let def = self
            .relation(name)
            .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))?
            .def
            .clone();
        let relaxed = self.relaxed_union;
        let obs = self.vps.obs().clone();
        let span = if obs.tracing() {
            obs.sink.begin(
                QUERY_TRACK,
                SpanKind::Logical,
                name.to_string(),
                vec![("given", spec.to_string())],
            )
        } else {
            webbase_vps::SpanHandle::INERT
        };
        let out = Evaluator::new(&mut self.vps).with_relaxed_union(relaxed).eval(&def, spec);
        if obs.tracing() {
            obs.sink.advance(QUERY_TRACK, self.vps.stats.total_network());
            match &out {
                Ok(rel) => obs.sink.end_with(span, vec![("tuples", rel.len().to_string())]),
                Err(e) => obs.sink.end_with(span, vec![("error", e.to_string())]),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_schema;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use webbase_navigation::recorder::Recorder;
    use webbase_navigation::sessions;
    use webbase_relational::prelude::*;
    use webbase_webworld::prelude::*;

    fn layer() -> (LogicalLayer, Arc<Dataset>) {
        let data = Dataset::generate(5, 600);
        let web = standard_web(data.clone(), LatencyModel::lan());
        let mut cat = VpsCatalog::new();
        for (host, session) in sessions::all_sessions(&data) {
            let (map, _) = Recorder::record(web.clone(), host, &session).expect("records");
            cat.add_map(web.clone(), map);
        }
        (LogicalLayer::new(cat, paper_schema()), data)
    }

    #[test]
    fn classifieds_binding_is_make_only() {
        // The §5 worked example: {Make} is the only minimal binding.
        let (layer, _) = layer();
        let b = layer.bindings("classifieds").expect("bindings");
        let make: BTreeSet<Attr> = [Attr::new("make")].into();
        assert!(b.satisfied_by(&make), "classifieds bindings: {b}");
        assert_eq!(b.bindings().len(), 1, "{b}");
        assert_eq!(b.bindings()[0], make);
    }

    #[test]
    fn all_relations_have_schemas_and_bindings() {
        let (layer, _) = layer();
        for r in layer.relations() {
            let s = layer.schema(&r.name).unwrap_or_else(|| panic!("{} has no schema", r.name));
            assert!(!s.is_empty());
            let b = layer.bindings(&r.name).unwrap_or_else(|| panic!("{}: no bindings", r.name));
            assert!(!b.is_unsatisfiable(), "{}: unsatisfiable", r.name);
        }
    }

    #[test]
    fn classifieds_site_independence() {
        // Tuples from three sites arrive in one relation, and nothing in
        // the result says where each came from.
        let (mut layer, data) = layer();
        let rel =
            layer.fetch("classifieds", &AccessSpec::new().with("make", "ford")).expect("fetches");
        let mut expected: usize = 0;
        expected += data.matching(SiteSlice::Newsday, Some("ford"), None).len();
        expected += data.matching(SiteSlice::NyTimes, Some("ford"), None).len();
        expected += data.matching(SiteSlice::NewYorkDaily, Some("ford"), None).len();
        assert_eq!(rel.len(), expected, "slices are disjoint, so union = sum");
        assert_eq!(
            rel.schema(),
            &Schema::new(["make", "model", "year", "price", "contact", "features"])
        );
    }

    #[test]
    fn blue_price_needs_full_binding() {
        let (mut layer, _) = layer();
        let err = layer
            .fetch("blue_price", &AccessSpec::new().with("make", "ford"))
            .expect_err("kellys needs make+model+condition");
        assert!(matches!(err, EvalError::UnboundAccess { .. }));
        let ok = layer
            .fetch(
                "blue_price",
                &AccessSpec::new()
                    .with("make", "ford")
                    .with("model", "escort")
                    .with("condition", "good")
                    .with("pricetype", "retail"),
            )
            .expect("fetches");
        assert_eq!(ok.len(), 11);
    }

    #[test]
    fn reliability_and_interest() {
        let (mut layer, _) = layer();
        let rel = layer
            .fetch("reliability", &AccessSpec::new().with("make", "jaguar").with("model", "xj6"))
            .expect("fetches");
        assert_eq!(rel.len(), 12); // years 1988..=1999
        let rate = layer
            .fetch(
                "interest",
                &AccessSpec::new()
                    .with("zip", "10001")
                    .with("duration", Value::Int(36))
                    .with("plan", "loan"),
            )
            .expect("fetches");
        assert_eq!(rate.len(), 1);
    }

    #[test]
    fn queries_compose_over_logical_relations() {
        // classifieds ⋈ reliability: safety ratings joined onto ads.
        let (mut layer, _) = layer();
        let e = Expr::relation("classifieds")
            .join(Expr::relation("reliability"))
            .select(Pred::and(vec![Pred::eq("make", "jaguar"), Pred::eq("model", "xj6")]))
            .project(["make", "model", "year", "price", "safety"]);
        let rel = Evaluator::new(&mut layer).eval(&e, &AccessSpec::new()).expect("evals");
        // every ad row gained a safety rating
        let sidx = rel.schema().index_of(&"safety".into()).expect("safety");
        assert!(rel.tuples().iter().all(|t| !t.get(sidx).is_null()));
    }

    #[test]
    fn binding_report_renders() {
        let (layer, _) = layer();
        let report = layer.binding_report();
        assert!(report.contains("classifieds: {make}"), "{report}");
        assert!(report.contains("blue_price: {condition, make, model, pricetype}"), "{report}");
    }
}
