//! Figure 1: the traditional-database / webbase layer correspondence.

/// Render the Figure 1 comparison as text.
pub fn render_figure1() -> String {
    "\
Traditional Database Architecture      |  Webbase Architecture
---------------------------------------+---------------------------------------
External Schema (Views)                |  External Schema (Views)
  - SQL, QBE, ...                      |    - structured universal relation
  - ad hoc querying                    |    - ad hoc querying by naive users
---------------------------------------+---------------------------------------
Logical Schema                         |  Logical Schema
  - relational algebra                 |    - relational algebra + binding
  - high-level access methods          |      propagation (site independence)
---------------------------------------+---------------------------------------
Physical Schema                        |  Virtual Physical Schema
  - low-level access methods           |    - navigation calculus (Transaction
  - data storage                       |      F-logic), handles, data extraction
---------------------------------------+---------------------------------------
Physical Database                      |  Raw Web
"
    .to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn figure1_mentions_all_layers() {
        let txt = super::render_figure1();
        for needle in [
            "External Schema",
            "Logical Schema",
            "Virtual Physical Schema",
            "Raw Web",
            "universal relation",
            "navigation calculus",
        ] {
            assert!(txt.contains(needle), "missing {needle}");
        }
    }
}
