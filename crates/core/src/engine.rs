//! The multi-query engine: one shared, thread-safe webbase serving
//! many concurrent UR queries.
//!
//! [`crate::Webbase`] is the single-owner stack: one catalog, one
//! logical layer, `&mut self` per query. The [`Engine`] turns the same
//! three layers into a server runtime. It is built **once** — sessions
//! replayed, maps recorded, every map compiled to Transaction F-logic
//! and vetted by webcheck exactly once — and then shared (`Engine` is
//! `Clone + Send + Sync`, an `Arc` inside) by any number of query
//! threads.
//!
//! What is shared engine-wide and what stays per query is the whole
//! design:
//!
//! * **Shared**: the simulated Web, the compiled site programs
//!   (`Arc<CompiledSite>`), the [`PageStore`] (fetch+parse once, every
//!   query hits), the [`AnswerMemo`] (whole-invocation result reuse),
//!   the per-host connection pools, and the tenant admission tracker.
//! * **Per query**: the navigator oracles, the VPS catalog, the logical
//!   layer, the `Obs` handle, and any `QueryBudget` — everything that
//!   carries query state, so tenants can never observe each other's
//!   traces, budgets, or degradation.
//!
//! Multi-tenant admission reuses the navigation layer's max-min
//! fair-share [`BudgetTracker`] with *tenant names* where hosts
//! usually go: each admitted query charges one unit, and while
//! unserved tenants remain no tenant may eat into the floor reserved
//! for them. Epochs make the scheme long-lived: a denied tenant is
//! deferred (the wire protocol's `DEFER`), and [`Engine::reset_epoch`]
//! opens the next round.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use webbase_logical::{paper_schema, LogicalLayer, LogicalRelation, Obs, QueryObservation};
use webbase_navigation::map::NavigationMap;
use webbase_navigation::recorder::{MapStats, Recorder};
use webbase_navigation::sessions;
use webbase_navigation::{
    compile_map, BudgetDenial, BudgetSnapshot, BudgetTracker, CompiledSite, FetchPolicy, HostPools,
    PageStore, QueryBudget,
};
use webbase_relational::Relation;
use webbase_ur::compat::example62_rules;
use webbase_ur::hierarchy::figure5;
use webbase_ur::plan::{UrError, UrPlan, UrPlanner};
use webbase_ur::query::{parse_query, UrQuery};
use webbase_vps::{derive_handles, AnswerMemo, Handle, MemoClaim, VpsCatalog};
use webbase_vps::{MetricsRegistry, MetricsSnapshot};
use webbase_webworld::prelude::*;

use crate::webbase::{BuildReport, WebbaseError};

/// How the engine is shared and scheduled. [`EngineConfig::default`]
/// is the server default: default fetch policy, unbounded page store,
/// four connections per host, no admission control.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Retry/backoff/circuit policy for every navigator session.
    pub policy: FetchPolicy,
    /// Shared page-store capacity (`None` = unbounded).
    pub page_capacity: Option<usize>,
    /// Simultaneous in-flight fetches allowed per host.
    pub per_host_connections: usize,
    /// Multi-tenant admission control (`None` = admit everything).
    pub admission: Option<AdmissionConfig>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            policy: FetchPolicy::default_policy(),
            page_capacity: None,
            per_host_connections: 4,
            admission: None,
        }
    }
}

/// Fair-share admission over tenants: at most `queries_per_epoch`
/// admissions per epoch, max-min floors reserved for tenants that have
/// not yet completed a query this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    pub queries_per_epoch: u64,
    pub fair_share: bool,
}

/// The tenant scheduler: a [`BudgetTracker`] whose "sites" are tenant
/// names and whose "fetches" are admitted queries. Epoch-scoped — the
/// tracker is replaced wholesale on [`EngineAdmission::reset_epoch`],
/// with every known tenant re-registered so its floor is reserved
/// from the first admission of the new round.
#[derive(Debug)]
pub struct EngineAdmission {
    budget: QueryBudget,
    state: Mutex<AdmissionState>,
}

#[derive(Debug)]
struct AdmissionState {
    tracker: Arc<BudgetTracker>,
    tenants: BTreeSet<String>,
}

impl EngineAdmission {
    fn new(config: AdmissionConfig) -> EngineAdmission {
        let budget = QueryBudget::unlimited()
            .with_fetch_quota(config.queries_per_epoch)
            .with_fair_share(config.fair_share);
        EngineAdmission {
            budget: budget.clone(),
            state: Mutex::new(AdmissionState {
                tracker: Arc::new(BudgetTracker::new(budget)),
                tenants: BTreeSet::new(),
            }),
        }
    }

    /// Ask to run one query as `tenant`. Denial is a deferral, not an
    /// error: the tenant may retry next epoch.
    pub fn admit(&self, tenant: &str) -> Result<(), BudgetDenial> {
        let mut state = self.state.lock().expect("admission lock");
        if state.tenants.insert(tenant.to_string()) {
            state.tracker.register_site(tenant);
        }
        state.tracker.try_admit(tenant, false)
    }

    /// A tenant's admitted query completed: release its fair-share
    /// reservation for the rest of the epoch.
    pub fn complete(&self, tenant: &str) {
        self.state.lock().expect("admission lock").tracker.mark_served(tenant);
    }

    /// Open a new epoch: fresh counters, same tenant floors.
    pub fn reset_epoch(&self) {
        let mut state = self.state.lock().expect("admission lock");
        let tracker = Arc::new(BudgetTracker::new(self.budget.clone()));
        for tenant in &state.tenants {
            tracker.register_site(tenant);
        }
        state.tracker = tracker;
    }

    /// The current epoch's per-tenant spend.
    pub fn snapshot(&self) -> BudgetSnapshot {
        self.state.lock().expect("admission lock").tracker.snapshot()
    }
}

/// Per-query knobs. [`QueryOptions::default`] is a plain unbudgeted,
/// untraced query (counters still collected).
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Resource budget; budgeted queries bypass the answer memo (they
    /// must do their own admission and journalling).
    pub budget: Option<QueryBudget>,
    /// Collect a full span trace for this query.
    pub trace: bool,
}

impl QueryOptions {
    pub fn traced() -> QueryOptions {
        QueryOptions { budget: None, trace: true }
    }

    pub fn budgeted(budget: QueryBudget) -> QueryOptions {
        QueryOptions { budget: Some(budget), trace: false }
    }
}

/// Everything one query produced. The observation is present only for
/// traced queries; the metrics snapshot is always present and is
/// *this query's* counters alone — cross-tenant isolation is the
/// point of the per-query registry.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub relation: Relation,
    pub plan: UrPlan,
    pub observation: Option<QueryObservation>,
    pub metrics: MetricsSnapshot,
}

/// Engine-level errors. `Deferred` is load shedding, not failure.
#[derive(Debug)]
pub enum EngineError {
    /// Admission control deferred this tenant to a later epoch.
    Deferred(BudgetDenial),
    Query(webbase_ur::query::QueryParseError),
    Plan(UrError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Deferred(d) => write!(f, "deferred: {d}"),
            EngineError::Query(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Cumulative counters across the engine's lifetime, for the wire
/// protocol's `STATS` reply and the load generator's report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries that ran to a result (including budget-partial ones).
    pub queries: u64,
    /// Admissions deferred by the tenant scheduler.
    pub deferred: u64,
    /// Shared page-store hits / misses / evictions.
    pub store_hits: u64,
    pub store_misses: u64,
    pub store_evictions: u64,
    /// Shared answer-memo hits / misses and resident answers.
    pub memo_hits: u64,
    pub memo_misses: u64,
    pub memo_len: usize,
    /// Invocations that waited for an in-flight leader's answer
    /// instead of recomputing it (memo singleflight).
    pub memo_coalesced: u64,
    /// Whole-query result cache hits / misses / coalesced waits.
    pub result_hits: u64,
    pub result_misses: u64,
    pub result_coalesced: u64,
    /// Times a fetch waited on a saturated per-host connection pool.
    pub pool_waits: u64,
}

struct SiteArtifacts {
    map: NavigationMap,
    compiled: Arc<CompiledSite>,
    /// Handles derived once at build time; sessions reuse them instead
    /// of re-walking the map graph per query.
    handles: Vec<Handle>,
}

struct EngineInner {
    web: SyntheticWeb,
    data: Arc<Dataset>,
    sites: Vec<SiteArtifacts>,
    relations: Vec<LogicalRelation>,
    planner: UrPlanner,
    policy: FetchPolicy,
    store: PageStore,
    pool: Arc<HostPools>,
    memo: AnswerMemo,
    admission: Option<EngineAdmission>,
    /// Parsed-query + plan cache, keyed by query text. Every session
    /// is built from the same shared artifacts, so a plan computed
    /// once is valid for every later session (see
    /// `UrPlanner::execute_planned`). Traced and isolated runs bypass
    /// it — traced ones so the Plan span is real, isolated ones
    /// because the cache is one of the shared resources the baseline
    /// must not touch.
    plans: RwLock<HashMap<String, Arc<(UrQuery, UrPlan)>>>,
    /// Whole-query result cache, keyed by query text, with the same
    /// singleflight protocol as the invocation memo: when N identical
    /// queries arrive at once, one session executes and the rest wait
    /// for — and then share — its answer. Only complete answers from
    /// undegraded, unbudgeted, untraced runs are ever published.
    results: AnswerMemo,
    preflight: webbase_webcheck::Report,
    report: BuildReport,
    queries: AtomicU64,
    deferred: AtomicU64,
}

/// The shared multi-query engine. Clone-cheap (`Arc` inside); every
/// clone serves the same webbase.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Build the paper's used-car webbase as a shared engine (the
    /// server-side analogue of [`crate::Webbase::build_demo`]).
    pub fn build_demo(seed: u64, n_ads: usize, latency: LatencyModel) -> Engine {
        let data = Dataset::generate(seed, n_ads);
        let web = standard_web(data.clone(), latency);
        Engine::build_on(web, data, EngineConfig::default())
            .expect("the standard sessions replay cleanly")
    }

    /// Build over an existing Web: replay every designer session,
    /// record the maps, compile each exactly once, and assemble the
    /// shared artifacts. Webcheck vets every map here — not once per
    /// query session.
    pub fn build_on(
        web: SyntheticWeb,
        data: Arc<Dataset>,
        config: EngineConfig,
    ) -> Result<Engine, WebbaseError> {
        let mut sites = Vec::new();
        let mut stats: Vec<(String, MapStats)> = Vec::new();
        let mut preflight = webbase_webcheck::Report::new();
        for (host, session) in sessions::all_sessions(&data) {
            let (map, s) = Recorder::record(web.clone(), host, &session)
                .map_err(|e| WebbaseError::Record(host.to_string(), e))?;
            preflight.merge(webbase_webcheck::check_site(&map));
            stats.push((host.to_string(), s));
            let compiled = Arc::new(compile_map(&map));
            let handles = derive_handles(&map);
            sites.push(SiteArtifacts { map, compiled, handles });
        }
        let store = match config.page_capacity {
            Some(cap) => PageStore::with_capacity(cap),
            None => PageStore::new(),
        };
        Ok(Engine {
            inner: Arc::new(EngineInner {
                web,
                data,
                sites,
                relations: paper_schema(),
                planner: UrPlanner::new(figure5(), example62_rules()),
                policy: config.policy,
                store,
                pool: Arc::new(HostPools::new(config.per_host_connections)),
                memo: AnswerMemo::new(),
                admission: config.admission.map(EngineAdmission::new),
                plans: RwLock::new(HashMap::new()),
                results: AnswerMemo::new(),
                preflight,
                report: BuildReport { sites: stats },
                queries: AtomicU64::new(0),
                deferred: AtomicU64::new(0),
            }),
        })
    }

    /// A fresh per-query session over the shared artifacts: private
    /// navigators and catalog, shared compiled programs, page store,
    /// connection pools, and answer memo.
    fn new_session(&self) -> LogicalLayer {
        self.session_with(
            self.inner.store.clone(),
            Some(self.inner.pool.clone()),
            Some(self.inner.memo.clone()),
        )
    }

    /// A session that shares *nothing* mutable: private page store, no
    /// memo, no pools — the pre-engine single-owner cost model. The
    /// load generator's serial baseline and the concurrency tests'
    /// byte-identity oracle run here.
    fn isolated_session(&self) -> LogicalLayer {
        self.session_with(PageStore::new(), None, None)
    }

    fn session_with(
        &self,
        store: PageStore,
        pool: Option<Arc<HostPools>>,
        memo: Option<AnswerMemo>,
    ) -> LogicalLayer {
        let inner = &self.inner;
        let mut catalog = VpsCatalog::new();
        for site in &inner.sites {
            catalog.add_map_compiled(
                inner.web.clone(),
                site.map.clone(),
                site.compiled.clone(),
                &site.handles,
                inner.policy,
                store.clone(),
                pool.clone(),
            );
        }
        if let Some(memo) = memo {
            catalog.set_memo(memo);
        }
        LogicalLayer::new(catalog, inner.relations.clone())
    }

    /// Parse and execute one UR query as `tenant`.
    ///
    /// Admission control (when configured) runs first: a denial
    /// returns [`EngineError::Deferred`] without touching the Web.
    /// Admitted queries run on a private session — per-query metrics
    /// and (optionally) a span trace come back in the outcome.
    pub fn query(
        &self,
        tenant: &str,
        text: &str,
        options: QueryOptions,
    ) -> Result<QueryOutcome, EngineError> {
        self.run(tenant, text, options, false)
    }

    /// Run one query on a fully isolated session (private page store,
    /// no memo, no pools): the single-owner cost model, side by side
    /// with the shared engine. Bypasses admission and the `queries`
    /// counter — it is a measurement tool, not a tenant.
    pub fn query_isolated(
        &self,
        tenant: &str,
        text: &str,
        options: QueryOptions,
    ) -> Result<QueryOutcome, EngineError> {
        self.run(tenant, text, options, true)
    }

    fn run(
        &self,
        tenant: &str,
        text: &str,
        options: QueryOptions,
        isolated: bool,
    ) -> Result<QueryOutcome, EngineError> {
        let inner = &self.inner;
        // Plan-cache fast path: reuse the parse and the plan computed
        // by an earlier query with the same text.
        let cached = if isolated || options.trace {
            None
        } else {
            inner.plans.read().expect("plan cache lock").get(text).cloned()
        };
        let mut q = match &cached {
            Some(entry) => entry.0.clone(),
            None => parse_query(text).map_err(EngineError::Query)?,
        };
        if let Some(budget) = options.budget.clone() {
            q = q.with_budget(budget);
        }
        if !isolated {
            if let Some(admission) = &inner.admission {
                if let Err(denial) = admission.admit(tenant) {
                    inner.deferred.fetch_add(1, Ordering::Relaxed);
                    return Err(EngineError::Deferred(denial));
                }
            }
        }
        // Whole-query singleflight over the result cache: when N
        // identical eligible queries are in flight, one session
        // executes and the rest block here until its answer settles,
        // then return it as their own. The tenant still paid
        // admission for the query — sharing the computation does not
        // share the slot.
        let result_lead = if !isolated && !options.trace && options.budget.is_none() {
            match inner.results.claim(&AnswerMemo::key(text, &[])) {
                MemoClaim::Hit(relation) => {
                    // The leader populated the plan cache before it
                    // executed, so a hit always finds the clean plan.
                    let entry = inner.plans.read().expect("plan cache lock").get(text).cloned();
                    if let Some(entry) = entry {
                        if let Some(admission) = &inner.admission {
                            admission.complete(tenant);
                        }
                        inner.queries.fetch_add(1, Ordering::Relaxed);
                        return Ok(QueryOutcome {
                            relation,
                            plan: entry.1.clone(),
                            observation: None,
                            metrics: MetricsSnapshot::default(),
                        });
                    }
                    None
                }
                MemoClaim::Leader(guard) => Some(guard),
            }
        } else {
            None
        };
        let mut layer = if isolated { self.isolated_session() } else { self.new_session() };
        let obs = if options.trace {
            Obs::full()
        } else {
            Obs::metrics_only(Arc::new(MetricsRegistry::new()))
        };
        layer.vps.set_obs(obs.clone());
        // Plan before executing so the cache is populated as soon as
        // the plan exists — not after the first execution finishes.
        // Under a concurrent cold start every same-text query would
        // otherwise re-plan redundantly for the whole duration of the
        // first run. Planning is pure metadata work (no fetches), so
        // double-checked re-reads under the write lock are cheap.
        let out: Result<(Relation, UrPlan), EngineError> = match &cached {
            Some(entry) => {
                inner.planner.execute_planned(&q, &entry.1, &mut layer).map_err(EngineError::Plan)
            }
            None if !isolated && !options.trace => {
                let entry = {
                    let mut plans = inner.plans.write().expect("plan cache lock");
                    match plans.get(text) {
                        Some(entry) => Ok(entry.clone()),
                        None => {
                            // Plan from the *base* parse: a budget on
                            // `q` must not leak into the shared cache.
                            parse_query(text).map_err(EngineError::Query).and_then(|base| {
                                inner.planner.plan(&base, &layer).map_err(EngineError::Plan).map(
                                    |plan| {
                                        let entry = Arc::new((base, plan));
                                        plans.insert(text.to_string(), entry.clone());
                                        entry
                                    },
                                )
                            })
                        }
                    }
                };
                entry.and_then(|entry| {
                    inner
                        .planner
                        .execute_planned(&q, &entry.1, &mut layer)
                        .map_err(EngineError::Plan)
                })
            }
            None => inner.planner.execute(&q, &mut layer).map_err(EngineError::Plan),
        };
        // The tenant consumed its admission whether or not the query
        // succeeded — the slot was held either way.
        if !isolated {
            if let Some(admission) = &inner.admission {
                admission.complete(tenant);
            }
        }
        let (relation, plan) = out?;
        // Publish only complete answers: a degraded or resumable run
        // must not be replayed to other tenants as the full result.
        // (An error return above drops the guard instead, releasing
        // the key so a waiting session takes over as leader.)
        if let Some(guard) = result_lead {
            guard.settle(
                (plan.degradation.is_clean() && plan.resume.is_none()).then(|| relation.clone()),
            );
        }
        if !isolated {
            inner.queries.fetch_add(1, Ordering::Relaxed);
        }
        let metrics = obs.metrics.as_ref().map(|m| m.snapshot()).unwrap_or_default();
        let observation = options
            .trace
            .then(|| QueryObservation { trace: obs.sink.finish(), metrics: metrics.clone() });
        Ok(QueryOutcome { relation, plan, observation, metrics })
    }

    /// Plan without executing (no admission charge, no fetches).
    pub fn explain(&self, text: &str) -> Result<UrPlan, EngineError> {
        let q = parse_query(text).map_err(EngineError::Query)?;
        let layer = self.new_session();
        self.inner.planner.plan(&q, &layer).map_err(EngineError::Plan)
    }

    /// Open a new admission epoch (no-op without admission control).
    pub fn reset_epoch(&self) {
        if let Some(admission) = &self.inner.admission {
            admission.reset_epoch();
        }
    }

    /// The current epoch's per-tenant admission spend.
    pub fn admission_snapshot(&self) -> Option<BudgetSnapshot> {
        self.inner.admission.as_ref().map(EngineAdmission::snapshot)
    }

    pub fn stats(&self) -> EngineStats {
        let inner = &self.inner;
        EngineStats {
            queries: inner.queries.load(Ordering::Relaxed),
            deferred: inner.deferred.load(Ordering::Relaxed),
            store_hits: inner.store.hits(),
            store_misses: inner.store.misses(),
            store_evictions: inner.store.evictions(),
            memo_hits: inner.memo.hits(),
            memo_misses: inner.memo.misses(),
            memo_len: inner.memo.len(),
            memo_coalesced: inner.memo.coalesced(),
            result_hits: inner.results.hits(),
            result_misses: inner.results.misses(),
            result_coalesced: inner.results.coalesced(),
            pool_waits: inner.pool.waits(),
        }
    }

    pub fn web(&self) -> &SyntheticWeb {
        &self.inner.web
    }

    pub fn data(&self) -> &Arc<Dataset> {
        &self.inner.data
    }

    /// The shared page store (for tests and diagnostics).
    pub fn store(&self) -> &PageStore {
        &self.inner.store
    }

    /// The shared answer memo (for tests and diagnostics).
    pub fn memo(&self) -> &AnswerMemo {
        &self.inner.memo
    }

    /// The §7 map-builder statistics from the build.
    pub fn report(&self) -> &BuildReport {
        &self.inner.report
    }

    /// The accumulated build-time webcheck findings.
    pub fn preflight(&self) -> &webbase_webcheck::Report {
        &self.inner.preflight
    }

    /// The UR's attribute list.
    pub fn ur_attributes(&self) -> Vec<String> {
        self.inner.planner.ur_attributes(&self.new_session())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Webbase;

    const JAGUAR: &str = "UsedCarUR(make='jaguar', model, year >= 1993, price, bbprice, \
                          safety='good', condition='good') WHERE price < bbprice";

    #[test]
    fn engine_is_send_sync_and_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn engine_answers_match_the_single_owner_stack() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let mut wb = Webbase::build_demo(5, 400, LatencyModel::lan());
        let (expected, _) = wb.query(JAGUAR).expect("webbase answers");
        let out = engine.query("t0", JAGUAR, QueryOptions::default()).expect("engine answers");
        assert_eq!(out.relation, expected, "shared engine changed the answer");
        assert!(!out.plan.objects.is_empty());
    }

    #[test]
    fn repeat_queries_hit_the_shared_store_and_memo() {
        let engine = Engine::build_demo(7, 400, LatencyModel::lan());
        let a = engine.query("alice", JAGUAR, QueryOptions::default()).expect("first");
        let before = engine.web().total_stats().requests;
        let b = engine.query("bob", JAGUAR, QueryOptions::default()).expect("second");
        assert_eq!(a.relation, b.relation);
        // The second tenant's identical query is answered entirely out
        // of the shared result cache: zero new network requests.
        assert_eq!(engine.web().total_stats().requests, before, "repeat query re-fetched");
        let stats = engine.stats();
        assert_eq!(stats.result_hits, 1, "repeat text must hit the result cache: {stats:?}");
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn concurrent_identical_queries_coalesce_onto_one_leader() {
        let engine = Engine::build_demo(7, 400, LatencyModel::lan());
        let answers: Vec<Relation> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4)
                .map(|t| {
                    let engine = engine.clone();
                    scope.spawn(move || {
                        let tenant = format!("tenant{t}");
                        engine
                            .query(&tenant, JAGUAR, QueryOptions::default())
                            .expect("query runs")
                            .relation
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("worker")).collect()
        });
        assert!(answers.windows(2).all(|w| w[0] == w[1]), "coalesced answers diverged");
        let stats = engine.stats();
        // One session executed; the other three either waited for its
        // answer (coalesced) or arrived after it settled (hits).
        assert_eq!(stats.result_misses, 1, "exactly one leader: {stats:?}");
        assert_eq!(stats.result_hits, 3, "three followers shared the answer: {stats:?}");
        assert_eq!(stats.queries, 4);
    }

    #[test]
    fn overlapping_queries_share_pages_not_answers() {
        let engine = Engine::build_demo(7, 400, LatencyModel::lan());
        engine.query("alice", JAGUAR, QueryOptions::default()).expect("jaguar");
        let misses_before = engine.stats().store_misses;
        // A different query over the same sites: memo cannot help, but
        // every page the jaguar query already fetched is store-hit.
        let out = engine
            .query(
                "bob",
                "UsedCarUR(make='jaguar', model, year >= 1995, price, bbprice, \
                 safety='good', condition='good') WHERE price < bbprice",
                QueryOptions::default(),
            )
            .expect("narrower jaguar");
        drop(out);
        let stats = engine.stats();
        assert!(stats.store_hits > 0, "no cross-query page sharing: {stats:?}");
        assert!(stats.store_misses >= misses_before, "miss counter went backwards");
    }

    #[test]
    fn traced_queries_get_private_span_trees() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let out = engine.query("t", JAGUAR, QueryOptions::traced()).expect("traced");
        let obs = out.observation.expect("trace present");
        assert!(!obs.trace.spans.is_empty(), "traced query produced no spans");
        // An untraced query returns no observation but still counts.
        let out2 = engine.query("t", JAGUAR, QueryOptions::default()).expect("untraced");
        assert!(out2.observation.is_none());
        assert!(out2.metrics.counters.values().any(|v| *v > 0), "metrics-only still counts");
    }

    #[test]
    fn budgeted_queries_bypass_the_memo_and_stay_partial() {
        let q = "UsedCarUR(make='ford', price)";
        // Cold engine: nothing shared yet, so a tiny quota binds and
        // the partial carries a resume token.
        let cold = Engine::build_demo(5, 400, LatencyModel::lan());
        let out = cold
            .query("tight", q, QueryOptions::budgeted(QueryBudget::unlimited().with_fetch_quota(2)))
            .expect("budgeted runs return partials");
        assert!(out.plan.resume.is_some(), "a cold 2-fetch quota cannot finish the ford query");

        // Warm engine: a full run seeds both the memo and the page
        // store. A budgeted repeat must not consult the memo — but the
        // shared store's cache hits are budget-free, so it still walks
        // to the complete answer.
        let warm = Engine::build_demo(5, 400, LatencyModel::lan());
        let full = warm.query("warm", q, QueryOptions::default()).expect("full run");
        let memo_hits_before = warm.stats().memo_hits;
        let out2 = warm
            .query("tight", q, QueryOptions::budgeted(QueryBudget::unlimited().with_fetch_quota(2)))
            .expect("budgeted warm run");
        assert_eq!(
            warm.stats().memo_hits,
            memo_hits_before,
            "a budgeted query consulted the shared memo"
        );
        assert!(out2.plan.resume.is_none(), "store hits are budget-free on the warm walk");
        assert_eq!(out2.relation, full.relation, "the warm budgeted walk re-derives the answer");
    }

    #[test]
    fn admission_defers_over_quota_tenants_and_resets_by_epoch() {
        let config = EngineConfig {
            admission: Some(AdmissionConfig { queries_per_epoch: 2, fair_share: true }),
            ..EngineConfig::default()
        };
        let data = Dataset::generate(5, 400);
        let web = standard_web(data.clone(), LatencyModel::lan());
        let engine = Engine::build_on(web, data, config).expect("builds");
        let q = "UsedCarUR(make='honda', model='civic', year, price)";
        engine.query("a", q, QueryOptions::default()).expect("first admitted");
        engine.query("a", q, QueryOptions::default()).expect("second admitted");
        let err = engine.query("a", q, QueryOptions::default());
        assert!(matches!(err, Err(EngineError::Deferred(_))), "third must defer: {err:?}");
        assert_eq!(engine.stats().deferred, 1);
        let snap = engine.admission_snapshot().expect("admission configured");
        assert_eq!(snap.sites["a"].fetches, 2);
        engine.reset_epoch();
        engine.query("a", q, QueryOptions::default()).expect("fresh epoch admits again");
    }

    #[test]
    fn fair_share_reserves_floors_for_quiet_tenants() {
        let config = EngineConfig {
            admission: Some(AdmissionConfig { queries_per_epoch: 4, fair_share: true }),
            ..EngineConfig::default()
        };
        let data = Dataset::generate(5, 400);
        let web = standard_web(data.clone(), LatencyModel::lan());
        let engine = Engine::build_on(web, data, config).expect("builds");
        let q = "UsedCarUR(make='honda', model='civic', year, price)";
        // Register both tenants, then let "greedy" try to drain the epoch.
        engine.query("greedy", q, QueryOptions::default()).expect("greedy 1");
        engine.query("quiet", q, QueryOptions::default()).expect("quiet 1");
        engine.reset_epoch();
        // floor = 4/2 = 2 each. Greedy is served after its first query,
        // releasing its own reservation, but quiet's floor holds.
        engine.query("greedy", q, QueryOptions::default()).expect("greedy within floor");
        engine.query("greedy", q, QueryOptions::default()).expect("greedy takes slack");
        let third = engine.query("greedy", q, QueryOptions::default());
        assert!(
            matches!(third, Err(EngineError::Deferred(BudgetDenial::FairShareDeferred))),
            "quiet tenant's floor must survive: {third:?}"
        );
        engine.query("quiet", q, QueryOptions::default()).expect("quiet's reserved floor");
    }

    #[test]
    fn isolated_queries_share_nothing_and_agree() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let iso = engine.query_isolated("x", JAGUAR, QueryOptions::default()).expect("isolated");
        assert_eq!(engine.stats().queries, 0, "isolated runs are not admitted queries");
        assert!(engine.store().is_empty(), "isolated run leaked into the shared store");
        assert!(engine.memo().is_empty(), "isolated run leaked into the shared memo");
        let shared = engine.query("x", JAGUAR, QueryOptions::default()).expect("shared");
        assert_eq!(iso.relation, shared.relation, "isolation changed the answer");
    }

    #[test]
    fn explain_charges_nothing() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let before = engine.web().total_stats().requests;
        let plan = engine.explain(JAGUAR).expect("plans");
        assert!(!plan.objects.is_empty());
        assert_eq!(engine.web().total_stats().requests, before);
        assert_eq!(engine.stats().queries, 0, "explain is not an admitted query");
    }
}
