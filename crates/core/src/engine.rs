//! The multi-query engine: one shared, thread-safe webbase serving
//! many concurrent UR queries.
//!
//! [`crate::Webbase`] is the single-owner stack: one catalog, one
//! logical layer, `&mut self` per query. The [`Engine`] turns the same
//! three layers into a server runtime. It is built **once** — sessions
//! replayed, maps recorded, every map compiled to Transaction F-logic
//! and vetted by webcheck exactly once — and then shared (`Engine` is
//! `Clone + Send + Sync`, an `Arc` inside) by any number of query
//! threads.
//!
//! What is shared engine-wide and what stays per query is the whole
//! design:
//!
//! * **Shared**: the simulated Web, the compiled site programs
//!   (`Arc<CompiledSite>`), the [`PageStore`] (fetch+parse once, every
//!   query hits), the [`AnswerMemo`] (whole-invocation result reuse),
//!   the per-host connection pools, and the tenant admission tracker.
//! * **Per query**: the navigator oracles, the VPS catalog, the logical
//!   layer, the `Obs` handle, and any `QueryBudget` — everything that
//!   carries query state, so tenants can never observe each other's
//!   traces, budgets, or degradation.
//!
//! Multi-tenant admission reuses the navigation layer's max-min
//! fair-share [`BudgetTracker`] with *tenant names* where hosts
//! usually go: each admitted query charges one unit, and while
//! unserved tenants remain no tenant may eat into the floor reserved
//! for them. Epochs make the scheme long-lived: a denied tenant is
//! deferred (the wire protocol's `DEFER`), and [`Engine::reset_epoch`]
//! opens the next round.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webbase_logical::{LogicalLayer, LogicalRelation, Obs, QueryObservation};
use webbase_navigation::drift::events_from_repairs;
use webbase_navigation::map::NavigationMap;
use webbase_navigation::map::NodeId;
use webbase_navigation::recorder::{MapStats, Recorder};
use webbase_navigation::store::ReadSet;
use webbase_navigation::{
    compile_map, sweep, BudgetDenial, BudgetSnapshot, BudgetTracker, CancelToken, CompiledSite,
    DegradationReport, DriftBus, DriftEvent, DriftKind, DriftOrigin, FetchPolicy, HostPools,
    PageStore, QueryBudget, RepairReport, ResumeToken, SweepReport, WalRecovery, WriteAheadLog,
};
use webbase_obs::sync::{SafeMutex, SafeRwLock};
use webbase_relational::eval::{AccessSpec, Evaluator};
use webbase_relational::{BaseDelta, Expr, Incremental, Relation};
use webbase_ur::plan::{UrError, UrPlan, UrPlanner};
use webbase_ur::query::{parse_query, UrQuery};
use webbase_vps::{derive_handles, AnswerMemo, Handle, MemoClaim, MemoKey, VpsCatalog};
use webbase_vps::{Metric, MetricsRegistry, MetricsSnapshot};
use webbase_webworld::prelude::*;
use webbase_webworld::request::Request;

use crate::webbase::{BuildReport, WebbaseError};

/// How the engine is shared and scheduled. [`EngineConfig::default`]
/// is the server default: default fetch policy, unbounded page store,
/// four connections per host, no admission control.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Retry/backoff/circuit policy for every navigator session.
    pub policy: FetchPolicy,
    /// Shared page-store capacity (`None` = unbounded).
    pub page_capacity: Option<usize>,
    /// Simultaneous in-flight fetches allowed per host.
    pub per_host_connections: usize,
    /// Multi-tenant admission control (`None` = admit everything).
    pub admission: Option<AdmissionConfig>,
    /// Write-ahead journal path (`None` = no durability). When the
    /// file already holds records from an earlier run, the build
    /// replays them — warm restart — before serving queries.
    pub journal: Option<PathBuf>,
    /// Static admission: deny a budgeted query *before any fetch* when
    /// the abstract interpreter's fetch-cost lower bound already
    /// exceeds the budget's fetch quota. Opt-in: the lower bound
    /// assumes a cold page store, but a warm store serves spine pages
    /// budget-free, so the gate would wrongly deny replays that could
    /// complete within quota.
    pub static_admission: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            policy: FetchPolicy::default_policy(),
            page_capacity: None,
            per_host_connections: 4,
            admission: None,
            journal: None,
            static_admission: false,
        }
    }
}

/// Fair-share admission over tenants: at most `queries_per_epoch`
/// admissions per epoch, max-min floors reserved for tenants that have
/// not yet completed a query this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    pub queries_per_epoch: u64,
    pub fair_share: bool,
}

/// The tenant scheduler: a [`BudgetTracker`] whose "sites" are tenant
/// names and whose "fetches" are admitted queries. Epoch-scoped — the
/// tracker is replaced wholesale on [`EngineAdmission::reset_epoch`],
/// with every known tenant re-registered so its floor is reserved
/// from the first admission of the new round.
#[derive(Debug)]
pub struct EngineAdmission {
    budget: QueryBudget,
    state: SafeMutex<AdmissionState>,
}

#[derive(Debug)]
struct AdmissionState {
    tracker: Arc<BudgetTracker>,
    tenants: BTreeSet<String>,
}

impl EngineAdmission {
    fn new(config: AdmissionConfig) -> EngineAdmission {
        let budget = QueryBudget::unlimited()
            .with_fetch_quota(config.queries_per_epoch)
            .with_fair_share(config.fair_share);
        EngineAdmission {
            budget: budget.clone(),
            state: SafeMutex::new(AdmissionState {
                tracker: Arc::new(BudgetTracker::new(budget)),
                tenants: BTreeSet::new(),
            }),
        }
    }

    /// Ask to run one query as `tenant`. Denial is a deferral, not an
    /// error: the tenant may retry next epoch.
    pub fn admit(&self, tenant: &str) -> Result<(), BudgetDenial> {
        let mut state = self.state.lock();
        if state.tenants.insert(tenant.to_string()) {
            state.tracker.register_site(tenant);
        }
        state.tracker.try_admit(tenant, false)
    }

    /// A tenant's admitted query completed: release its fair-share
    /// reservation for the rest of the epoch.
    pub fn complete(&self, tenant: &str) {
        self.state.lock().tracker.mark_served(tenant);
    }

    /// Open a new epoch: fresh counters, same tenant floors.
    pub fn reset_epoch(&self) {
        let mut state = self.state.lock();
        let tracker = Arc::new(BudgetTracker::new(self.budget.clone()));
        for tenant in &state.tenants {
            tracker.register_site(tenant);
        }
        state.tracker = tracker;
    }

    /// The current epoch's per-tenant spend.
    pub fn snapshot(&self) -> BudgetSnapshot {
        self.state.lock().tracker.snapshot()
    }
}

/// Per-query knobs. [`QueryOptions::default`] is a plain unbudgeted,
/// untraced query (counters still collected).
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Resource budget; budgeted queries bypass the answer memo (they
    /// must do their own admission and journalling).
    pub budget: Option<QueryBudget>,
    /// Collect a full span trace for this query.
    pub trace: bool,
    /// Cooperative cancellation: the navigators poll this token at
    /// every budget checkpoint, so cancelling abandons navigation
    /// before the next page request. The server arms one per session
    /// and cancels it when the client disconnects mid-query.
    pub cancel: Option<CancelToken>,
    /// Resume an earlier budget-exhausted (or cancelled) run from its
    /// token: the journalled pages are preloaded, so the fresh budget
    /// is spent entirely on the unfinished tail. Resumed runs bypass
    /// the plan and result caches.
    pub resume: Option<ResumeToken>,
}

impl QueryOptions {
    pub fn traced() -> QueryOptions {
        QueryOptions { trace: true, ..QueryOptions::default() }
    }

    pub fn budgeted(budget: QueryBudget) -> QueryOptions {
        QueryOptions { budget: Some(budget), ..QueryOptions::default() }
    }

    pub fn resuming(token: ResumeToken) -> QueryOptions {
        QueryOptions { resume: Some(token), ..QueryOptions::default() }
    }
}

/// Everything one query produced. The observation is present only for
/// traced queries; the metrics snapshot is always present and is
/// *this query's* counters alone — cross-tenant isolation is the
/// point of the per-query registry.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub relation: Relation,
    pub plan: UrPlan,
    pub observation: Option<QueryObservation>,
    pub metrics: MetricsSnapshot,
}

/// Engine-level errors. `Deferred` is load shedding, not failure.
#[derive(Debug)]
pub enum EngineError {
    /// Admission control deferred this tenant to a later epoch.
    Deferred(BudgetDenial),
    Query(webbase_ur::query::QueryParseError),
    Plan(UrError),
    /// The query's execution panicked. The panic was contained at the
    /// engine boundary: shared state is intact (poison-recovering
    /// locks), any result-cache leadership was handed to a waiter, and
    /// the tenant's admission slot was consumed — the failure is
    /// charged to the tenant that caused it.
    Panicked(QueryFailure),
    /// The engine is draining or stopped: no new queries are admitted.
    Draining,
}

/// What a contained panic looked like from the outside, for the wire
/// protocol's structured failure reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFailure {
    pub tenant: String,
    pub query: String,
    pub message: String,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Deferred(d) => write!(f, "deferred: {d}"),
            EngineError::Query(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
            EngineError::Panicked(failure) => write!(f, "query panicked: {}", failure.message),
            EngineError::Draining => write!(f, "engine is draining; new queries are not admitted"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Where the engine is in its life: `Running` admits queries,
/// `Draining` rejects new ones while in-flight queries finish,
/// `Stopped` additionally cancels the in-flight ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    Running,
    Draining,
    Stopped,
}

const LIFECYCLE_RUNNING: u8 = 0;
const LIFECYCLE_DRAINING: u8 = 1;
const LIFECYCLE_STOPPED: u8 = 2;

/// Cumulative counters across the engine's lifetime, for the wire
/// protocol's `STATS` reply and the load generator's report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries that ran to a result (including budget-partial ones).
    pub queries: u64,
    /// Admissions deferred by the tenant scheduler.
    pub deferred: u64,
    /// Shared page-store hits / misses / evictions.
    pub store_hits: u64,
    pub store_misses: u64,
    pub store_evictions: u64,
    /// Shared answer-memo hits / misses and resident answers.
    pub memo_hits: u64,
    pub memo_misses: u64,
    pub memo_len: usize,
    /// Invocations that waited for an in-flight leader's answer
    /// instead of recomputing it (memo singleflight).
    pub memo_coalesced: u64,
    /// Whole-query result cache hits / misses / coalesced waits.
    pub result_hits: u64,
    pub result_misses: u64,
    pub result_coalesced: u64,
    /// Times a fetch waited on a saturated per-host connection pool.
    pub pool_waits: u64,
    /// Queries whose execution panicked (contained at the engine
    /// boundary; the engine kept serving).
    pub panics: u64,
    /// Queries that were cancelled and still completed cleanly — they
    /// returned whatever was settled before the cancel landed.
    pub cancelled: u64,
    /// Result-cache / invocation-memo leaderships released by a
    /// panicking holder (each one promoted a waiter).
    pub result_aborted: u64,
    pub memo_aborted: u64,
    /// Times a poisoned lock was recovered instead of propagating the
    /// poison. Process-global (covers every engine in this process).
    pub lock_poison_recovered: u64,
    /// Warm-restart recovery: journalled pages / settled results
    /// replayed at build time, and torn records dropped.
    pub journal_recovered_pages: u64,
    pub journal_recovered_results: u64,
    pub journal_torn: u64,
    /// Total simulated-Web requests since the web was created
    /// (includes the build's recording pass). The warm-restart smoke
    /// asserts this stays flat across a replayed query.
    pub web_requests: u64,
    /// Drift events applied (page changes, repairs, quarantines).
    pub drift_events: u64,
    /// Result-cache views evicted by drift invalidation.
    pub view_invalidated: u64,
    /// Views refreshed by incremental delta propagation.
    pub delta_refresh: u64,
    /// Views refreshed by re-evaluation or left cold-evicted.
    pub cold_refresh: u64,
    /// Freshness tripwire: cached answers that would have been served
    /// although their dependencies drifted after publication. The
    /// eviction protocol makes this impossible; the consistency suites
    /// pin it at zero.
    pub stale_served: u64,
    /// Queries denied before any fetch because the abstract
    /// interpreter proved their fetch-cost lower bound exceeds the
    /// budget's quota (only with `EngineConfig::static_admission`).
    pub static_denied: u64,
    /// Soundness tripwire: runs whose dynamic read-set escaped the
    /// plan's static read-set (host granularity). The static set
    /// over-approximates, so this must stay 0.
    pub readset_escape: u64,
}

struct SiteArtifacts {
    map: NavigationMap,
    compiled: Arc<CompiledSite>,
    /// Handles derived once at build time; sessions reuse them instead
    /// of re-walking the map graph per query.
    handles: Vec<Handle>,
    /// The abstract interpreter's verdict (fetch-cost intervals and
    /// static read-sets), computed once at build time and handed to
    /// every session's catalog.
    semantics: Arc<webbase_webcheck::SiteSemantics>,
}

/// Everything the engine remembers about one published result-cache
/// entry, for precise drift invalidation and incremental refresh.
struct ViewRecord {
    /// Freshness epoch at publication: values published at or after the
    /// last drift touching their deps are current by definition.
    epoch: u64,
    /// Every page request the published answer read (tracked reads plus
    /// memo-hit dependency replays).
    deps: Vec<Request>,
    /// Per-object results, in plan order (empty for journal-recovered
    /// entries — those refresh by re-evaluation, not delta).
    object_results: Vec<Relation>,
    /// The VPS relations each object reads, for mapping a changed page
    /// up to the objects it can affect.
    object_rels: Vec<BTreeSet<String>>,
    /// VPS invocations (memo key + page deps) the answer was built from.
    invocations: Vec<(MemoKey, Vec<Request>)>,
    /// Changed page requests accumulated since invalidation.
    pending: HashSet<Request>,
    /// A node/site-scoped event tainted the whole host: per-page delta
    /// provenance is unusable, refresh falls back to re-evaluation.
    pending_host_wide: bool,
    /// Hosts the plan's static read-set covers — the abstract
    /// interpreter's pre-seed of this ledger entry. A published view's
    /// dynamic deps always fall inside this set (the `readset_escape`
    /// tripwire pins that), so host-scoped drift can consult it even
    /// when per-page provenance is missing (journal-recovered entries).
    static_hosts: BTreeSet<String>,
}

/// The freshness ledger: which cached views depend on which pages, and
/// which of them drift has invalidated. One mutex guards the whole
/// ledger *and* the paired result-cache evictions, so a concurrent
/// reader sees either the pre-drift entry or the post-drift absence —
/// never a torn in-between.
#[derive(Default)]
struct Freshness {
    /// Monotone drift clock: bumped once per applied event.
    epoch: u64,
    /// Last drift epoch per changed page / per host-wide taint.
    page_drift: HashMap<Request, u64>,
    host_drift: HashMap<String, u64>,
    /// Views invalidated by drift and not yet re-published.
    drifted: BTreeSet<String>,
    views: HashMap<String, ViewRecord>,
}

/// What one [`Engine::refresh`] pass did: the page-level sweep findings
/// plus how each invalidated view was brought back (or not).
#[derive(Debug, Default)]
pub struct RefreshReport {
    /// The revalidation sweep over the page store.
    pub sweep: SweepReport,
    /// Views rebuilt by incremental delta propagation.
    pub delta_refreshed: usize,
    /// Views rebuilt by full re-evaluation.
    pub cold_refreshed: usize,
    /// Views left evicted (no cached plan, or the refresh degraded);
    /// the next query recomputes them.
    pub evicted: usize,
}

/// How [`Engine::refresh_view`] resolved one drifted view.
enum RefreshOutcome {
    Delta,
    Cold,
    Evicted,
}

/// Point-in-time freshness summary (the `FRESHNESS` verb's payload).
#[derive(Debug, Clone)]
pub struct FreshnessReport {
    /// Current drift-clock value.
    pub epoch: u64,
    /// Result-cache entries with recorded provenance.
    pub tracked_views: usize,
    /// Query texts invalidated by drift and not yet re-published.
    pub drifted: Vec<String>,
    /// Drift events published on the bus since the engine was built.
    pub events_published: u64,
    /// The most recent events (newest last), for diagnostics.
    pub recent: Vec<DriftEvent>,
}

/// The abstract interpreter's verdict folded up to one whole plan: the
/// static fetch-cost interval for one cold execution plus the per-host
/// static read-set (every `(host, map node)` pair the plan can touch).
/// Produced fetch-free by [`Engine::explain_semantics`]; the static
/// admission gate and the `readset_escape` tripwire consume it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSemantics {
    /// At least `cost.min` pages read on a cold store; at most
    /// `cost.max` (⊤ when an unbounded "More" chain is reachable).
    pub cost: webbase_webcheck::CostInterval,
    /// Static read-set, keyed by host.
    pub read: BTreeMap<String, BTreeSet<NodeId>>,
}

impl PlanSemantics {
    /// The hosts the plan can read.
    pub fn hosts(&self) -> BTreeSet<String> {
        self.read.keys().cloned().collect()
    }

    /// Multi-line EXPLAIN section: the cost interval and the per-host
    /// read-set.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "static cost: {}", self.cost);
        let _ = writeln!(out, "static read set:");
        for (host, nodes) in &self.read {
            let nodes: Vec<String> = nodes.iter().map(std::string::ToString::to_string).collect();
            let _ = writeln!(out, "  {host} nodes {{{}}}", nodes.join(", "));
        }
        out
    }
}

/// Collect every base relation name an expression mentions.
fn expr_rel_names(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Rel(name) => {
            out.insert(name.clone());
        }
        Expr::Select(e, _) | Expr::Project(e, _) | Expr::Rename(e, _) | Expr::Extend(e, _, _) => {
            expr_rel_names(e, out);
        }
        Expr::Join(l, r) | Expr::Union(l, r) | Expr::Diff(l, r) => {
            expr_rel_names(l, out);
            expr_rel_names(r, out);
        }
    }
}

struct EngineInner {
    web: SyntheticWeb,
    /// The synthetic dataset behind the corpus, when it has one (the
    /// car demo does; generated corpora carry data inside their specs).
    data: Option<Arc<Dataset>>,
    sites: Vec<SiteArtifacts>,
    relations: Vec<LogicalRelation>,
    planner: UrPlanner,
    policy: FetchPolicy,
    store: PageStore,
    pool: Arc<HostPools>,
    memo: AnswerMemo,
    admission: Option<EngineAdmission>,
    /// Parsed-query + plan cache, keyed by query text. Every session
    /// is built from the same shared artifacts, so a plan computed
    /// once is valid for every later session (see
    /// `UrPlanner::execute_planned`). Traced and isolated runs bypass
    /// it — traced ones so the Plan span is real, isolated ones
    /// because the cache is one of the shared resources the baseline
    /// must not touch.
    plans: SafeRwLock<HashMap<String, Arc<(UrQuery, UrPlan)>>>,
    /// Whole-query result cache, keyed by query text, with the same
    /// singleflight protocol as the invocation memo: when N identical
    /// queries arrive at once, one session executes and the rest wait
    /// for — and then share — its answer. Only complete answers from
    /// undegraded, unbudgeted, untraced runs are ever published.
    results: AnswerMemo,
    preflight: webbase_webcheck::Report,
    report: BuildReport,
    /// Static admission gate on/off (see `EngineConfig::static_admission`).
    static_admission: bool,
    /// Per-site ledger of static-admission denials — the analysis-time
    /// analogue of the runtime budget ledger's `budget_denied` rows.
    /// Engine-level because the denial error itself stays `Copy`.
    static_denials: SafeMutex<DegradationReport>,
    queries: AtomicU64,
    deferred: AtomicU64,
    /// The attached write-ahead journal (None without `config.journal`).
    /// Pages are journalled by the store's fetch path; settled result
    /// cache entries are journalled here when a leader publishes.
    wal: Option<WriteAheadLog>,
    /// `LIFECYCLE_*`: running / draining / stopped.
    lifecycle: AtomicU8,
    /// Cancel tokens of every admitted in-flight query, so `shutdown`
    /// can cancel them and `drain_wait` can watch them finish.
    inflight: SafeMutex<HashMap<u64, CancelToken>>,
    next_query_id: AtomicU64,
    panics: AtomicU64,
    cancelled: AtomicU64,
    /// Warm-restart recovery tallies (set once right after the build).
    recovered_pages: AtomicU64,
    recovered_results: AtomicU64,
    journal_torn: AtomicU64,
    /// The drift bus: maintenance sweeps, healing, and the `REFRESH`
    /// verb publish here; the engine's own subscriber invalidates.
    drift: DriftBus,
    /// Engine-wide freshness counters (drift_events, view_invalidated,
    /// delta_refresh, cold_refresh, stale_served) — deliberately apart
    /// from the per-query registries, which stay tenant-isolated.
    drift_metrics: Arc<MetricsRegistry>,
    freshness: SafeMutex<Freshness>,
}

/// The shared multi-query engine. Clone-cheap (`Arc` inside); every
/// clone serves the same webbase.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Build the paper's used-car webbase as a shared engine (the
    /// server-side analogue of [`crate::Webbase::build_demo`]).
    pub fn build_demo(seed: u64, n_ads: usize, latency: LatencyModel) -> Engine {
        let data = Dataset::generate(seed, n_ads);
        let web = standard_web(data.clone(), latency);
        Engine::build_on(web, data, EngineConfig::default())
            .expect("the standard sessions replay cleanly")
    }

    /// Build over an existing Web: replay every designer session,
    /// record the maps, compile each exactly once, and assemble the
    /// shared artifacts. Webcheck vets every map here — not once per
    /// query session.
    pub fn build_on(
        web: SyntheticWeb,
        data: Arc<Dataset>,
        config: EngineConfig,
    ) -> Result<Engine, WebbaseError> {
        Engine::build_corpus(web, crate::corpus::Corpus::paper(data), config)
    }

    /// Build over any [`crate::Corpus`] — the paper's car demo, the
    /// apartment example, or a generated corpus. The corpus describes
    /// the sites (sessions + standardisers) and the layers above them;
    /// this path records, analyses, and compiles each site exactly
    /// once, then assembles the shared engine.
    pub fn build_corpus(
        web: SyntheticWeb,
        corpus: crate::corpus::Corpus,
        config: EngineConfig,
    ) -> Result<Engine, WebbaseError> {
        let mut sites = Vec::new();
        let mut stats: Vec<(String, MapStats)> = Vec::new();
        let mut preflight = webbase_webcheck::Report::new();
        for site in &corpus.sites {
            let mut recorder =
                Recorder::with_standardizer(web.clone(), &site.host, site.standardizer.clone());
            for action in &site.session {
                recorder.apply(action).map_err(|e| WebbaseError::Record(site.host.clone(), e))?;
            }
            let (map, s) = recorder.finish();
            // The single analysis entry point: lint + program safety +
            // the abstract interpreter, once per map per build. The
            // derived semantics ride along in the shared artifacts.
            let (report, semantics) = webbase_webcheck::analyze_full(&map);
            preflight.merge(report);
            stats.push((site.host.clone(), s));
            let compiled = Arc::new(compile_map(&map));
            let handles = derive_handles(&map);
            sites.push(SiteArtifacts { map, compiled, handles, semantics: Arc::new(semantics) });
        }
        let store = match config.page_capacity {
            Some(cap) => PageStore::with_capacity(cap),
            None => PageStore::new(),
        };
        // Warm restart: replay the journal's surviving records into the
        // shared caches *before* attaching the WAL, so recovery never
        // re-journals what is already on disk. Torn records are dropped
        // and counted; an unreadable file is a build error.
        let recovery = match &config.journal {
            Some(path) => WalRecovery::load(path).map_err(WebbaseError::Journal)?,
            None => WalRecovery::default(),
        };
        for entry in &recovery.pages {
            store.preload(entry);
        }
        let wal = match &config.journal {
            Some(path) => {
                let wal = WriteAheadLog::open(path).map_err(WebbaseError::Journal)?;
                store.set_wal(wal.clone());
                Some(wal)
            }
            None => None,
        };
        let engine = Engine {
            inner: Arc::new(EngineInner {
                web,
                data: corpus.data,
                sites,
                relations: corpus.relations,
                planner: UrPlanner::new(corpus.hierarchy, corpus.rules),
                policy: config.policy,
                store,
                pool: Arc::new(HostPools::new(config.per_host_connections)),
                memo: AnswerMemo::new(),
                admission: config.admission.map(EngineAdmission::new),
                plans: SafeRwLock::new(HashMap::new()),
                results: AnswerMemo::new(),
                preflight,
                report: BuildReport { sites: stats },
                static_admission: config.static_admission,
                static_denials: SafeMutex::new(DegradationReport::default()),
                queries: AtomicU64::new(0),
                deferred: AtomicU64::new(0),
                wal,
                lifecycle: AtomicU8::new(LIFECYCLE_RUNNING),
                inflight: SafeMutex::new(HashMap::new()),
                next_query_id: AtomicU64::new(0),
                panics: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
                recovered_pages: AtomicU64::new(0),
                recovered_results: AtomicU64::new(0),
                journal_torn: AtomicU64::new(0),
                drift: DriftBus::new(),
                drift_metrics: Arc::new(MetricsRegistry::new()),
                freshness: SafeMutex::new(Freshness::default()),
            }),
        };
        // The engine reacts to its own bus (weak, or the bus inside the
        // inner would keep the inner alive forever): every published
        // event synchronously evicts the dependent cache entries before
        // `publish` returns.
        let weak = Arc::downgrade(&engine.inner);
        engine.inner.drift.subscribe(move |event| {
            if let Some(inner) = weak.upgrade() {
                Engine::apply_drift(&inner, event);
            }
        });
        // Settled results re-enter the cache alongside a fresh plan
        // (planning is pure metadata work — no fetches — so the replay
        // stays network-free). A record whose query no longer parses or
        // plans is dropped like a torn one.
        let mut recovered_results = 0u64;
        let mut torn = recovery.torn;
        for (text, relation, deps) in &recovery.results {
            let replay = parse_query(text).ok().and_then(|base| {
                let layer = engine.new_session();
                engine.inner.planner.plan(&base, &layer).ok().map(|plan| {
                    // Re-seed the ledger's static-host stamps from the
                    // replayed plan — the journal does not carry them.
                    let hosts = Engine::plan_semantics(&plan, &layer)
                        .map(|s| s.hosts())
                        .unwrap_or_default();
                    (base, plan, hosts)
                })
            });
            match replay {
                Some((base, plan, static_hosts)) => {
                    let entry = Arc::new((base, plan));
                    engine.inner.plans.write().insert(text.clone(), entry);
                    engine.inner.results.insert(AnswerMemo::key(text, &[]), relation.clone());
                    // The journal carries the result's page deps, so a
                    // recovered entry keeps being invalidated precisely.
                    // Per-object provenance is not journalled: recovered
                    // views refresh by re-evaluation, not delta.
                    engine.inner.freshness.lock().views.insert(
                        text.clone(),
                        ViewRecord {
                            epoch: 0,
                            deps: deps.clone(),
                            object_results: Vec::new(),
                            object_rels: Vec::new(),
                            invocations: Vec::new(),
                            pending: HashSet::new(),
                            pending_host_wide: false,
                            static_hosts,
                        },
                    );
                    recovered_results += 1;
                }
                None => torn += 1,
            }
        }
        engine.inner.recovered_pages.store(recovery.pages.len() as u64, Ordering::Relaxed);
        engine.inner.recovered_results.store(recovered_results, Ordering::Relaxed);
        engine.inner.journal_torn.store(torn, Ordering::Relaxed);
        Ok(engine)
    }

    /// A fresh per-query session over the shared artifacts: private
    /// navigators and catalog, shared compiled programs, page store,
    /// connection pools, and answer memo.
    fn new_session(&self) -> LogicalLayer {
        self.session_with(
            self.inner.store.clone(),
            Some(self.inner.pool.clone()),
            Some(self.inner.memo.clone()),
        )
    }

    /// A session that shares *nothing* mutable: private page store, no
    /// memo, no pools — the pre-engine single-owner cost model. The
    /// load generator's serial baseline and the concurrency tests'
    /// byte-identity oracle run here.
    fn isolated_session(&self) -> LogicalLayer {
        self.session_with(PageStore::new(), None, None)
    }

    /// A shared session whose page reads are recorded: the [`ReadSet`]
    /// is the provenance the freshness ledger stores with published
    /// results, so drift can invalidate exactly the dependent entries.
    fn tracked_session(&self) -> (LogicalLayer, ReadSet) {
        let reads = ReadSet::new();
        let store = self.inner.store.tracked(reads.clone());
        let mut layer =
            self.session_with(store, Some(self.inner.pool.clone()), Some(self.inner.memo.clone()));
        layer.vps.set_reads(reads.clone());
        (layer, reads)
    }

    fn session_with(
        &self,
        store: PageStore,
        pool: Option<Arc<HostPools>>,
        memo: Option<AnswerMemo>,
    ) -> LogicalLayer {
        let inner = &self.inner;
        let mut catalog = VpsCatalog::new();
        for site in &inner.sites {
            catalog.add_map_compiled(
                inner.web.clone(),
                site.map.clone(),
                site.compiled.clone(),
                &site.handles,
                site.semantics.clone(),
                inner.policy,
                store.clone(),
                pool.clone(),
            );
        }
        if let Some(memo) = memo {
            catalog.set_memo(memo);
        }
        LogicalLayer::new(catalog, inner.relations.clone())
    }

    /// Parse and execute one UR query as `tenant`.
    ///
    /// Admission control (when configured) runs first: a denial
    /// returns [`EngineError::Deferred`] without touching the Web.
    /// Admitted queries run on a private session — per-query metrics
    /// and (optionally) a span trace come back in the outcome.
    pub fn query(
        &self,
        tenant: &str,
        text: &str,
        options: QueryOptions,
    ) -> Result<QueryOutcome, EngineError> {
        self.run(tenant, text, options, false)
    }

    /// Run one query on a fully isolated session (private page store,
    /// no memo, no pools): the single-owner cost model, side by side
    /// with the shared engine. Bypasses admission and the `queries`
    /// counter — it is a measurement tool, not a tenant.
    pub fn query_isolated(
        &self,
        tenant: &str,
        text: &str,
        options: QueryOptions,
    ) -> Result<QueryOutcome, EngineError> {
        self.run(tenant, text, options, true)
    }

    fn run(
        &self,
        tenant: &str,
        text: &str,
        options: QueryOptions,
        isolated: bool,
    ) -> Result<QueryOutcome, EngineError> {
        let inner = &self.inner;
        // Lifecycle gate. Isolated runs stay admissible while
        // draining: they are the measurement oracle, not tenants, and
        // the chaos harness compares in-flight answers against them.
        if !isolated && inner.lifecycle.load(Ordering::SeqCst) != LIFECYCLE_RUNNING {
            return Err(EngineError::Draining);
        }
        // Plan-cache fast path: reuse the parse and the plan computed
        // by an earlier query with the same text.
        let cached = if isolated || options.trace || options.resume.is_some() {
            None
        } else {
            inner.plans.read().get(text).cloned()
        };
        let mut q = match &cached {
            Some(entry) => entry.0.clone(),
            None => parse_query(text).map_err(EngineError::Query)?,
        };
        if let Some(budget) = options.budget.clone() {
            q = q.with_budget(budget);
        }
        if !isolated {
            if let Some(admission) = &inner.admission {
                if let Err(denial) = admission.admit(tenant) {
                    inner.deferred.fetch_add(1, Ordering::Relaxed);
                    return Err(EngineError::Deferred(denial));
                }
            }
        }
        // From here to the end of the function the tenant holds an
        // admission slot, and the panic domain is this query alone:
        // execution runs under `catch_unwind`, so a panicking query is
        // converted into a structured failure — charged to its tenant —
        // while the engine keeps serving everyone else. All shared
        // state an unwinding thread can abandon mid-update is behind
        // poison-recovering locks or drop guards (the result-cache
        // leadership hands itself to a waiter on drop).
        let cancel = options.cancel.clone().unwrap_or_default();
        let _inflight = if isolated { None } else { Some(InflightGuard::register(inner, &cancel)) };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.run_admitted(text, &q, &options, isolated, &cancel, cached.as_deref())
        }));
        // The tenant consumed its admission whether the query
        // succeeded, failed, or panicked — the slot was held either
        // way, so a crashing tenant pays for its own partial spend.
        if !isolated {
            if let Some(admission) = &inner.admission {
                admission.complete(tenant);
            }
        }
        match outcome {
            Ok(result) => {
                if !isolated && result.is_ok() {
                    inner.queries.fetch_add(1, Ordering::Relaxed);
                    if cancel.is_cancelled() {
                        inner.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                }
                result
            }
            Err(payload) => {
                inner.panics.fetch_add(1, Ordering::Relaxed);
                Err(EngineError::Panicked(QueryFailure {
                    tenant: tenant.to_string(),
                    query: text.to_string(),
                    message: panic_message(payload.as_ref()),
                }))
            }
        }
    }

    /// Everything that runs *inside* the panic domain: singleflight
    /// claim, session build, execution, publication.
    fn run_admitted(
        &self,
        text: &str,
        q: &UrQuery,
        options: &QueryOptions,
        isolated: bool,
        cancel: &CancelToken,
        cached: Option<&(UrQuery, UrPlan)>,
    ) -> Result<QueryOutcome, EngineError> {
        let inner = &self.inner;
        // Whole-query singleflight over the result cache: when N
        // identical eligible queries are in flight, one session
        // executes and the rest block here until its answer settles,
        // then return it as their own. The tenant still paid
        // admission for the query — sharing the computation does not
        // share the slot.
        let eligible =
            !isolated && !options.trace && options.budget.is_none() && options.resume.is_none();
        let result_lead = if eligible {
            match inner.results.claim(&AnswerMemo::key(text, &[])) {
                MemoClaim::Hit(_) => {
                    // A drift event may have invalidated the entry
                    // between the claim and this point; serve the
                    // *current* cache value, vetted by the freshness
                    // ledger under its lock — never the claimed copy.
                    // A `None` drops through to an ordinary recompute.
                    if let Some(relation) = self.fresh_hit(text) {
                        // The leader populated the plan cache before it
                        // executed, so a hit always finds the clean plan.
                        let entry = inner.plans.read().get(text).cloned();
                        if let Some(entry) = entry {
                            return Ok(QueryOutcome {
                                relation,
                                plan: entry.1.clone(),
                                observation: None,
                                metrics: MetricsSnapshot::default(),
                            });
                        }
                    }
                    None
                }
                MemoClaim::Leader(guard) => Some(guard),
            }
        } else {
            None
        };
        let mut reads = None;
        let mut layer = if isolated {
            self.isolated_session()
        } else {
            let (layer, r) = self.tracked_session();
            reads = Some(r);
            layer
        };
        let obs = if options.trace {
            Obs::full()
        } else {
            Obs::metrics_only(Arc::new(MetricsRegistry::new()))
        };
        layer.vps.set_obs(obs.clone());
        layer.vps.set_cancel(cancel.clone());
        // Static admission (opt-in): when the abstract interpreter
        // proves the plan cannot complete within the budget's fetch
        // quota, deny *before any fetch* — planning and the fold over
        // the stored semantics are pure metadata work. Resumed runs are
        // exempt: their journalled frontier replays budget-free, so the
        // cold-store lower bound does not apply to them.
        if !isolated && inner.static_admission && options.resume.is_none() {
            if let Some(quota) = options.budget.as_ref().and_then(|b| b.max_fetches) {
                let planned;
                let plan_ref = match cached {
                    Some(entry) => Some(&entry.1),
                    None => {
                        planned = parse_query(text)
                            .ok()
                            .and_then(|b| inner.planner.plan(&b, &layer).ok());
                        planned.as_ref()
                    }
                };
                if let Some(semantics) = plan_ref.and_then(|p| Self::plan_semantics(p, &layer)) {
                    if semantics.cost.min > quota {
                        inner.drift_metrics.inc(Metric::StaticDenied);
                        let mut denials = inner.static_denials.lock();
                        for host in semantics.hosts() {
                            denials.site_mut(&host).static_denied += 1;
                        }
                        return Err(EngineError::Deferred(BudgetDenial::StaticCostExceeded {
                            needed: semantics.cost.min,
                            quota,
                        }));
                    }
                }
            }
        }
        // Plan before executing so the cache is populated as soon as
        // the plan exists — not after the first execution finishes.
        // Under a concurrent cold start every same-text query would
        // otherwise re-plan redundantly for the whole duration of the
        // first run. Planning is pure metadata work (no fetches), so
        // double-checked re-reads under the write lock are cheap.
        let out: Result<(Relation, UrPlan), EngineError> = if options.resume.is_some() {
            // A resumed run preloads its token's journal and re-plans
            // privately — its partial provenance must not touch the
            // shared plan or result caches.
            inner
                .planner
                .execute_with(q, &mut layer, options.resume.as_ref())
                .map_err(EngineError::Plan)
        } else {
            match cached {
                Some(entry) => inner
                    .planner
                    .execute_planned(q, &entry.1, &mut layer)
                    .map_err(EngineError::Plan),
                None if !isolated && !options.trace => {
                    let entry = {
                        let mut plans = inner.plans.write();
                        match plans.get(text) {
                            Some(entry) => Ok(entry.clone()),
                            None => {
                                // Plan from the *base* parse: a budget on
                                // `q` must not leak into the shared cache.
                                parse_query(text).map_err(EngineError::Query).and_then(|base| {
                                    inner
                                        .planner
                                        .plan(&base, &layer)
                                        .map_err(EngineError::Plan)
                                        .map(|plan| {
                                            let entry = Arc::new((base, plan));
                                            plans.insert(text.to_string(), entry.clone());
                                            entry
                                        })
                                })
                            }
                        }
                    };
                    entry.and_then(|entry| {
                        inner
                            .planner
                            .execute_planned(q, &entry.1, &mut layer)
                            .map_err(EngineError::Plan)
                    })
                }
                None => inner.planner.execute(q, &mut layer).map_err(EngineError::Plan),
            }
        };
        let (relation, plan) = out?;
        // Soundness tripwire: every page this run read must fall inside
        // the plan's static read-set (host granularity — the static set
        // over-approximates, so an escape is an analysis bug, not
        // drift). Memo-replayed deps come from the same relations, so
        // they are covered too.
        if let Some(reads) = &reads {
            if let Some(semantics) = Self::plan_semantics(&plan, &layer) {
                let hosts = semantics.hosts();
                if reads.all().iter().any(|r| !hosts.contains(&r.url.host)) {
                    inner.drift_metrics.inc(Metric::ReadsetEscape);
                }
            }
        }
        // Self-healing quarantined a node during this execution: the
        // site structurally drifted and awaits manual intervention, so
        // cached answers depending on it must not stay serveable. The
        // bus subscriber evicts them before `publish` returns. (Auto-
        // applied repairs are *not* published from here — healing
        // already replayed them, so the answers derived afterwards are
        // fresh; sweeps report them with a Maintenance origin instead.)
        if !isolated {
            self.publish_quarantines(&plan.repairs);
        }
        // Publish only complete answers: a degraded, cancelled, or
        // resumable run must not be replayed to other tenants as the
        // full result. (An error return above drops the guard instead,
        // releasing the key so a waiting session takes over as leader.)
        if let Some(guard) = result_lead {
            let publish =
                (plan.degradation.is_clean() && plan.resume.is_none()).then(|| relation.clone());
            if let Some(rel) = &publish {
                let deps = reads.as_ref().map(ReadSet::all).unwrap_or_default();
                self.record_view(text, rel, &plan, &layer, deps);
            }
            guard.settle(publish);
        }
        let metrics = obs.metrics.as_ref().map(|m| m.snapshot()).unwrap_or_default();
        let observation = options
            .trace
            .then(|| QueryObservation { trace: obs.sink.finish(), metrics: metrics.clone() });
        Ok(QueryOutcome { relation, plan, observation, metrics })
    }

    /// Serve-side of the freshness contract: the result-cache value for
    /// `text`, but only if the ledger agrees it is current. `None`
    /// sends the caller down the recompute path — a drift event landed
    /// between the cache claim and now. `stale_served` is the tripwire
    /// for values that *would* have gone out stale: a resident entry
    /// whose recorded deps drifted after publication without the view
    /// being marked. The eviction protocol (evict + mark under this
    /// same lock, synchronously with the event) makes that impossible,
    /// which is exactly what the consistency suites pin by asserting
    /// the counter stays zero.
    fn fresh_hit(&self, text: &str) -> Option<Relation> {
        let inner = &self.inner;
        let ledger = inner.freshness.lock();
        if ledger.drifted.contains(text) {
            return None;
        }
        let relation = inner.results.peek(&AnswerMemo::key(text, &[]))?;
        if let Some(record) = ledger.views.get(text) {
            let stale = record.deps.iter().any(|r| {
                ledger.page_drift.get(r).copied().unwrap_or(0) > record.epoch
                    || ledger.host_drift.get(&r.url.host).copied().unwrap_or(0) > record.epoch
            }) || record.static_hosts.iter().any(|h| {
                // The static pre-seed backstops missing page provenance:
                // host-wide drift on any host the plan *can* read makes
                // the entry suspect even without a recorded dep there.
                ledger.host_drift.get(h).copied().unwrap_or(0) > record.epoch
            });
            if stale {
                inner.drift_metrics.inc(Metric::StaleServed);
                return None; // refuse even here: recompute beats serving stale
            }
        }
        Some(relation)
    }

    /// The VPS relations each plan object reads, resolved through the
    /// layer's logical definitions (an object can also name a VPS
    /// relation directly). Shared by the freshness ledger's provenance
    /// and the abstract interpreter's plan-level fold.
    fn plan_vps_rels(plan: &UrPlan, layer: &LogicalLayer) -> Vec<BTreeSet<String>> {
        plan.objects
            .iter()
            .map(|o| {
                let mut logical = BTreeSet::new();
                expr_rel_names(&o.expr, &mut logical);
                let mut vps = BTreeSet::new();
                for name in &logical {
                    match layer.relation(name) {
                        Some(def) => expr_rel_names(&def.def, &mut vps),
                        // An object naming a VPS relation directly.
                        None => {
                            vps.insert(name.clone());
                        }
                    }
                }
                vps
            })
            .collect()
    }

    /// Fold the per-relation semantics up to one whole plan. The lower
    /// bound unions navigation-spine nodes per host — relations that
    /// share a spine prefix (every site's relations share at least the
    /// entry page) are not double-counted, so the bound stays sound.
    /// The upper bound sums every (object, relation) occurrence: each
    /// invocation can spend up to its own max. `None` when a relation
    /// lacks stored semantics — nothing sound to gate against.
    fn plan_semantics(plan: &UrPlan, layer: &LogicalLayer) -> Option<PlanSemantics> {
        let mut spines: BTreeMap<String, BTreeSet<NodeId>> = BTreeMap::new();
        let mut read: BTreeMap<String, BTreeSet<NodeId>> = BTreeMap::new();
        let mut max = webbase_webcheck::Bound::Finite(0);
        for rels in Self::plan_vps_rels(plan, layer) {
            for name in &rels {
                let site = layer.vps.relation_site(name)?;
                let sem = site.relation(name)?;
                let host = site.host.clone();
                spines.entry(host.clone()).or_default().extend(sem.spine_nodes.iter().copied());
                read.entry(host).or_default().extend(sem.read_nodes.iter().copied());
                max = max.join_add(sem.cost.max);
            }
        }
        let min = spines.values().map(|s| s.len() as u64).sum();
        Some(PlanSemantics { cost: webbase_webcheck::CostInterval { min, max }, read })
    }

    /// Enter a freshly published result into the freshness ledger (and
    /// the journal) with everything a later drift event needs: its page
    /// deps, its per-object values, which VPS relations each object
    /// reads, and the plan's static host set.
    fn record_view(
        &self,
        text: &str,
        relation: &Relation,
        plan: &UrPlan,
        layer: &LogicalLayer,
        deps: Vec<Request>,
    ) {
        let inner = &self.inner;
        let object_rels = Self::plan_vps_rels(plan, layer);
        let static_hosts = Self::plan_semantics(plan, layer).map(|s| s.hosts()).unwrap_or_default();
        let invocations: Vec<(MemoKey, Vec<Request>)> =
            layer.vps.invocation_log().iter().map(|(k, _, d)| (k.clone(), d.clone())).collect();
        if let Some(wal) = &inner.wal {
            // Best-effort, like page journalling: losing the record
            // costs warm-restart coverage, not the answer.
            let _ = wal.append_result(text, relation, &deps);
        }
        let mut ledger = inner.freshness.lock();
        let epoch = ledger.epoch;
        ledger.drifted.remove(text);
        ledger.views.insert(
            text.to_string(),
            ViewRecord {
                epoch,
                deps,
                object_results: plan.object_results.clone(),
                object_rels,
                invocations,
                pending: HashSet::new(),
                pending_host_wide: false,
                static_hosts,
            },
        );
    }

    /// React to one drift event: bump the drift clock, evict exactly
    /// the dependent result-cache views and memo entries, journal the
    /// invalidations, and mark the views for refresh. Runs
    /// synchronously on the publisher's thread — `publish` returns only
    /// after this completes, so a sweep-then-query sequence can never
    /// observe the stale entries.
    fn apply_drift(inner: &EngineInner, event: &DriftEvent) {
        inner.drift_metrics.inc(Metric::DriftEvents);
        let page_scoped = event.page_scoped();
        // Invocation memo first: anything that read a changed page (or
        // a tainted host) recomputes on next use — against the already
        // sweep-refreshed store, so precisely without re-fetching.
        if page_scoped {
            inner.memo.invalidate_dependents(&event.requests);
        } else {
            inner.memo.invalidate_host(&event.host);
        }
        let mut ledger = inner.freshness.lock();
        ledger.epoch += 1;
        let epoch = ledger.epoch;
        if page_scoped {
            for r in &event.requests {
                ledger.page_drift.insert(r.clone(), epoch);
            }
        } else {
            ledger.host_drift.insert(event.host.clone(), epoch);
        }
        let victims: Vec<String> = ledger
            .views
            .iter()
            .filter(|(_, rec)| {
                if rec.deps.is_empty() {
                    // Unknown provenance (pre-tracking or torn journal):
                    // never prefer a possibly-stale answer to a recompute.
                    return true;
                }
                if page_scoped {
                    rec.deps.iter().any(|d| event.requests.contains(d))
                } else {
                    // Host-scoped: the recorded deps decide, backstopped
                    // by the statically pre-seeded host stamps (they
                    // cover entries whose page provenance is partial —
                    // journal-recovered views, for one).
                    rec.deps.iter().any(|d| d.url.host == event.host)
                        || rec.static_hosts.contains(&event.host)
                }
            })
            .map(|(text, _)| text.clone())
            .collect();
        for text in victims {
            if inner.results.remove(&AnswerMemo::key(&text, &[])) {
                inner.drift_metrics.inc(Metric::ViewInvalidated);
                if let Some(wal) = &inner.wal {
                    // Journalled so a crash between the eviction and the
                    // re-publish cannot resurrect the stale entry on
                    // warm restart.
                    let _ = wal.append_invalidate(&text);
                }
            }
            let rec = ledger.views.get_mut(&text).expect("victim came from views");
            if page_scoped {
                rec.pending.extend(event.requests.iter().cloned());
            } else {
                rec.pending_host_wide = true;
            }
            ledger.drifted.insert(text);
        }
    }

    /// Revalidate cached pages against the live Web (optionally one
    /// host) and bring every drift-invalidated view back to freshness.
    /// This is the background sweep and the `REFRESH` verb: budget-
    /// charged and cancellable like any other navigation work.
    pub fn refresh(
        &self,
        host: Option<&str>,
        origin: DriftOrigin,
        budget: Option<&BudgetTracker>,
        cancel: Option<&CancelToken>,
    ) -> RefreshReport {
        let inner = &self.inner;
        let swept = sweep(&inner.web, &inner.store, &inner.drift, host, origin, budget, cancel);
        let mut report = RefreshReport { sweep: swept, ..RefreshReport::default() };
        // The subscriber already invalidated during the sweep's
        // publishes; now rebuild — including views tainted by earlier
        // events (healing quarantines and the like).
        let drifted: Vec<String> = inner.freshness.lock().drifted.iter().cloned().collect();
        for text in drifted {
            match self.refresh_view(&text) {
                RefreshOutcome::Delta => report.delta_refreshed += 1,
                RefreshOutcome::Cold => report.cold_refreshed += 1,
                RefreshOutcome::Evicted => report.evicted += 1,
            }
        }
        report
    }

    /// The refresh ladder for one invalidated view:
    ///
    /// 1. **Incremental** — when the drift is page-scoped and only some
    ///    of the plan's objects read an affected VPS relation:
    ///    re-evaluate just those objects (unchanged invocations
    ///    memo-hit; re-run invocations read the sweep-refreshed store,
    ///    so no new wire fetches) and propagate the per-object deltas
    ///    through the union with [`Incremental`].
    /// 2. **Re-evaluation** — otherwise re-run the whole query; still
    ///    fetch-economical for the same reasons, but no delta math.
    /// 3. **Eviction** — a failed or degraded refresh leaves the view
    ///    evicted; the next query recomputes and re-publishes it.
    fn refresh_view(&self, text: &str) -> RefreshOutcome {
        let inner = &self.inner;
        let plan_entry = inner.plans.read().get(text).cloned();
        let Some(plan_entry) = plan_entry else {
            // No cached plan to rebuild from (a recovered entry whose
            // replay failed): stays evicted until someone queries it.
            return RefreshOutcome::Evicted;
        };
        let (query, plan) = (&plan_entry.0, &plan_entry.1);
        let snapshot = {
            let ledger = inner.freshness.lock();
            ledger.views.get(text).map(|r| {
                (
                    r.object_results.clone(),
                    r.object_rels.clone(),
                    r.invocations.clone(),
                    r.pending.clone(),
                    r.pending_host_wide,
                    r.deps.clone(),
                )
            })
        };
        // Rung 1 applies when per-page provenance lets us bound the
        // affected objects to a strict, non-empty subset.
        let incremental = snapshot.and_then(|(objects, rels, invocations, pending, wide, deps)| {
            if wide || pending.is_empty() || objects.len() != plan.objects.len() {
                return None;
            }
            if rels.len() != plan.objects.len() {
                return None;
            }
            let mut affected_rels: BTreeSet<String> = BTreeSet::new();
            for (key, inv_deps) in &invocations {
                if inv_deps.is_empty() || inv_deps.iter().any(|d| pending.contains(d)) {
                    affected_rels.insert(key.0.clone());
                }
            }
            let affected: Vec<usize> = (0..plan.objects.len())
                .filter(|i| rels[*i].iter().any(|n| affected_rels.contains(n)))
                .collect();
            if affected.is_empty() || affected.len() == plan.objects.len() {
                return None; // nothing attributable, or nothing to save
            }
            Some((objects, affected, deps))
        });
        if let Some((old_objects, affected, old_deps)) = incremental {
            if let Some(outcome) = self.refresh_delta(text, plan, &old_objects, &affected, old_deps)
            {
                return outcome;
            }
        }
        // Rung 2: full re-evaluation on a tracked session. The memo
        // entries drift touched are already evicted, so this re-runs
        // exactly the affected invocations — against the refreshed
        // store — and memo-hits the rest.
        let (mut layer, reads) = self.tracked_session();
        layer.vps.set_obs(Obs::metrics_only(Arc::new(MetricsRegistry::new())));
        match inner.planner.execute_planned(query, plan, &mut layer) {
            Ok((relation, executed)) if executed.degradation.is_clean() => {
                // Structural drift found while rebuilding taints its
                // host like healing-time drift — dependants evict
                // before this view re-publishes at the bumped epoch.
                self.publish_quarantines(&executed.repairs);
                inner.results.insert(AnswerMemo::key(text, &[]), relation.clone());
                self.record_view(text, &relation, &executed, &layer, reads.all());
                inner.drift_metrics.inc(Metric::ColdRefresh);
                RefreshOutcome::Cold
            }
            _ => {
                // Rung 3: stay evicted; counted as a cold fallback so
                // the bench's refresh column reflects the failed path.
                inner.drift_metrics.inc(Metric::ColdRefresh);
                RefreshOutcome::Evicted
            }
        }
    }

    /// Publish the quarantines of one execution's repair report on the
    /// drift bus (the subscriber evicts every cached view depending on
    /// the tainted host before `publish` returns). Auto-applied repairs
    /// are not republished: healing already replayed them, so answers
    /// derived afterwards are fresh.
    fn publish_quarantines(&self, repairs: &RepairReport) {
        for event in events_from_repairs(repairs, DriftOrigin::Healing) {
            if event.kind == DriftKind::Quarantined {
                self.inner.drift.publish(event);
            }
        }
    }

    /// Rung 1 of the ladder: re-evaluate only `affected` objects and
    /// derive the new view value by delta-propagating through the
    /// union. Returns `None` to fall through to re-evaluation.
    fn refresh_delta(
        &self,
        text: &str,
        plan: &UrPlan,
        old_objects: &[Relation],
        affected: &[usize],
        old_deps: Vec<Request>,
    ) -> Option<RefreshOutcome> {
        let inner = &self.inner;
        let (mut layer, reads) = self.tracked_session();
        layer.vps.set_obs(Obs::metrics_only(Arc::new(MetricsRegistry::new())));
        let mut new_objects = old_objects.to_vec();
        for &i in affected {
            match Evaluator::new(&mut layer).eval(&plan.objects[i].expr, &AccessSpec::new()) {
                Ok(rel) => new_objects[i] = rel,
                Err(_) => return None,
            }
        }
        if !layer.vps.degradation().is_clean() {
            return None;
        }
        self.publish_quarantines(&layer.vps.repairs());
        // Union delta propagation over the per-object bases.
        let mut bases = HashMap::new();
        let mut expr: Option<Expr> = None;
        for i in 0..old_objects.len() {
            let name = format!("object{i}");
            let base = if affected.contains(&i) {
                BaseDelta { old: old_objects[i].clone(), new: new_objects[i].clone() }
            } else {
                BaseDelta::unchanged(old_objects[i].clone())
            };
            bases.insert(name.clone(), base);
            let rel = Expr::relation(&name);
            expr = Some(match expr {
                None => rel,
                Some(e) => e.union(rel),
            });
        }
        let node =
            Incremental::new(bases).refresh(&expr.expect("plans have at least one object")).ok()?;
        let value = node.new_value();
        // New provenance: the refreshed session's reads (memo-hit
        // replays included) plus the carried-over deps of the objects
        // we did not touch.
        let mut deps = old_deps;
        for r in reads.all() {
            if !deps.contains(&r) {
                deps.push(r);
            }
        }
        let refreshed_invocations: Vec<(MemoKey, Vec<Request>)> =
            layer.vps.invocation_log().iter().map(|(k, _, d)| (k.clone(), d.clone())).collect();
        if let Some(wal) = &inner.wal {
            let _ = wal.append_result(text, &value, &deps);
        }
        let mut ledger = inner.freshness.lock();
        let epoch = ledger.epoch;
        inner.results.insert(AnswerMemo::key(text, &[]), value);
        ledger.drifted.remove(text);
        if let Some(rec) = ledger.views.get_mut(text) {
            rec.epoch = epoch;
            rec.deps = deps;
            rec.object_results = new_objects;
            rec.pending.clear();
            rec.pending_host_wide = false;
            // Merge: re-run invocations replace their old entries;
            // untouched objects keep theirs.
            for (key, inv_deps) in refreshed_invocations {
                match rec.invocations.iter_mut().find(|(k, _)| *k == key) {
                    Some(slot) => slot.1 = inv_deps,
                    None => rec.invocations.push((key, inv_deps)),
                }
            }
        }
        inner.drift_metrics.inc(Metric::DeltaRefresh);
        Some(RefreshOutcome::Delta)
    }

    /// The drift bus (publish maintenance findings here; subscribe for
    /// diagnostics).
    pub fn drift_bus(&self) -> &DriftBus {
        &self.inner.drift
    }

    /// Point-in-time freshness summary for the `FRESHNESS` verb.
    pub fn freshness(&self) -> FreshnessReport {
        let inner = &self.inner;
        let ledger = inner.freshness.lock();
        FreshnessReport {
            epoch: ledger.epoch,
            tracked_views: ledger.views.len(),
            drifted: ledger.drifted.iter().cloned().collect(),
            events_published: inner.drift.published(),
            recent: inner.drift.recent(),
        }
    }

    /// Stop admitting new queries; in-flight queries keep running.
    /// Idempotent, and a no-op once the engine is stopped.
    pub fn drain(&self) {
        let _ = self.inner.lifecycle.compare_exchange(
            LIFECYCLE_RUNNING,
            LIFECYCLE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Stop admitting *and* cancel every in-flight query: each one
    /// abandons navigation at its next checkpoint (budgeted queries
    /// checkpoint to a resume token, so their spend is not wasted).
    pub fn shutdown(&self) {
        self.inner.lifecycle.store(LIFECYCLE_STOPPED, Ordering::SeqCst);
        for token in self.inner.inflight.lock().values() {
            token.cancel();
        }
    }

    pub fn lifecycle(&self) -> Lifecycle {
        match self.inner.lifecycle.load(Ordering::SeqCst) {
            LIFECYCLE_RUNNING => Lifecycle::Running,
            LIFECYCLE_DRAINING => Lifecycle::Draining,
            _ => Lifecycle::Stopped,
        }
    }

    /// Admitted queries currently executing.
    pub fn inflight_queries(&self) -> usize {
        self.inner.inflight.lock().len()
    }

    /// Block until every in-flight query has finished (true) or the
    /// timeout elapses with queries still running (false). Call after
    /// [`Engine::drain`] or [`Engine::shutdown`] — while admissions
    /// are open, new queries can keep the count from reaching zero.
    pub fn drain_wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.inner.inflight.lock().is_empty() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Plan without executing (no admission charge, no fetches).
    pub fn explain(&self, text: &str) -> Result<UrPlan, EngineError> {
        Ok(self.explain_semantics(text)?.0)
    }

    /// [`Engine::explain`] plus the abstract interpreter's plan-level
    /// verdict (`None` only if a plan relation lacks stored semantics,
    /// which loaded maps never do). Still fetch-free.
    pub fn explain_semantics(
        &self,
        text: &str,
    ) -> Result<(UrPlan, Option<PlanSemantics>), EngineError> {
        let q = parse_query(text).map_err(EngineError::Query)?;
        let layer = self.new_session();
        let plan = self.inner.planner.plan(&q, &layer).map_err(EngineError::Plan)?;
        let semantics = Self::plan_semantics(&plan, &layer);
        Ok((plan, semantics))
    }

    /// Per-site static-admission denials (the analysis-time analogue of
    /// the runtime budget ledger's `budget_denied` rows). Empty unless
    /// `EngineConfig::static_admission` denied something.
    pub fn static_denials(&self) -> DegradationReport {
        self.inner.static_denials.lock().clone()
    }

    /// Open a new admission epoch (no-op without admission control).
    pub fn reset_epoch(&self) {
        if let Some(admission) = &self.inner.admission {
            admission.reset_epoch();
        }
    }

    /// The current epoch's per-tenant admission spend.
    pub fn admission_snapshot(&self) -> Option<BudgetSnapshot> {
        self.inner.admission.as_ref().map(EngineAdmission::snapshot)
    }

    pub fn stats(&self) -> EngineStats {
        let inner = &self.inner;
        EngineStats {
            queries: inner.queries.load(Ordering::Relaxed),
            deferred: inner.deferred.load(Ordering::Relaxed),
            store_hits: inner.store.hits(),
            store_misses: inner.store.misses(),
            store_evictions: inner.store.evictions(),
            memo_hits: inner.memo.hits(),
            memo_misses: inner.memo.misses(),
            memo_len: inner.memo.len(),
            memo_coalesced: inner.memo.coalesced(),
            result_hits: inner.results.hits(),
            result_misses: inner.results.misses(),
            result_coalesced: inner.results.coalesced(),
            pool_waits: inner.pool.waits(),
            panics: inner.panics.load(Ordering::Relaxed),
            cancelled: inner.cancelled.load(Ordering::Relaxed),
            result_aborted: inner.results.aborted(),
            memo_aborted: inner.memo.aborted(),
            lock_poison_recovered: webbase_obs::sync::poison_recoveries(),
            journal_recovered_pages: inner.recovered_pages.load(Ordering::Relaxed),
            journal_recovered_results: inner.recovered_results.load(Ordering::Relaxed),
            journal_torn: inner.journal_torn.load(Ordering::Relaxed),
            web_requests: inner.web.total_stats().requests,
            drift_events: inner.drift_metrics.get(Metric::DriftEvents),
            view_invalidated: inner.drift_metrics.get(Metric::ViewInvalidated),
            delta_refresh: inner.drift_metrics.get(Metric::DeltaRefresh),
            cold_refresh: inner.drift_metrics.get(Metric::ColdRefresh),
            stale_served: inner.drift_metrics.get(Metric::StaleServed),
            static_denied: inner.drift_metrics.get(Metric::StaticDenied),
            readset_escape: inner.drift_metrics.get(Metric::ReadsetEscape),
        }
    }

    pub fn web(&self) -> &SyntheticWeb {
        &self.inner.web
    }

    pub fn data(&self) -> Option<&Arc<Dataset>> {
        self.inner.data.as_ref()
    }

    /// The shared page store (for tests and diagnostics).
    pub fn store(&self) -> &PageStore {
        &self.inner.store
    }

    /// The shared answer memo (for tests and diagnostics).
    pub fn memo(&self) -> &AnswerMemo {
        &self.inner.memo
    }

    /// The §7 map-builder statistics from the build.
    pub fn report(&self) -> &BuildReport {
        &self.inner.report
    }

    /// The accumulated build-time webcheck findings.
    pub fn preflight(&self) -> &webbase_webcheck::Report {
        &self.inner.preflight
    }

    /// The UR's attribute list.
    pub fn ur_attributes(&self) -> Vec<String> {
        self.inner.planner.ur_attributes(&self.new_session())
    }
}

/// RAII registration of one admitted query's cancel token: the entry
/// is removed however the query ends — success, error, or unwind.
struct InflightGuard<'a> {
    inner: &'a EngineInner,
    id: u64,
}

impl<'a> InflightGuard<'a> {
    fn register(inner: &'a EngineInner, cancel: &CancelToken) -> InflightGuard<'a> {
        let id = inner.next_query_id.fetch_add(1, Ordering::Relaxed);
        inner.inflight.lock().insert(id, cancel.clone());
        InflightGuard { inner, id }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.inner.inflight.lock().remove(&self.id);
    }
}

/// Extract a human-readable message from a caught panic payload
/// (`panic!("...")` carries `&str` or `String`; anything else is
/// reported by type only).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Webbase;

    const JAGUAR: &str = "UsedCarUR(make='jaguar', model, year >= 1993, price, bbprice, \
                          safety='good', condition='good') WHERE price < bbprice";

    #[test]
    fn engine_is_send_sync_and_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn engine_answers_match_the_single_owner_stack() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let mut wb = Webbase::build_demo(5, 400, LatencyModel::lan());
        let (expected, _) = wb.query(JAGUAR).expect("webbase answers");
        let out = engine.query("t0", JAGUAR, QueryOptions::default()).expect("engine answers");
        assert_eq!(out.relation, expected, "shared engine changed the answer");
        assert!(!out.plan.objects.is_empty());
    }

    #[test]
    fn repeat_queries_hit_the_shared_store_and_memo() {
        let engine = Engine::build_demo(7, 400, LatencyModel::lan());
        let a = engine.query("alice", JAGUAR, QueryOptions::default()).expect("first");
        let before = engine.web().total_stats().requests;
        let b = engine.query("bob", JAGUAR, QueryOptions::default()).expect("second");
        assert_eq!(a.relation, b.relation);
        // The second tenant's identical query is answered entirely out
        // of the shared result cache: zero new network requests.
        assert_eq!(engine.web().total_stats().requests, before, "repeat query re-fetched");
        let stats = engine.stats();
        assert_eq!(stats.result_hits, 1, "repeat text must hit the result cache: {stats:?}");
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn concurrent_identical_queries_coalesce_onto_one_leader() {
        let engine = Engine::build_demo(7, 400, LatencyModel::lan());
        let answers: Vec<Relation> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4)
                .map(|t| {
                    let engine = engine.clone();
                    scope.spawn(move || {
                        let tenant = format!("tenant{t}");
                        engine
                            .query(&tenant, JAGUAR, QueryOptions::default())
                            .expect("query runs")
                            .relation
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("worker")).collect()
        });
        assert!(answers.windows(2).all(|w| w[0] == w[1]), "coalesced answers diverged");
        let stats = engine.stats();
        // One session executed; the other three either waited for its
        // answer (coalesced) or arrived after it settled (hits).
        assert_eq!(stats.result_misses, 1, "exactly one leader: {stats:?}");
        assert_eq!(stats.result_hits, 3, "three followers shared the answer: {stats:?}");
        assert_eq!(stats.queries, 4);
    }

    #[test]
    fn overlapping_queries_share_pages_not_answers() {
        let engine = Engine::build_demo(7, 400, LatencyModel::lan());
        engine.query("alice", JAGUAR, QueryOptions::default()).expect("jaguar");
        let misses_before = engine.stats().store_misses;
        // A different query over the same sites: memo cannot help, but
        // every page the jaguar query already fetched is store-hit.
        let out = engine
            .query(
                "bob",
                "UsedCarUR(make='jaguar', model, year >= 1995, price, bbprice, \
                 safety='good', condition='good') WHERE price < bbprice",
                QueryOptions::default(),
            )
            .expect("narrower jaguar");
        drop(out);
        let stats = engine.stats();
        assert!(stats.store_hits > 0, "no cross-query page sharing: {stats:?}");
        assert!(stats.store_misses >= misses_before, "miss counter went backwards");
    }

    #[test]
    fn traced_queries_get_private_span_trees() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let out = engine.query("t", JAGUAR, QueryOptions::traced()).expect("traced");
        let obs = out.observation.expect("trace present");
        assert!(!obs.trace.spans.is_empty(), "traced query produced no spans");
        // An untraced query returns no observation but still counts.
        let out2 = engine.query("t", JAGUAR, QueryOptions::default()).expect("untraced");
        assert!(out2.observation.is_none());
        assert!(out2.metrics.counters.values().any(|v| *v > 0), "metrics-only still counts");
    }

    #[test]
    fn budgeted_queries_bypass_the_memo_and_stay_partial() {
        let q = "UsedCarUR(make='ford', price)";
        // Cold engine: nothing shared yet, so a tiny quota binds and
        // the partial carries a resume token.
        let cold = Engine::build_demo(5, 400, LatencyModel::lan());
        let out = cold
            .query("tight", q, QueryOptions::budgeted(QueryBudget::unlimited().with_fetch_quota(2)))
            .expect("budgeted runs return partials");
        assert!(out.plan.resume.is_some(), "a cold 2-fetch quota cannot finish the ford query");

        // Warm engine: a full run seeds both the memo and the page
        // store. A budgeted repeat must not consult the memo — but the
        // shared store's cache hits are budget-free, so it still walks
        // to the complete answer.
        let warm = Engine::build_demo(5, 400, LatencyModel::lan());
        let full = warm.query("warm", q, QueryOptions::default()).expect("full run");
        let memo_hits_before = warm.stats().memo_hits;
        let out2 = warm
            .query("tight", q, QueryOptions::budgeted(QueryBudget::unlimited().with_fetch_quota(2)))
            .expect("budgeted warm run");
        assert_eq!(
            warm.stats().memo_hits,
            memo_hits_before,
            "a budgeted query consulted the shared memo"
        );
        assert!(out2.plan.resume.is_none(), "store hits are budget-free on the warm walk");
        assert_eq!(out2.relation, full.relation, "the warm budgeted walk re-derives the answer");
    }

    #[test]
    fn static_admission_denies_before_any_fetch() {
        let config = EngineConfig { static_admission: true, ..EngineConfig::default() };
        let data = Dataset::generate(5, 400);
        let web = standard_web(data.clone(), LatencyModel::lan());
        let engine = Engine::build_on(web, data, config).expect("builds");
        let before = engine.web().total_stats().requests;
        let err = engine.query(
            "tight",
            FORD,
            QueryOptions::budgeted(QueryBudget::unlimited().with_fetch_quota(2)),
        );
        match err {
            Err(EngineError::Deferred(BudgetDenial::StaticCostExceeded { needed, quota })) => {
                assert!(needed > quota, "the denial carries its proof: {needed} > {quota}");
                assert_eq!(quota, 2);
            }
            other => panic!("expected a static denial, got {other:?}"),
        }
        assert_eq!(
            engine.web().total_stats().requests,
            before,
            "a static denial must precede any fetch"
        );
        let stats = engine.stats();
        assert_eq!(stats.static_denied, 1, "{stats:?}");
        assert_eq!(stats.queries, 0, "a denied query never counts as served");
        let denials = engine.static_denials();
        assert!(denials.sites.values().any(|d| d.static_denied > 0), "{denials:?}");
        // A quota above the lower bound passes the gate; whether the
        // run then completes or goes partial is the runtime budget
        // layer's business, not the gate's.
        engine
            .query(
                "roomy",
                FORD,
                QueryOptions::budgeted(QueryBudget::unlimited().with_fetch_quota(500)),
            )
            .expect("a feasible budget is admitted");
        assert_eq!(engine.stats().static_denied, 1, "the feasible run was not denied");
    }

    #[test]
    fn static_gate_is_off_by_default_and_the_tripwire_stays_zero() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        // Default config: the same infeasible quota yields a budgeted
        // partial with a resume token, exactly as before the gate.
        let out = engine
            .query(
                "tight",
                FORD,
                QueryOptions::budgeted(QueryBudget::unlimited().with_fetch_quota(2)),
            )
            .expect("gate off: budgeted queries stay partial");
        assert!(out.plan.resume.is_some());
        engine.query("t", JAGUAR, QueryOptions::default()).expect("full run");
        let stats = engine.stats();
        assert_eq!(stats.static_denied, 0, "{stats:?}");
        assert_eq!(stats.readset_escape, 0, "dynamic reads escaped the static read-set");
    }

    #[test]
    fn explain_semantics_reports_cost_interval_and_read_set() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let (plan, semantics) = engine.explain_semantics(JAGUAR).expect("plans");
        let semantics = semantics.expect("every loaded relation carries semantics");
        assert!(!plan.objects.is_empty());
        assert!(semantics.cost.min >= 1, "at least the entry fetch: {:?}", semantics.cost);
        assert!(!semantics.read.is_empty());
        let rendered = semantics.render();
        assert!(rendered.contains("static cost: ["), "{rendered}");
        assert!(rendered.contains("static read set:"), "{rendered}");
        for host in semantics.hosts() {
            assert!(rendered.contains(&host), "render names every host: {rendered}");
        }
    }

    #[test]
    fn admission_defers_over_quota_tenants_and_resets_by_epoch() {
        let config = EngineConfig {
            admission: Some(AdmissionConfig { queries_per_epoch: 2, fair_share: true }),
            ..EngineConfig::default()
        };
        let data = Dataset::generate(5, 400);
        let web = standard_web(data.clone(), LatencyModel::lan());
        let engine = Engine::build_on(web, data, config).expect("builds");
        let q = "UsedCarUR(make='honda', model='civic', year, price)";
        engine.query("a", q, QueryOptions::default()).expect("first admitted");
        engine.query("a", q, QueryOptions::default()).expect("second admitted");
        let err = engine.query("a", q, QueryOptions::default());
        assert!(matches!(err, Err(EngineError::Deferred(_))), "third must defer: {err:?}");
        assert_eq!(engine.stats().deferred, 1);
        let snap = engine.admission_snapshot().expect("admission configured");
        assert_eq!(snap.sites["a"].fetches, 2);
        engine.reset_epoch();
        engine.query("a", q, QueryOptions::default()).expect("fresh epoch admits again");
    }

    #[test]
    fn fair_share_reserves_floors_for_quiet_tenants() {
        let config = EngineConfig {
            admission: Some(AdmissionConfig { queries_per_epoch: 4, fair_share: true }),
            ..EngineConfig::default()
        };
        let data = Dataset::generate(5, 400);
        let web = standard_web(data.clone(), LatencyModel::lan());
        let engine = Engine::build_on(web, data, config).expect("builds");
        let q = "UsedCarUR(make='honda', model='civic', year, price)";
        // Register both tenants, then let "greedy" try to drain the epoch.
        engine.query("greedy", q, QueryOptions::default()).expect("greedy 1");
        engine.query("quiet", q, QueryOptions::default()).expect("quiet 1");
        engine.reset_epoch();
        // floor = 4/2 = 2 each. Greedy is served after its first query,
        // releasing its own reservation, but quiet's floor holds.
        engine.query("greedy", q, QueryOptions::default()).expect("greedy within floor");
        engine.query("greedy", q, QueryOptions::default()).expect("greedy takes slack");
        let third = engine.query("greedy", q, QueryOptions::default());
        assert!(
            matches!(third, Err(EngineError::Deferred(BudgetDenial::FairShareDeferred))),
            "quiet tenant's floor must survive: {third:?}"
        );
        engine.query("quiet", q, QueryOptions::default()).expect("quiet's reserved floor");
    }

    #[test]
    fn isolated_queries_share_nothing_and_agree() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let iso = engine.query_isolated("x", JAGUAR, QueryOptions::default()).expect("isolated");
        assert_eq!(engine.stats().queries, 0, "isolated runs are not admitted queries");
        assert!(engine.store().is_empty(), "isolated run leaked into the shared store");
        assert!(engine.memo().is_empty(), "isolated run leaked into the shared memo");
        let shared = engine.query("x", JAGUAR, QueryOptions::default()).expect("shared");
        assert_eq!(iso.relation, shared.relation, "isolation changed the answer");
    }

    #[test]
    fn a_panicking_query_is_contained_and_charged_to_its_tenant() {
        let config = EngineConfig {
            admission: Some(AdmissionConfig { queries_per_epoch: 8, fair_share: true }),
            ..EngineConfig::default()
        };
        let data = Dataset::generate(5, 400);
        let web = standard_web(data.clone(), LatencyModel::lan());
        let engine = Engine::build_on(web, data, config).expect("builds");
        let chaos = QueryOptions {
            cancel: Some(CancelToken::new().panic_after_polls(1)),
            ..QueryOptions::default()
        };
        let err = engine.query("crashy", JAGUAR, chaos);
        let Err(EngineError::Panicked(failure)) = err else {
            panic!("fused query must panic: {err:?}");
        };
        assert_eq!(failure.tenant, "crashy");
        assert_eq!(failure.query, JAGUAR);
        assert!(failure.message.contains("chaos"), "{failure:?}");
        let stats = engine.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.queries, 0, "a panicked query did not complete");
        assert_eq!(stats.result_aborted, 1, "the leadership was released by a panicking holder");
        assert_eq!(engine.inflight_queries(), 0, "no orphaned in-flight registration");
        // The admission slot was consumed by the failing tenant...
        let snap = engine.admission_snapshot().expect("admission configured");
        assert_eq!(snap.sites["crashy"].fetches, 1);
        // ...and the engine keeps serving everyone else correctly.
        let clean = engine.query("steady", JAGUAR, QueryOptions::default()).expect("serves on");
        let oracle = engine.query_isolated("o", JAGUAR, QueryOptions::default()).expect("oracle");
        assert_eq!(clean.relation, oracle.relation, "post-panic answer diverged");
    }

    #[test]
    fn drain_stops_admissions_but_not_the_oracle() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        assert_eq!(engine.lifecycle(), Lifecycle::Running);
        engine.drain();
        assert_eq!(engine.lifecycle(), Lifecycle::Draining);
        let err = engine.query("t", JAGUAR, QueryOptions::default());
        assert!(matches!(err, Err(EngineError::Draining)), "{err:?}");
        engine.query_isolated("o", JAGUAR, QueryOptions::default()).expect("oracle still runs");
        engine.shutdown();
        assert_eq!(engine.lifecycle(), Lifecycle::Stopped);
        assert!(engine.drain_wait(Duration::from_millis(50)), "nothing in flight");
    }

    #[test]
    fn poisoned_plan_cache_recovers_and_is_counted() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let before = webbase_obs::sync::poison_recoveries();
        let poisoner = {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let _guard = engine.inner.plans.raw().write().expect("first writer");
                panic!("poison the plan cache");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(engine.inner.plans.raw().is_poisoned());
        let out = engine.query("t", JAGUAR, QueryOptions::default()).expect("recovers");
        assert!(!out.relation.is_empty());
        assert!(engine.stats().lock_poison_recovered > before);
    }

    #[test]
    fn poisoned_admission_lock_recovers_and_is_counted() {
        let config = EngineConfig {
            admission: Some(AdmissionConfig { queries_per_epoch: 4, fair_share: false }),
            ..EngineConfig::default()
        };
        let data = Dataset::generate(5, 400);
        let web = standard_web(data.clone(), LatencyModel::lan());
        let engine = Engine::build_on(web, data, config).expect("builds");
        let before = webbase_obs::sync::poison_recoveries();
        let poisoner = {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let admission = engine.inner.admission.as_ref().expect("configured");
                let _guard = admission.state.raw().lock().expect("first holder");
                panic!("poison the admission lock");
            })
        };
        assert!(poisoner.join().is_err());
        let q = "UsedCarUR(make='honda', model='civic', year, price)";
        engine.query("t", q, QueryOptions::default()).expect("admission recovered");
        assert!(engine.stats().lock_poison_recovered > before);
        assert_eq!(engine.stats().queries, 1);
    }

    #[test]
    fn warm_restart_replays_the_journal_fetch_free() {
        let path = std::env::temp_dir()
            .join(format!("webbase-engine-wal-{}-warm-restart", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = EngineConfig { journal: Some(path.clone()), ..EngineConfig::default() };
        let data = Dataset::generate(5, 400);
        let first = Engine::build_on(standard_web(data.clone(), LatencyModel::lan()), data, config)
            .expect("builds");
        let original = first.query("t", JAGUAR, QueryOptions::default()).expect("journalled run");
        assert!(first.stats().journal_recovered_pages == 0, "cold start recovered nothing");
        drop(first);

        // "Restart": a fresh engine over the same journal rebuilds the
        // page store and result cache without touching the network.
        let config = EngineConfig { journal: Some(path.clone()), ..EngineConfig::default() };
        let data = Dataset::generate(5, 400);
        let second =
            Engine::build_on(standard_web(data.clone(), LatencyModel::lan()), data, config)
                .expect("rebuilds");
        let stats = second.stats();
        assert!(stats.journal_recovered_pages > 0, "pages replayed: {stats:?}");
        assert_eq!(stats.journal_recovered_results, 1, "settled result replayed: {stats:?}");
        assert_eq!(stats.journal_torn, 0, "clean journal: {stats:?}");
        let requests_before = second.web().total_stats().requests;
        let replay = second.query("t", JAGUAR, QueryOptions::default()).expect("replayed run");
        assert_eq!(replay.relation, original.relation, "restart changed the answer");
        assert_eq!(
            second.web().total_stats().requests,
            requests_before,
            "warm restart still fetched"
        );
        assert_eq!(second.stats().result_hits, 1, "served from the recovered result cache");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn explain_charges_nothing() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let before = engine.web().total_stats().requests;
        let plan = engine.explain(JAGUAR).expect("plans");
        assert!(!plan.objects.is_empty());
        assert_eq!(engine.web().total_stats().requests, before);
        assert_eq!(engine.stats().queries, 0, "explain is not an admitted query");
    }

    // ── freshness: drift invalidation and the refresh ladder ──────────

    use webbase_webworld::faults::{MutatingSite, Mutation, MutationClock};
    use webbase_webworld::server::Site;

    const FORD: &str = "UsedCarUR(make='ford', price)";
    const NYTIMES: &str = "www.nytimes.com";
    const KELLYS: &str = "www.kbb.com";
    const NEWSDAY: &str = "www.newsday.com";

    /// An engine whose `host` site carries a mutation schedule switched
    /// on by the returned clock (generation 0 during the build, so maps
    /// record cleanly).
    fn mutating_engine(host: &str, schedule: Vec<Mutation>) -> (Engine, MutationClock) {
        let data = Dataset::generate(5, 400);
        let slot = std::sync::Mutex::new(None);
        let web = standard_web_faulty(data.clone(), LatencyModel::lan(), |h, s| {
            if h == host {
                let (site, clock) = MutatingSite::new(s, schedule.clone());
                *slot.lock().expect("clock slot") = Some(clock);
                Box::new(site) as Box<dyn Site>
            } else {
                s
            }
        });
        let engine = Engine::build_on(web, data, EngineConfig::default()).expect("builds");
        let clock = slot.lock().expect("clock slot").take().expect("host wrapped");
        (engine, clock)
    }

    fn oracle(engine: &Engine, text: &str) -> Relation {
        engine.query_isolated("oracle", text, QueryOptions::default()).expect("oracle").relation
    }

    #[test]
    fn page_drift_refreshes_incrementally_and_fetches_only_the_drifted_site() {
        // Prices on the NYTimes classifieds drift; the ford query's
        // Dealers object is untouched, so the refresh ladder's first
        // rung applies: only the Classifieds object re-evaluates, and
        // the only wire traffic is the sweep's revalidation of the
        // drifted host itself.
        let (engine, clock) = mutating_engine(NYTIMES, vec![Mutation::new("$", "$1")]);
        let before_drift = engine.query("t", FORD, QueryOptions::default()).expect("runs").relation;
        clock.advance();

        let traffic_before = engine.web().stats();
        let report = engine.refresh(Some(NYTIMES), DriftOrigin::Maintenance, None, None);
        let traffic_after = engine.web().stats();

        assert!(report.sweep.changed > 0, "the price rewrite must be detected: {report:?}");
        assert_eq!(report.delta_refreshed, 1, "one view, delta-refreshed: {report:?}");
        let stats = engine.stats();
        assert_eq!(stats.view_invalidated, 1, "{stats:?}");
        assert_eq!(stats.delta_refresh, 1, "{stats:?}");
        assert_eq!(stats.stale_served, 0, "{stats:?}");

        // Counter-verified selectivity: undrifted hosts saw zero new
        // requests; the drifted host saw exactly the revalidation.
        for (host, after) in &traffic_after {
            let before = traffic_before.get(host).map_or(0, |s| s.requests);
            if host == NYTIMES {
                assert_eq!(
                    after.requests,
                    before + report.sweep.checked as u64,
                    "drifted host: sweep revalidation only"
                );
            } else {
                assert_eq!(after.requests, before, "undrifted host {host} was fetched");
            }
        }

        // The refreshed cache equals a cold isolated re-run, and keeps
        // serving hits without further traffic.
        let expected = oracle(&engine, FORD);
        assert_ne!(before_drift, expected, "the mutation must be answer-visible");
        let wire = engine.web().total_stats().requests;
        let served = engine.query("t2", FORD, QueryOptions::default()).expect("runs").relation;
        assert_eq!(served, expected, "maintained view diverged from a cold re-run");
        assert_eq!(engine.web().total_stats().requests, wire, "a refreshed view re-fetched");
        assert_eq!(engine.stats().stale_served, 0);
    }

    #[test]
    fn drift_invalidates_exactly_the_dependent_views() {
        // Blue-book prices drift: the jaguar view (reads Kelly's) must
        // evict; the ford view (classifieds + dealers only) must keep
        // serving untouched.
        let (engine, clock) =
            mutating_engine(KELLYS, vec![Mutation::new("$", "$1").on_path("/cgi-bin/bb")]);
        engine.query("t", JAGUAR, QueryOptions::default()).expect("jaguar");
        engine.query("t", FORD, QueryOptions::default()).expect("ford");
        clock.advance();

        let report = engine.refresh(Some(KELLYS), DriftOrigin::Maintenance, None, None);
        assert!(report.sweep.changed > 0, "{report:?}");
        let stats = engine.stats();
        assert_eq!(stats.view_invalidated, 1, "only the jaguar view depends on Kelly's: {stats:?}");
        // Every jaguar object carries a BlueBookPrice alternative, so
        // the whole plan is affected — no strict subset, rung 2.
        assert_eq!(stats.delta_refresh, 0, "{stats:?}");
        assert!(stats.cold_refresh >= 1, "{stats:?}");

        // The untouched ford view still serves from cache...
        let wire = engine.web().total_stats().requests;
        engine.query("t2", FORD, QueryOptions::default()).expect("ford again");
        assert_eq!(engine.web().total_stats().requests, wire, "the stable view re-fetched");
        // ...and the refreshed jaguar view equals a cold re-run.
        let served = engine.query("t2", JAGUAR, QueryOptions::default()).expect("runs").relation;
        assert_eq!(served, oracle(&engine, JAGUAR), "refreshed view diverged");
        assert_eq!(engine.stats().stale_served, 0);
    }

    #[test]
    fn quarantine_evicts_dependent_cached_answers() {
        // Regression: a Quarantined event (ManualIntervention drift)
        // used to leave cached answers depending on the host serveable.
        // Publishing the event must evict them before `publish` returns.
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        engine.query("t", FORD, QueryOptions::default()).expect("ford");
        assert_eq!(engine.stats().result_misses, 1);

        engine.drift_bus().publish(DriftEvent {
            host: NEWSDAY.to_string(),
            kind: DriftKind::Quarantined,
            origin: DriftOrigin::Manual,
            requests: Vec::new(),
            node: None,
        });
        let stats = engine.stats();
        assert_eq!(stats.view_invalidated, 1, "the ford view reads newsday: {stats:?}");

        // The next identical query must recompute (miss), not serve the
        // quarantined answer — and its re-publish self-heals the view.
        engine.query("t2", FORD, QueryOptions::default()).expect("recompute");
        assert_eq!(engine.stats().result_misses, 2, "quarantined answer was served");
        let wire = engine.web().total_stats().requests;
        engine.query("t3", FORD, QueryOptions::default()).expect("republished");
        assert_eq!(engine.web().total_stats().requests, wire);
        let stats = engine.stats();
        assert!(stats.result_hits >= 1, "re-published view must serve again: {stats:?}");
        assert_eq!(stats.stale_served, 0, "{stats:?}");
    }

    #[test]
    fn structural_drift_quarantines_during_refresh_and_answers_match_cold_runs() {
        // Newsday renames its mandatory `make` field — manual-
        // intervention drift. The refresh detects the changed form
        // page, the rebuild quarantines the node, and whatever the
        // engine serves afterwards equals a cold isolated re-run (both
        // lose the newsday branch; neither serves the stale answer).
        let (engine, clock) = mutating_engine(
            NEWSDAY,
            vec![Mutation::new("name=make>", "name=mk2>").on_path("/auto/used")],
        );
        let healthy = engine.query("t", FORD, QueryOptions::default()).expect("runs").relation;
        clock.advance();

        engine.refresh(Some(NEWSDAY), DriftOrigin::Maintenance, None, None);
        let expected = oracle(&engine, FORD);
        assert!(expected.len() < healthy.len(), "the newsday branch must be lost, not faked");
        let served = engine.query("t2", FORD, QueryOptions::default()).expect("runs").relation;
        assert_eq!(served, expected, "post-quarantine answer diverged from a cold re-run");
        assert_eq!(engine.stats().stale_served, 0);
    }

    #[test]
    fn refresh_without_drift_is_a_no_op() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        engine.query("t", FORD, QueryOptions::default()).expect("runs");
        let report = engine.refresh(None, DriftOrigin::Manual, None, None);
        assert_eq!(report.sweep.changed, 0, "{report:?}");
        assert_eq!(report.delta_refreshed + report.cold_refreshed + report.evicted, 0);
        let stats = engine.stats();
        assert_eq!(stats.view_invalidated, 0, "{stats:?}");
        let f = engine.freshness();
        assert_eq!(f.tracked_views, 1);
        assert!(f.drifted.is_empty(), "{f:?}");
    }

    #[test]
    fn invalidations_survive_a_warm_restart() {
        // Crash between a drift invalidation and the re-publish: the
        // journalled invalidation must keep the stale result from
        // resurrecting on restart.
        let path = std::env::temp_dir()
            .join(format!("webbase-engine-wal-{}-drift-invalidate", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let data = Dataset::generate(5, 400);
        let slot = std::sync::Mutex::new(None);
        let schedule = vec![Mutation::new("$", "$1")];
        let web = standard_web_faulty(data.clone(), LatencyModel::lan(), |h, s| {
            if h == NYTIMES {
                let (site, clock) = MutatingSite::new(s, schedule.clone());
                *slot.lock().expect("slot") = Some(clock);
                Box::new(site) as Box<dyn Site>
            } else {
                s
            }
        });
        let config = EngineConfig { journal: Some(path.clone()), ..EngineConfig::default() };
        let first = Engine::build_on(web, data, config).expect("builds");
        let clock = slot.lock().expect("slot").take().expect("wrapped");
        first.query("t", FORD, QueryOptions::default()).expect("journalled run");
        clock.advance();
        // Sweep (which invalidates and journals the invalidation) but
        // do NOT let the refresh ladder re-publish: crash right after.
        sweep(
            first.web(),
            first.store(),
            first.drift_bus(),
            Some(NYTIMES),
            DriftOrigin::Sweep,
            None,
            None,
        );
        assert_eq!(first.stats().view_invalidated, 1);
        drop(first);

        // The restarted engine must not recover the invalidated result.
        let data = Dataset::generate(5, 400);
        let config = EngineConfig { journal: Some(path.clone()), ..EngineConfig::default() };
        let second =
            Engine::build_on(standard_web(data.clone(), LatencyModel::lan()), data, config)
                .expect("rebuilds");
        let stats = second.stats();
        assert_eq!(stats.journal_recovered_results, 0, "stale result resurrected: {stats:?}");
        let _ = std::fs::remove_file(&path);
    }
}
