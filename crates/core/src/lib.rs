//! # webbase
//!
//! The complete **webbase** of *"A Layered Architecture for Querying
//! Dynamic Web Content"* (Davulcu, Freire, Kifer, Ramakrishnan — SIGMOD
//! 1999): a database system whose "physical storage" is the (simulated)
//! Web, reachable only by following links and filling out forms.
//!
//! The three layers of Figure 1, bottom to top:
//!
//! | layer | crate | provides |
//! |---|---|---|
//! | virtual physical schema | `webbase-vps` + `webbase-navigation` + `webbase-flogic` | **navigation independence** — relations invoked through handles whose navigation expressions (compiled Transaction F-logic) drive a browser |
//! | logical schema | `webbase-logical` + `webbase-relational` | **site independence** — algebra over VPS relations with §5 binding propagation and binding-aware join ordering |
//! | external schema | `webbase-ur` | **ad hoc querying** — the structured universal relation: concept hierarchy, compatibility rules, maximal objects |
//!
//! [`Webbase`] assembles all of it; [`Webbase::build_demo`] constructs
//! the paper's used-car webbase (Example 2.1) over the simulated Web:
//!
//! ```no_run
//! use webbase::Webbase;
//!
//! let mut wb = Webbase::build_demo(42, 600, webbase::LatencyModel::lan());
//! let (result, _plan) = wb
//!     .query(
//!         "UsedCarUR(make='jaguar', model, year >= 1993, price, bbprice, \
//!          safety='good', condition='good') WHERE price < bbprice",
//!     )
//!     .expect("the §1 query runs");
//! println!("{result}");
//! ```

pub mod corpus;
pub mod engine;
pub mod layers;
pub mod server;
pub mod timing;
pub mod webbase;

pub use crate::corpus::{Corpus, CorpusSite, RecordedStack};
pub use crate::engine::{
    AdmissionConfig, Engine, EngineConfig, EngineError, EngineStats, FreshnessReport, Lifecycle,
    PlanSemantics, QueryFailure, QueryOptions, QueryOutcome, RefreshReport,
};
pub use crate::server::{serve_channel, serve_connection, ServerConfig, SessionEnd, MAX_LINE};
pub use crate::webbase::{check_stack, BuildReport, Webbase, WebbaseError};
pub use timing::{
    merged_degradation, merged_metrics, merged_repairs, parallel_timing, serial_timing, SiteTiming,
    TimingComparison,
};
pub use webbase_logical::{
    Metric, MetricsRegistry, MetricsSnapshot, Obs, QueryObservation, QueryTrace, Span, SpanKind,
    TraceSink, METRICS,
};
pub use webbase_navigation::{CancelToken, ResumeToken};
pub use webbase_relational::Relation;
pub use webbase_ur::{UrPlan, UrQuery};
pub use webbase_webcheck::{
    check_cross_layer, check_manifest, check_map, check_site, reported_codes, Diagnostic,
    ManifestCheck, Report, Severity,
};
pub use webbase_webworld::prelude::LatencyModel;
