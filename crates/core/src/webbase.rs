//! The assembled webbase.

use std::sync::Arc;
use webbase_logical::{paper_schema, LogicalLayer, Obs, QueryObservation};
use webbase_navigation::map::NavigationMap;
use webbase_navigation::recorder::{MapStats, RecordError};
use webbase_relational::Relation;
use webbase_ur::compat::example62_rules;
use webbase_ur::hierarchy::figure5;
use webbase_ur::plan::{UrError, UrPlan, UrPlanner};
use webbase_ur::query::parse_query;
use webbase_vps::VpsCatalog;
use webbase_webworld::prelude::*;

/// What building a webbase produced: per-site maps and their §7
/// automation statistics.
#[derive(Debug, Clone)]
pub struct BuildReport {
    pub sites: Vec<(String, MapStats)>,
}

impl BuildReport {
    /// Render the §7 map-builder statistics table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Map builder statistics (objects / attributes / manual facts / manual % / auto-standardised)\n",
        );
        for (site, s) in &self.sites {
            out.push_str(&format!(
                "  {site:<24} {:>4} objects  {:>5} attrs  {:>3} manual  {:>5.1}%  {:>2} auto-std\n",
                s.objects,
                s.attributes,
                s.manual_facts,
                100.0 * s.manual_ratio(),
                s.auto_standardized
            ));
        }
        out
    }
}

/// Top-level errors.
#[derive(Debug)]
pub enum WebbaseError {
    Record(String, RecordError),
    Query(webbase_ur::query::QueryParseError),
    Plan(UrError),
    /// A §7-style SELECT failed to parse or evaluate.
    Select(String),
    /// Pre-flight static analysis found E-level defects in the maps
    /// being loaded; the report carries every finding.
    Check(webbase_webcheck::Report),
    /// The write-ahead journal could not be opened or read. (A *torn*
    /// journal is not an error — recovery drops the torn records and
    /// counts them — this is the file itself being unreachable.)
    Journal(std::io::Error),
}

impl std::fmt::Display for WebbaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WebbaseError::Record(site, e) => write!(f, "recording {site}: {e}"),
            WebbaseError::Query(e) => write!(f, "{e}"),
            WebbaseError::Plan(e) => write!(f, "{e}"),
            WebbaseError::Select(m) => write!(f, "{m}"),
            WebbaseError::Check(r) => {
                write!(f, "pre-flight check rejected the maps:\n{}", r.render())
            }
            WebbaseError::Journal(e) => write!(f, "journal: {e}"),
        }
    }
}

impl std::error::Error for WebbaseError {}

/// The assembled three-layer webbase over a simulated Web.
pub struct Webbase {
    pub web: SyntheticWeb,
    pub data: Arc<Dataset>,
    /// The recorded navigation maps, by host.
    pub maps: Vec<NavigationMap>,
    pub layer: LogicalLayer,
    pub planner: UrPlanner,
    pub report: BuildReport,
}

impl Webbase {
    /// Build the paper's used-car webbase (Example 2.1): generate the
    /// synthetic market, stand up the thirteen sites, replay every
    /// designer session, derive handles, and wire the three layers.
    pub fn build_demo(seed: u64, n_ads: usize, latency: LatencyModel) -> Webbase {
        let data = Dataset::generate(seed, n_ads);
        let web = standard_web(data.clone(), latency);
        Webbase::build_on(web, data).expect("the standard sessions replay cleanly")
    }

    /// Build over an existing Web (e.g. a versioned one for maintenance
    /// experiments).
    pub fn build_on(web: SyntheticWeb, data: Arc<Dataset>) -> Result<Webbase, WebbaseError> {
        let stack = crate::corpus::Corpus::paper(data.clone()).record_stack(&web)?;
        Ok(Webbase {
            web,
            data,
            maps: stack.maps,
            layer: stack.layer,
            planner: stack.planner,
            report: stack.report,
        })
    }

    /// Build from previously persisted navigation maps (F-logic fact
    /// text, as produced by `webbase_navigation::persist::render_facts`)
    /// instead of replaying designer sessions — the "designer ships the
    /// maps" deployment mode.
    pub fn build_from_fact_maps(
        web: SyntheticWeb,
        data: Arc<Dataset>,
        fact_maps: &[String],
    ) -> Result<Webbase, WebbaseError> {
        let mut catalog = VpsCatalog::new();
        let mut maps = Vec::new();
        let mut stats = Vec::new();
        let mut preflight = webbase_webcheck::Report::new();
        for text in fact_maps {
            let map = webbase_navigation::persist::parse_map(text)
                .map_err(|e| WebbaseError::Select(format!("loading map: {e}")))?;
            preflight.merge(webbase_webcheck::check_site(&map));
            stats.push((
                map.site.clone(),
                MapStats {
                    objects: map.object_count(),
                    attributes: map.attribute_count(),
                    // Unknown after the fact; recorded at mapping time.
                    ..MapStats::default()
                },
            ));
            maps.push(map);
        }
        // Shipped maps are untrusted input: the deployment path rejects
        // anything the pre-flight analysis flags at E level *before*
        // handle derivation and navigator construction ever see the map
        // (a recorded session, by contrast, is checked but always loaded
        // — see `VpsCatalog::add_map`).
        if preflight.has_errors() {
            return Err(WebbaseError::Check(preflight));
        }
        for map in &maps {
            catalog.add_map(web.clone(), map.clone());
        }
        let layer = LogicalLayer::new(catalog, paper_schema());
        let planner = UrPlanner::new(figure5(), example62_rules());
        Ok(Webbase { web, data, maps, layer, planner, report: BuildReport { sites: stats } })
    }

    /// Serialise every recorded map as F-logic fact text (the input to
    /// [`Webbase::build_from_fact_maps`]).
    pub fn export_fact_maps(&self) -> Vec<String> {
        self.maps.iter().map(webbase_navigation::persist::render_facts).collect()
    }

    /// Run the full three-pass static analysis over the assembled
    /// webbase: every map is linted and its compiled program checked
    /// (webcheck passes 1–2), then the logical schema, VPS catalog, and
    /// UR planner are checked against each other (pass 3). Pure — no
    /// navigation, no fetches; safe to run on every load.
    pub fn check(&self) -> webbase_webcheck::Report {
        check_stack(&self.maps, &self.layer, &self.planner)
    }

    /// Parse and execute a structured-UR query.
    pub fn query(&mut self, text: &str) -> Result<(Relation, UrPlan), WebbaseError> {
        let q = parse_query(text).map_err(WebbaseError::Query)?;
        self.planner.execute(&q, &mut self.layer).map_err(WebbaseError::Plan)
    }

    /// Parse and execute a structured-UR query with full observability:
    /// a fresh trace sink and metrics registry are attached for the
    /// duration of the execution and detached afterwards, so the
    /// returned [`QueryObservation`] describes exactly this query —
    /// every plan step, rewrite, handle invocation, navigation step,
    /// fetch disposition, and repair, stamped with the simulated clock.
    /// Per seed the rendered trace is byte-identical run to run.
    pub fn query_traced(
        &mut self,
        text: &str,
    ) -> Result<(Relation, UrPlan, QueryObservation), WebbaseError> {
        let q = parse_query(text).map_err(WebbaseError::Query)?;
        let obs = Obs::full();
        self.layer.vps.set_obs(obs.clone());
        let out = self.planner.execute(&q, &mut self.layer);
        let observation = QueryObservation {
            trace: obs.sink.finish(),
            metrics: obs.metrics.as_ref().map(|m| m.snapshot()).unwrap_or_default(),
        };
        self.layer.vps.set_obs(Obs::none());
        let (rel, plan) = out.map_err(WebbaseError::Plan)?;
        Ok((rel, plan, observation))
    }

    /// Parse and execute a structured-UR query under a resource budget.
    /// Exhaustion yields the sound partial result; the returned plan then
    /// carries the spend snapshot and a resume token (see
    /// [`Webbase::resume`]).
    pub fn query_with_budget(
        &mut self,
        text: &str,
        budget: webbase_logical::QueryBudget,
    ) -> Result<(Relation, UrPlan), WebbaseError> {
        let q = parse_query(text).map_err(WebbaseError::Query)?.with_budget(budget);
        self.planner.execute(&q, &mut self.layer).map_err(WebbaseError::Plan)
    }

    /// Re-run a query from an earlier run's resume token: the token's
    /// journal is preloaded into the page caches (those pages are never
    /// re-fetched) and a fresh budget — the token's own, unless the query
    /// text is paired with a new one via [`Webbase::query_with_budget`]'s
    /// semantics — covers the unfinished tail.
    pub fn resume(
        &mut self,
        text: &str,
        token: &webbase_logical::ResumeToken,
    ) -> Result<(Relation, UrPlan), WebbaseError> {
        let q = parse_query(text).map_err(WebbaseError::Query)?;
        self.planner.execute_with(&q, &mut self.layer, Some(token)).map_err(WebbaseError::Plan)
    }

    /// Plan a query without executing it (for EXPLAIN-style output).
    pub fn explain(&self, text: &str) -> Result<UrPlan, WebbaseError> {
        let q = parse_query(text).map_err(WebbaseError::Query)?;
        self.planner.plan(&q, &self.layer).map_err(WebbaseError::Plan)
    }

    /// The map recorded for `host`, if any.
    pub fn map_for(&self, host: &str) -> Option<&NavigationMap> {
        self.maps.iter().find(|m| m.site == host)
    }

    /// The UR's attribute list (the user's attribute picker).
    pub fn ur_attributes(&self) -> Vec<String> {
        self.planner.ur_attributes(&self.layer)
    }

    /// Run a §7-style `SELECT … WHERE …` query against one relation —
    /// a *logical* relation (site-independent) or, failing that, a VPS
    /// relation (one site's handle). This is the query form the paper's
    /// timing table uses.
    pub fn select(&mut self, relation: &str, sql: &str) -> Result<Relation, WebbaseError> {
        use webbase_relational::eval::{AccessSpec, Evaluator, RelationProvider};
        let q = webbase_relational::select::parse_select(sql)
            .map_err(|e| WebbaseError::Select(e.to_string()))?;
        let expr = q.over(relation);
        let result = if self.layer.relation(relation).is_some() {
            Evaluator::new(&mut self.layer).eval(&expr, &AccessSpec::new())
        } else if self.layer.vps.schema(relation).is_some() {
            Evaluator::new(&mut self.layer.vps).eval(&expr, &AccessSpec::new())
        } else {
            return Err(WebbaseError::Select(format!("unknown relation {relation}")));
        };
        result.map_err(|e| WebbaseError::Select(e.to_string()))
    }
}

/// The three-pass analysis over an arbitrary layered stack — any
/// domain's maps, logical layer, and planner, not only the built-in
/// used-car webbase ([`Webbase::check`] delegates here). The VPS
/// catalog and its sites are read out of `layer.vps`.
pub fn check_stack(
    maps: &[NavigationMap],
    layer: &LogicalLayer,
    planner: &UrPlanner,
) -> webbase_webcheck::Report {
    use webbase_relational::eval::RelationProvider;
    use webbase_webcheck::{CompatRuleSpec, CrossLayerInput, HandleSpec, LogicalSpec, VpsRelSpec};
    let mut report = webbase_webcheck::Report::new();
    for map in maps {
        report.merge(webbase_webcheck::check_site(map));
    }
    let vps = &layer.vps;
    let attrs_of = |schema: Option<webbase_relational::Schema>| -> Vec<String> {
        schema
            .map(|s| s.attrs().iter().map(|a| a.as_str().to_string()).collect())
            .unwrap_or_default()
    };
    let vps_specs: Vec<VpsRelSpec> = vps
        .relations()
        .map(|name| VpsRelSpec {
            name: name.to_string(),
            site: vps.navigator(name).map(|n| n.map.site.clone()).unwrap_or_default(),
            attrs: attrs_of(vps.schema(name)),
            handles: vps
                .handles(name)
                .iter()
                .map(|h| HandleSpec {
                    mandatory: h.mandatory.iter().cloned().collect(),
                    selection: h.selection.iter().cloned().collect(),
                })
                .collect(),
        })
        .collect();
    let logical: Vec<LogicalSpec> = layer
        .relations()
        .iter()
        .map(|r| LogicalSpec {
            name: r.name.clone(),
            attrs: attrs_of(layer.schema(&r.name)),
            bases: r.def.base_relations().iter().map(ToString::to_string).collect(),
        })
        .collect();
    let concepts = planner.hierarchy.alternatives().map(|a| a.name.clone()).collect();
    let compat = planner
        .rules
        .rules
        .iter()
        .map(|r| match r {
            webbase_ur::compat::CompatRule::Requires { premise, then } => {
                CompatRuleSpec::Requires { premise: premise.clone(), then: then.clone() }
            }
            webbase_ur::compat::CompatRule::Excludes { premise, then_not } => {
                CompatRuleSpec::Excludes { premise: premise.clone(), then_not: then_not.clone() }
            }
        })
        .collect();
    report.merge(webbase_webcheck::check_cross_layer(&CrossLayerInput {
        logical,
        vps: vps_specs,
        concepts,
        compat,
    }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Webbase {
        Webbase::build_demo(5, 600, LatencyModel::lan())
    }

    #[test]
    fn builds_with_all_sites_mapped() {
        let wb = demo();
        assert_eq!(wb.maps.len(), 13);
        assert_eq!(wb.report.sites.len(), 13);
        let txt = wb.report.render();
        assert!(txt.contains("www.newsday.com"));
        // UR attribute picker covers the domain vocabulary.
        let attrs = wb.ur_attributes();
        assert!(attrs.len() >= 12, "{attrs:?}");
    }

    #[test]
    fn the_paper_query_runs() {
        let mut wb = demo();
        let (result, plan) = wb
            .query(
                "UsedCarUR(make='jaguar', model, year >= 1993, price, bbprice, \
                 safety='good', condition='good') WHERE price < bbprice",
            )
            .expect("query runs");
        assert!(!plan.objects.is_empty());
        // Result sanity: every row is a 1993+ jaguar priced under book.
        let year = result.schema().index_of(&"year".into()).expect("year");
        let price = result.schema().index_of(&"price".into()).expect("price");
        let bb = result.schema().index_of(&"bbprice".into()).expect("bbprice");
        for t in result.tuples() {
            assert!(t.get(year).as_int().expect("year int") >= 1993);
            assert!(t.get(price).as_int().expect("price") < t.get(bb).as_int().expect("bb"));
        }
    }

    #[test]
    fn explain_produces_plan_without_fetches() {
        let wb = demo();
        let before = wb.web.total_stats().requests;
        let plan = wb
            .explain("UsedCarUR(make='ford', price, rate, zip='10001', duration=36)")
            .expect("plans");
        assert!(!plan.objects.is_empty());
        // Planning itself must not navigate (only recording did).
        assert_eq!(wb.web.total_stats().requests, before);
    }

    #[test]
    fn query_errors_are_reported() {
        let mut wb = demo();
        assert!(matches!(wb.query("Used CarUR("), Err(WebbaseError::Query(_))));
        assert!(matches!(
            wb.query("UsedCarUR(make='ford', bbprice)"),
            Err(WebbaseError::Plan(UrError::InsufficientBindings(_)))
        ));
    }

    #[test]
    fn budgeted_query_resumes_to_the_full_answer_without_refetches() {
        use webbase_logical::QueryBudget;
        let q = "UsedCarUR(make='ford', price)";
        let mut unbounded = demo();
        let before = unbounded.web.total_stats().requests;
        let (full, _) = unbounded.query(q).expect("runs");
        let full_requests = unbounded.web.total_stats().requests - before;
        assert!(!full.is_empty());

        let mut wb = demo();
        let (mut result, plan) =
            wb.query_with_budget(q, QueryBudget::unlimited().with_fetch_quota(10)).expect("runs");
        let mut token = plan.resume;
        assert!(token.is_some(), "a quota of 10 cannot finish the ford query");
        let mut journal_len = 0;
        let mut rounds = 0;
        while let Some(t) = token {
            assert!(t.journal.len() > journal_len, "every round must journal new pages");
            journal_len = t.journal.len();
            rounds += 1;
            assert!(rounds < 100, "resume loop failed to converge");
            // Fresh webbase per round: only the token carries state over.
            let mut next = demo();
            let before = next.web.total_stats().requests;
            let (r, p) = next.resume(q, &t).expect("resumes");
            let spent = (next.web.total_stats().requests - before) as usize;
            assert!(
                spent + journal_len <= full_requests as usize,
                "a resumed run re-fetched journalled pages ({spent} new + {journal_len} journalled > {full_requests} total)"
            );
            result = r;
            token = p.resume;
        }
        assert_eq!(result, full, "partial runs resumed to exactly the unbounded answer");
    }

    #[test]
    fn preflight_check_is_clean_on_the_demo() {
        let wb = demo();
        let report = wb.check();
        assert!(report.is_clean(), "unexpected findings:\n{}", report.render());
    }

    #[test]
    fn fact_map_loading_rejects_broken_maps() {
        use webbase_navigation::map::NodeKind;
        let original = demo();
        let mut exported = original.export_fact_maps();
        // Corrupt one shipped map: sever every edge into its data nodes,
        // leaving registered relations unreachable (E101).
        let idx = original
            .maps
            .iter()
            .position(|m| m.site == "www.newsday.com")
            .expect("newsday is mapped");
        let mut broken = original.maps[idx].clone();
        let data_nodes: Vec<usize> = broken
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Data(_)))
            .map(|(i, _)| i)
            .collect();
        broken.edges.retain(|e| !data_nodes.contains(&e.to));
        exported[idx] = webbase_navigation::persist::render_facts(&broken);
        let Err(err) =
            Webbase::build_from_fact_maps(original.web.clone(), original.data.clone(), &exported)
        else {
            panic!("an E-level map must be rejected at load time");
        };
        match err {
            WebbaseError::Check(report) => {
                assert!(report.has_errors());
                assert!(!report.with_code("E101").is_empty(), "{}", report.render());
            }
            other => panic!("expected Check, got {other}"),
        }
    }

    #[test]
    fn rebuild_from_exported_fact_maps() {
        let mut original = demo();
        let exported = original.export_fact_maps();
        assert_eq!(exported.len(), 13);
        let mut reloaded =
            Webbase::build_from_fact_maps(original.web.clone(), original.data.clone(), &exported)
                .expect("maps reload");
        let q = "UsedCarUR(make='honda', model='civic', year, price)";
        let (a, _) = original.query(q).expect("original answers");
        let (b, _) = reloaded.query(q).expect("reloaded answers");
        assert_eq!(a, b, "fact-map round trip changed the answers");
    }

    #[test]
    fn select_queries_logical_and_vps_relations() {
        let mut wb = demo();
        // Logical relation: site-independent.
        let logical = wb
            .select(
                "classifieds",
                "SELECT make, model, year, price WHERE make=ford AND model=escort",
            )
            .expect("logical select");
        assert!(logical
            .tuples()
            .iter()
            .all(|t| t.get(0) == &webbase_relational::Value::str("ford")));
        // VPS relation: one site.
        let vps = wb
            .select("newsday", "SELECT make, model, price WHERE make=ford AND model=escort")
            .expect("vps select");
        assert!(vps.len() <= logical.len());
        // Unknown relation reports cleanly.
        assert!(matches!(wb.select("nope", "SELECT a"), Err(WebbaseError::Select(_))));
        // Parse errors report cleanly.
        assert!(matches!(wb.select("newsday", "SELEKT a"), Err(WebbaseError::Select(_))));
    }

    #[test]
    fn map_lookup() {
        let wb = demo();
        assert!(wb.map_for("www.kbb.com").is_some());
        assert!(wb.map_for("www.nope.com").is_none());
    }
}
