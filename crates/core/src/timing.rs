//! The §7 timing experiments.
//!
//! "To give an idea of the complexity of the sites and query execution
//! times, below we show the number of pages navigated and (some of the
//! best) evaluation times for the query SELECT make,model,year,price
//! WHERE make=ford AND model=escort over 10 car-related sites."
//!
//! [`serial_timing`] regenerates that table over the simulated sites:
//! per site, the pages navigated, the interpreter CPU time, and the
//! elapsed time (CPU + the simulated 1999 network). [`parallel_timing`]
//! runs the same per-site queries on threads — the experiment behind the
//! paper's conclusion that "parallelization of query evaluation is
//! crucial for obtaining acceptable response times".

use crate::webbase::Webbase;
use std::sync::Arc;
use std::time::Duration;
use webbase_navigation::executor::SiteNavigator;
use webbase_navigation::map::NavigationMap;
use webbase_navigation::{
    BudgetSnapshot, BudgetTracker, DegradationReport, MetricsRegistry, MetricsSnapshot, Obs,
    QueryBudget, RepairReport,
};
use webbase_relational::Value;
use webbase_webworld::prelude::*;

/// One row of the timing table.
#[derive(Debug, Clone)]
pub struct SiteTiming {
    pub site: String,
    pub relation: String,
    pub pages: u32,
    pub tuples: usize,
    pub cpu: Duration,
    /// cpu + simulated network: the "elapsed time" column.
    pub elapsed: Duration,
    /// What this site's run endured (retries, timeouts, breaker state).
    /// Clean on a healthy web.
    pub degradation: DegradationReport,
    /// What self-healing did during this site's run. Clean on an
    /// undrifted web.
    pub repairs: RepairReport,
    /// This run's counters and fetch-latency histogram (each navigator
    /// carries its own registry, so rows merge without double counting).
    pub metrics: MetricsSnapshot,
}

/// Serial vs parallel wall-clock comparison.
#[derive(Debug, Clone)]
pub struct TimingComparison {
    pub serial_wall: Duration,
    pub parallel_wall: Duration,
    pub rows: Vec<SiteTiming>,
}

impl TimingComparison {
    pub fn speedup(&self) -> f64 {
        self.serial_wall.as_secs_f64() / self.parallel_wall.as_secs_f64().max(1e-9)
    }
}

/// The (host, relation) pairs of the §7 table, in the paper's row order.
pub fn timing_relations() -> Vec<(&'static str, &'static str)> {
    vec![
        ("www.autoweb.com", "autoWeb"),
        ("www.wwwheels.com", "wwwheels"),
        ("www.nytimes.com", "nyTimes"),
        ("www.carreviews.com", "carReviews"),
        ("www.nydailynews.com", "nyDaily"),
        ("www.caranddriver.com", "carAndDriver"),
        ("www.autoconnect.com", "autoConnect"),
        ("www.newsday.com", "newsday"),
        ("autos.yahoo.com", "yahooCars"),
        ("www.kbb.com", "kellys"),
    ]
}

/// The query parameters each site receives: `make=ford AND model=escort`
/// (plus the attributes our extended Kelly's insists on).
fn given_for(relation: &str, make: &str, model: &str) -> Vec<(String, Value)> {
    let mut given =
        vec![("make".to_string(), Value::str(make)), ("model".to_string(), Value::str(model))];
    if relation == "kellys" {
        given.push(("condition".to_string(), Value::str("good")));
        given.push(("pricetype".to_string(), Value::str("retail")));
    }
    given
}

/// Run one site's query with a fresh navigator (its own browser cache),
/// so per-site page counts are independent.
fn run_one(
    web: &SyntheticWeb,
    map: &NavigationMap,
    relation: &str,
    make: &str,
    model: &str,
) -> SiteTiming {
    run_one_with(web, map, relation, make, model, None)
}

/// [`run_one`], optionally under a shared query budget. Each navigator
/// is still fresh; only the tracker is shared, which is exactly how the
/// timing experiments observe cross-site quota contention.
fn run_one_with(
    web: &SyntheticWeb,
    map: &NavigationMap,
    relation: &str,
    make: &str,
    model: &str,
    budget: Option<Arc<BudgetTracker>>,
) -> SiteTiming {
    let nav = SiteNavigator::new(web.clone(), map.clone());
    if let Some(b) = budget {
        nav.set_budget(b);
    }
    let registry = Arc::new(MetricsRegistry::new());
    nav.set_obs(Obs::metrics_only(registry.clone()));
    let given = given_for(relation, make, model);
    let (records, stats) = nav
        .run_relation(relation, &given)
        .unwrap_or_else(|e| panic!("timing query on {relation} failed: {e}"));
    SiteTiming {
        site: map.site.clone(),
        relation: relation.to_string(),
        pages: stats.pages_fetched,
        tuples: records.len(),
        cpu: stats.cpu,
        elapsed: stats.cpu + stats.network,
        // The navigator is fresh, so its cumulative reports are exactly
        // this run's.
        degradation: nav.degradation(),
        repairs: nav.repair_report(),
        metrics: registry.snapshot(),
    }
}

/// Fold one per-row report into its merged whole — the shape shared by
/// degradation, repair, and metrics merging (rows come from independent
/// per-site navigators, so the merge is the whole story, serial or
/// parallel).
fn merged<T: Default>(
    rows: &[SiteTiming],
    project: impl Fn(&SiteTiming) -> &T,
    fold: impl Fn(&mut T, &T),
) -> T {
    let mut out = T::default();
    for r in rows {
        fold(&mut out, project(r));
    }
    out
}

/// Merge the per-row degradation reports of a timing run.
pub fn merged_degradation(rows: &[SiteTiming]) -> DegradationReport {
    merged(rows, |r| &r.degradation, DegradationReport::merge)
}

/// Merge the per-row repair reports of a timing run (same shape as
/// [`merged_degradation`]).
pub fn merged_repairs(rows: &[SiteTiming]) -> RepairReport {
    merged(rows, |r| &r.repairs, RepairReport::merge)
}

/// Merge the per-row metrics snapshots of a timing run (same shape as
/// [`merged_degradation`]).
pub fn merged_metrics(rows: &[SiteTiming]) -> MetricsSnapshot {
    merged(rows, |r| &r.metrics, MetricsSnapshot::merge)
}

/// The §7 table: the query against each site in turn. Also returns the
/// serial wall-clock (sum of elapsed).
pub fn serial_timing(wb: &Webbase, make: &str, model: &str) -> Vec<SiteTiming> {
    timing_relations()
        .into_iter()
        .map(|(host, relation)| {
            let map = wb.map_for(host).expect("demo webbase maps every timing site");
            run_one(&wb.web, map, relation, make, model)
        })
        .collect()
}

/// [`serial_timing`] under one shared query budget: every site draws on
/// the same deadline and fetch quotas, so the returned snapshot shows
/// exactly where the budget went (and which sites were denied).
pub fn serial_timing_budgeted(
    wb: &Webbase,
    make: &str,
    model: &str,
    budget: QueryBudget,
) -> (Vec<SiteTiming>, BudgetSnapshot) {
    let tracker = Arc::new(BudgetTracker::new(budget));
    for (host, _) in timing_relations() {
        tracker.register_site(host);
    }
    let rows = timing_relations()
        .into_iter()
        .map(|(host, relation)| {
            let map = wb.map_for(host).expect("demo webbase maps every timing site");
            let row = run_one_with(&wb.web, map, relation, make, model, Some(tracker.clone()));
            tracker.mark_served(host);
            row
        })
        .collect();
    (rows, tracker.snapshot())
}

/// [`parallel_timing`] under one shared query budget. The tracker is the
/// only state the site threads share — quota admission is atomic across
/// them, so the global quota holds even under concurrency.
pub fn parallel_timing_budgeted(
    wb: &Webbase,
    make: &str,
    model: &str,
    budget: QueryBudget,
) -> (Vec<SiteTiming>, BudgetSnapshot) {
    let tracker = Arc::new(BudgetTracker::new(budget));
    let pairs = timing_relations();
    for (host, _) in &pairs {
        tracker.register_site(host);
    }
    let mut rows: Vec<Option<SiteTiming>> = Vec::new();
    rows.resize_with(pairs.len(), || None);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, (host, relation)) in pairs.iter().enumerate() {
            let map = wb.map_for(host).expect("mapped").clone();
            let web = wb.web.clone();
            let tracker = tracker.clone();
            handles.push((
                i,
                scope.spawn(move |_| {
                    let row =
                        run_one_with(&web, &map, relation, make, model, Some(tracker.clone()));
                    tracker.mark_served(host);
                    row
                }),
            ));
        }
        for (i, h) in handles {
            rows[i] = Some(h.join().expect("site query thread panicked"));
        }
    })
    .expect("crossbeam scope");
    (rows.into_iter().map(|r| r.expect("every slot filled")).collect(), tracker.snapshot())
}

/// The same queries, one thread per site (crossbeam scoped threads —
/// each thread compiles its own navigator; the simulated Web is shared).
pub fn parallel_timing(wb: &Webbase, make: &str, model: &str) -> Vec<SiteTiming> {
    let pairs = timing_relations();
    let mut rows: Vec<Option<SiteTiming>> = Vec::new();
    rows.resize_with(pairs.len(), || None);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, (host, relation)) in pairs.iter().enumerate() {
            let map = wb.map_for(host).expect("mapped").clone();
            let web = wb.web.clone();
            handles.push((i, scope.spawn(move |_| run_one(&web, &map, relation, make, model))));
        }
        for (i, h) in handles {
            rows[i] = Some(h.join().expect("site query thread panicked"));
        }
    })
    .expect("crossbeam scope");
    rows.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Run both and compare wall-clocks. The *simulated* wall-clock of the
/// serial run is the sum of per-site elapsed; of the parallel run, the
/// maximum (sites proceed concurrently).
pub fn compare(wb: &Webbase, make: &str, model: &str) -> TimingComparison {
    let rows = serial_timing(wb, make, model);
    let serial_wall: Duration = rows.iter().map(|r| r.elapsed).sum();
    let parallel_rows = parallel_timing(wb, make, model);
    let parallel_wall: Duration = parallel_rows.iter().map(|r| r.elapsed).max().unwrap_or_default();
    TimingComparison { serial_wall, parallel_wall, rows }
}

/// Render the §7 table.
pub fn render_table(rows: &[SiteTiming]) -> String {
    let mut out =
        String::from("Site                     # of pages   tuples   cpu (ms)   elapsed (ms)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:>10} {:>8} {:>10.1} {:>14.1}\n",
            r.site,
            r.pages,
            r.tuples,
            r.cpu.as_secs_f64() * 1e3,
            r.elapsed.as_secs_f64() * 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Webbase {
        Webbase::build_demo(5, 600, LatencyModel::dialup_1999())
    }

    #[test]
    fn timing_table_shape() {
        let wb = demo();
        let rows = serial_timing(&wb, "ford", "escort");
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.pages > 0, "{}: no pages", r.site);
            assert!(r.elapsed > r.cpu, "{}: elapsed includes network", r.site);
        }
        // The paper's shape: WWWheels (huge slice, tiny pages, make-only
        // form) navigates the most pages; single-quote sites the least.
        let wwwheels = rows.iter().find(|r| r.site == "www.wwwheels.com").expect("row");
        for other in &rows {
            if other.site != wwwheels.site {
                assert!(
                    wwwheels.pages >= other.pages,
                    "wwwheels should dominate: {} vs {} ({})",
                    wwwheels.pages,
                    other.pages,
                    other.site
                );
            }
        }
        let txt = render_table(&rows);
        assert!(txt.lines().count() == 11);
        // A healthy web degrades nothing.
        let merged = merged_degradation(&rows);
        assert!(merged.is_clean(), "{}", merged.render());
    }

    #[test]
    fn parallel_matches_serial_results() {
        let wb = demo();
        let serial = serial_timing(&wb, "ford", "escort");
        let parallel = parallel_timing(&wb, "ford", "escort");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.site, p.site);
            assert_eq!(s.tuples, p.tuples, "{}: tuple counts differ", s.site);
            assert_eq!(s.pages, p.pages, "{}: page counts differ", s.site);
        }
    }

    #[test]
    fn fair_share_budget_spreads_pages_across_sites() {
        let wb = demo();
        // 10 sites, quota 20, fair share on: every site's floor of 2 is
        // reserved, so nobody starves.
        let budget = QueryBudget::unlimited().with_fetch_quota(20).with_fair_share(true);
        let (rows, snap) = serial_timing_budgeted(&wb, "ford", "escort", budget);
        assert!(rows.iter().all(|r| r.pages >= 1), "{}", render_table(&rows));
        assert_eq!(snap.fetches, 20, "the whole quota is spent");
        assert!(snap.exhausted.is_some());
        // Same quota without fair share: the sites early in the row
        // order drain it and the tail gets nothing.
        let (rows, snap) = serial_timing_budgeted(
            &wb,
            "ford",
            "escort",
            QueryBudget::unlimited().with_fetch_quota(20),
        );
        assert!(snap.fetches <= 20);
        assert_eq!(
            rows.last().expect("rows").pages,
            0,
            "without fair share the last site must starve:\n{}",
            render_table(&rows)
        );
    }

    #[test]
    fn parallel_budget_is_shared_across_threads() {
        let wb = demo();
        let (rows, snap) = parallel_timing_budgeted(
            &wb,
            "ford",
            "escort",
            QueryBudget::unlimited().with_fetch_quota(15),
        );
        assert!(snap.fetches <= 15, "admission is atomic across site threads");
        let total: u32 = rows.iter().map(|r| r.pages).sum();
        assert!(total <= 15, "page spend bounded by the shared quota, got {total}");
        assert!(snap.exhausted.is_some(), "ten sites cannot fit in 15 fetches");
    }

    #[test]
    fn parallelisation_wins_on_simulated_wall_clock() {
        let wb = demo();
        let cmp = compare(&wb, "ford", "escort");
        assert!(
            cmp.parallel_wall < cmp.serial_wall,
            "parallel {:?} !< serial {:?}",
            cmp.parallel_wall,
            cmp.serial_wall
        );
        // The speedup is bounded by the slowest site (WWWheels dominates
        // — Amdahl), so it is well short of 10×, but must be real.
        assert!(cmp.speedup() > 1.2, "speedup {}", cmp.speedup());
    }
}
