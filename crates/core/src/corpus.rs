//! Corpus registration: the one description of "a webbase's sites and
//! layers" shared by every builder.
//!
//! Historically each stack — the 13-site car demo in
//! [`crate::Webbase::build_on`] / [`crate::Engine::build_on`], the
//! apartment example in `webbase-bench`, and now the generated corpora —
//! hand-rolled the same loop: replay designer sessions, feed maps to a
//! `VpsCatalog`, wrap logical relations, construct a planner. A
//! [`Corpus`] captures the description once; [`Corpus::record_stack`]
//! and [`crate::Engine::build_corpus`] are the two consumers (the
//! single-owner `Webbase` and the shared `Engine` build paths).

use crate::webbase::{BuildReport, WebbaseError};
use std::sync::Arc;
use webbase_logical::{paper_schema, LogicalLayer, LogicalRelation};
use webbase_navigation::gen_sessions;
use webbase_navigation::map::NavigationMap;
use webbase_navigation::recorder::{DesignerAction, MapStats, Recorder};
use webbase_navigation::sessions;
use webbase_relational::prelude::Expr;
use webbase_relational::Standardizer;
use webbase_ur::compat::{example62_rules, CompatRules};
use webbase_ur::hierarchy::{figure5, Alternative, ChoiceGroup, Hierarchy};
use webbase_ur::plan::UrPlanner;
use webbase_vps::VpsCatalog;
use webbase_webworld::data::Dataset;
use webbase_webworld::generate::GenCorpus;
use webbase_webworld::prelude::SyntheticWeb;

/// One site's registration: the designer session to replay and the
/// attribute standardiser the recording uses.
pub struct CorpusSite {
    pub host: String,
    pub session: Vec<DesignerAction>,
    pub standardizer: Standardizer,
}

/// A complete webbase description: sites plus the logical and UR
/// layers over them.
pub struct Corpus {
    /// The underlying dataset, when the corpus has one (the car demo
    /// does; generated corpora carry their data inside the site specs).
    pub data: Option<Arc<Dataset>>,
    pub sites: Vec<CorpusSite>,
    pub relations: Vec<LogicalRelation>,
    pub hierarchy: Hierarchy,
    pub rules: CompatRules,
}

/// What [`Corpus::record_stack`] produces: recorded maps and the
/// assembled layers, ready for queries or analysis.
pub struct RecordedStack {
    pub maps: Vec<NavigationMap>,
    pub report: BuildReport,
    pub layer: LogicalLayer,
    pub planner: UrPlanner,
}

impl Corpus {
    /// The paper's used-car webbase: the thirteen designer sessions,
    /// the Table 2 logical schema, and the Figure 5 hierarchy under the
    /// Example 6.2 compatibility rules.
    pub fn paper(data: Arc<Dataset>) -> Corpus {
        let sites = sessions::all_sessions(&data)
            .into_iter()
            .map(|(host, session)| CorpusSite {
                host: host.to_string(),
                session,
                standardizer: Standardizer::car_domain(),
            })
            .collect();
        Corpus {
            data: Some(data),
            sites,
            relations: paper_schema(),
            hierarchy: figure5(),
            rules: example62_rules(),
        }
    }

    /// The apartment-domain webbase of `examples/apartment_hunting.rs`:
    /// two rental sites, two logical relations, the two-group AptUR
    /// hierarchy with no compatibility rules.
    pub fn apartments() -> Corpus {
        use webbase_navigation::extractor::{CellParse, ExtractionSpec, FieldSpec};
        let listings_session = vec![
            DesignerAction::Goto("http://www.aptlistings.com/".into()),
            DesignerAction::SubmitForm {
                action: "/cgi-bin/find".into(),
                values: vec![("borough".into(), "brooklyn".into())],
            },
            DesignerAction::MarkDataPage {
                relation: "aptListings".into(),
                spec: ExtractionSpec::Table {
                    fields: vec![
                        FieldSpec::new("Borough", "borough", CellParse::Text),
                        FieldSpec::new("Bedrooms", "bedrooms", CellParse::Number),
                        FieldSpec::new("Rent", "rent", CellParse::Number),
                        FieldSpec::new("Contact", "contact", CellParse::Text),
                    ],
                },
            },
            DesignerAction::FollowLink("More".into()),
        ];
        let guide_session = vec![
            DesignerAction::Goto("http://www.rentguide.com/".into()),
            DesignerAction::SubmitForm {
                action: "/cgi-bin/guide".into(),
                values: vec![("borough".into(), "queens".into()), ("beds".into(), "1".into())],
            },
            DesignerAction::MarkDataPage {
                relation: "rentGuide".into(),
                spec: ExtractionSpec::Table {
                    fields: vec![
                        FieldSpec::new("Borough", "borough", CellParse::Text),
                        FieldSpec::new("Bedrooms", "bedrooms", CellParse::Number),
                        FieldSpec::new("Fair Rent", "fairrent", CellParse::Number),
                    ],
                },
            },
        ];
        let standardizer = || {
            let mut s = Standardizer::new(["borough", "bedrooms", "rent", "contact", "fairrent"]);
            s.map("beds", "bedrooms");
            s
        };
        let sites = vec![
            CorpusSite {
                host: "www.aptlistings.com".into(),
                session: listings_session,
                standardizer: standardizer(),
            },
            CorpusSite {
                host: "www.rentguide.com".into(),
                session: guide_session,
                standardizer: standardizer(),
            },
        ];
        let relations = vec![
            LogicalRelation::new(
                "listings",
                Expr::relation("aptListings").project(["borough", "bedrooms", "rent", "contact"]),
            ),
            LogicalRelation::new(
                "guidelines",
                Expr::relation("rentGuide").project(["borough", "bedrooms", "fairrent"]),
            ),
        ];
        let hierarchy = Hierarchy {
            ur_name: "AptUR".into(),
            groups: vec![
                ChoiceGroup {
                    name: "Listings".into(),
                    alternatives: vec![Alternative::new("Listings", "listings")],
                },
                ChoiceGroup {
                    name: "FairRent".into(),
                    alternatives: vec![Alternative::new("FairRent", "guidelines")],
                },
            ],
        };
        Corpus { data: None, sites, relations, hierarchy, rules: CompatRules::default() }
    }

    /// A generated corpus: one site, logical relation, and UR
    /// alternative per [`webbase_webworld::generate::SiteSpec`]. The
    /// per-site attribute vocabularies are disjoint (index-suffixed),
    /// so every query's minimal covering set is exactly one site — the
    /// hierarchy scales to hundreds of alternatives in one choice
    /// group (see `webbase_ur::maximal::compatible_sets`).
    pub fn generated(gen: &GenCorpus) -> Corpus {
        let mut sites = Vec::new();
        let mut relations = Vec::new();
        let mut alternatives = Vec::new();
        for spec in &gen.specs {
            sites.push(CorpusSite {
                host: spec.host.clone(),
                session: gen_sessions::session(spec),
                standardizer: gen_sessions::standardizer(spec),
            });
            let logical = format!("gensite{}", spec.index);
            relations.push(LogicalRelation::new(
                &logical,
                Expr::relation(&spec.relation).project(spec.attrs()),
            ));
            alternatives.push(Alternative::new(&format!("GenSite{}", spec.index), &logical));
        }
        Corpus {
            data: None,
            sites,
            relations,
            hierarchy: Hierarchy {
                ur_name: "GenUR".into(),
                groups: vec![ChoiceGroup { name: "sources".into(), alternatives }],
            },
            rules: CompatRules::default(),
        }
    }

    /// Replay every site's designer session against `web` and assemble
    /// the three layers — the single-owner build loop shared by
    /// [`crate::Webbase::build_on`], the bench demo stacks, and any
    /// generated corpus.
    pub fn record_stack(&self, web: &SyntheticWeb) -> Result<RecordedStack, WebbaseError> {
        let mut catalog = VpsCatalog::new();
        let mut maps = Vec::new();
        let mut stats: Vec<(String, MapStats)> = Vec::new();
        for site in &self.sites {
            let mut recorder =
                Recorder::with_standardizer(web.clone(), &site.host, site.standardizer.clone());
            for action in &site.session {
                recorder.apply(action).map_err(|e| WebbaseError::Record(site.host.clone(), e))?;
            }
            let (map, s) = recorder.finish();
            stats.push((site.host.clone(), s));
            maps.push(map.clone());
            catalog.add_map(web.clone(), map);
        }
        let layer = LogicalLayer::new(catalog, self.relations.clone());
        let planner = UrPlanner::new(self.hierarchy.clone(), self.rules.clone());
        Ok(RecordedStack { maps, report: BuildReport { sites: stats }, layer, planner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webbase_webworld::prelude::{standard_web, LatencyModel};

    #[test]
    fn paper_corpus_records_thirteen_sites() {
        let data = Dataset::generate(5, 400);
        let web = standard_web(data.clone(), LatencyModel::lan());
        let stack = Corpus::paper(data).record_stack(&web).expect("records");
        assert_eq!(stack.maps.len(), 13);
        assert_eq!(stack.report.sites.len(), 13);
    }

    #[test]
    fn generated_corpus_records_and_plans() {
        use webbase_ur::query::parse_query;
        let gen = GenCorpus::generate(11, 4);
        let web = gen.web(LatencyModel::zero());
        let corpus = Corpus::generated(&gen);
        let mut stack = corpus.record_stack(&web).expect("records");
        assert_eq!(stack.maps.len(), 4);
        for spec in &gen.specs {
            let q = parse_query(&spec.exemplar_query()).expect("query parses");
            let plan = stack.planner.plan(&q, &stack.layer).expect("plans");
            assert_eq!(
                plan.objects.len(),
                1,
                "{}: disjoint attrs must cover via exactly one site",
                spec.host
            );
            let (result, _) = stack.planner.execute(&q, &mut stack.layer).expect("executes");
            let sub = spec.needs_sub().then(|| spec.exemplar_sub().to_string());
            let oracle = spec.oracle(spec.exemplar_cat(), sub.as_deref());
            assert_eq!(result.len(), oracle.len(), "{}: result size != oracle", spec.host);
        }
    }
}
