//! The `webbased` wire protocol: a line-oriented query service over
//! the shared [`Engine`].
//!
//! One connection is one tenant session. Requests are single lines;
//! replies are a status line (`OK …`, `ERR …`, or `DEFER …`),
//! optionally followed by a tab-separated body terminated by `END`.
//! The protocol is deliberately 1999-shaped — telnet-friendly, no
//! framing beyond newlines:
//!
//! ```text
//! TENANT alice          → OK tenant alice
//! TRACE ON              → OK trace on
//! BUDGET 40             → OK budget 40
//! BUDGET NONE           → OK budget none
//! QUERY UsedCarUR(...)  → OK 3 12          (columns, rows)
//!                         make model ...   (tab-separated header)
//!                         jaguar xj6 ...   (tab-separated tuples)
//!                         END
//! EXPLAIN UsedCarUR(..) → OK plan / rendered plan / END
//! STATS                 → OK stats / key value lines / END
//! PING                  → OK pong
//! QUIT                  → OK bye           (connection closes)
//! ```
//!
//! `DEFER <reason>` answers a query the admission scheduler refused
//! this epoch — the tenant's cue to back off and retry, not an error.
//! [`serve_connection`] is generic over `BufRead`/`Write`, so the
//! same loop serves a TCP socket (the `webbased` binary), an
//! in-memory buffer (the tests), or stdio.

use std::io::{self, BufRead, Write};

use crate::engine::{Engine, EngineError, QueryOptions};
use webbase_navigation::QueryBudget;

/// Per-connection defaults (a connection can change all of these with
/// `TENANT` / `TRACE` / `BUDGET` commands).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Tenant name used before any `TENANT` command.
    pub default_tenant: String,
    /// Reset the admission epoch automatically every `n` completed
    /// queries (`None` = only explicit `EPOCH` commands reset it).
    pub epoch_every: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { default_tenant: "anonymous".to_string(), epoch_every: None }
    }
}

struct Session {
    tenant: String,
    trace: bool,
    budget: Option<QueryBudget>,
    served: u64,
}

/// Serve one connection until `QUIT` or EOF. Errors out only on I/O
/// failure — protocol misuse answers `ERR` and keeps the connection.
pub fn serve_connection<R: BufRead, W: Write>(
    engine: &Engine,
    config: &ServerConfig,
    reader: R,
    mut writer: W,
) -> io::Result<()> {
    let mut session =
        Session { tenant: config.default_tenant.clone(), trace: false, budget: None, served: 0 };
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "PING" => writeln!(writer, "OK pong")?,
            "QUIT" => {
                writeln!(writer, "OK bye")?;
                break;
            }
            "TENANT" => {
                if rest.is_empty() {
                    writeln!(writer, "ERR tenant name required")?;
                } else {
                    session.tenant = rest.to_string();
                    writeln!(writer, "OK tenant {}", session.tenant)?;
                }
            }
            "TRACE" => match rest.to_ascii_uppercase().as_str() {
                "ON" => {
                    session.trace = true;
                    writeln!(writer, "OK trace on")?;
                }
                "OFF" => {
                    session.trace = false;
                    writeln!(writer, "OK trace off")?;
                }
                _ => writeln!(writer, "ERR TRACE takes ON or OFF")?,
            },
            "BUDGET" => {
                if rest.eq_ignore_ascii_case("none") {
                    session.budget = None;
                    writeln!(writer, "OK budget none")?;
                } else {
                    match rest.parse::<u64>() {
                        Ok(n) => {
                            session.budget = Some(QueryBudget::unlimited().with_fetch_quota(n));
                            writeln!(writer, "OK budget {n}")?;
                        }
                        Err(_) => writeln!(writer, "ERR BUDGET takes a fetch quota or NONE")?,
                    }
                }
            }
            "EPOCH" => {
                engine.reset_epoch();
                writeln!(writer, "OK epoch")?;
            }
            "QUERY" => {
                if rest.is_empty() {
                    writeln!(writer, "ERR query text required")?;
                    continue;
                }
                let options = QueryOptions { budget: session.budget.clone(), trace: session.trace };
                match engine.query(&session.tenant, rest, options) {
                    Ok(out) => {
                        let rel = &out.relation;
                        let attrs = rel.schema().attrs();
                        writeln!(writer, "OK {} {}", attrs.len(), rel.len())?;
                        let header: Vec<&str> =
                            attrs.iter().map(webbase_relational::Attr::as_str).collect();
                        writeln!(writer, "{}", header.join("\t"))?;
                        for t in rel.tuples() {
                            let row: Vec<String> =
                                (0..attrs.len()).map(|i| t.get(i).to_string()).collect();
                            writeln!(writer, "{}", row.join("\t"))?;
                        }
                        if out.plan.resume.is_some() {
                            writeln!(writer, "PARTIAL budget exhausted")?;
                        }
                        if let Some(obs) = &out.observation {
                            writeln!(writer, "TRACE {} spans", obs.trace.spans.len())?;
                        }
                        writeln!(writer, "END")?;
                        session.served += 1;
                        if let Some(every) = config.epoch_every {
                            if session.served.is_multiple_of(every) {
                                engine.reset_epoch();
                            }
                        }
                    }
                    Err(EngineError::Deferred(denial)) => {
                        writeln!(writer, "DEFER {denial}")?;
                    }
                    Err(e) => writeln!(writer, "ERR {e}")?,
                }
            }
            "EXPLAIN" => match engine.explain(rest) {
                Ok(plan) => {
                    writeln!(writer, "OK plan")?;
                    for l in plan.render().lines() {
                        writeln!(writer, "{l}")?;
                    }
                    writeln!(writer, "END")?;
                }
                Err(e) => writeln!(writer, "ERR {e}")?,
            },
            "STATS" => {
                let s = engine.stats();
                writeln!(writer, "OK stats")?;
                writeln!(writer, "queries\t{}", s.queries)?;
                writeln!(writer, "deferred\t{}", s.deferred)?;
                writeln!(writer, "store_hits\t{}", s.store_hits)?;
                writeln!(writer, "store_misses\t{}", s.store_misses)?;
                writeln!(writer, "store_evictions\t{}", s.store_evictions)?;
                writeln!(writer, "memo_hits\t{}", s.memo_hits)?;
                writeln!(writer, "memo_misses\t{}", s.memo_misses)?;
                writeln!(writer, "memo_len\t{}", s.memo_len)?;
                writeln!(writer, "memo_coalesced\t{}", s.memo_coalesced)?;
                writeln!(writer, "result_hits\t{}", s.result_hits)?;
                writeln!(writer, "result_misses\t{}", s.result_misses)?;
                writeln!(writer, "result_coalesced\t{}", s.result_coalesced)?;
                writeln!(writer, "pool_waits\t{}", s.pool_waits)?;
                writeln!(writer, "END")?;
            }
            _ => writeln!(writer, "ERR unknown command {verb}")?,
        }
        writer.flush()?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webbase_webworld::prelude::LatencyModel;

    fn drive(engine: &Engine, script: &str) -> String {
        let mut out = Vec::new();
        serve_connection(engine, &ServerConfig::default(), script.as_bytes(), &mut out)
            .expect("in-memory serve");
        String::from_utf8(out).expect("utf8 reply")
    }

    #[test]
    fn ping_quit_and_unknown() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(&engine, "PING\nFROB\nQUIT\nPING\n");
        assert_eq!(reply, "OK pong\nERR unknown command FROB\nOK bye\n");
    }

    #[test]
    fn query_streams_header_rows_and_end() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(
            &engine,
            "TENANT alice\nQUERY UsedCarUR(make='honda', model='civic', year, price)\n",
        );
        let mut lines = reply.lines();
        assert_eq!(lines.next(), Some("OK tenant alice"));
        let status = lines.next().expect("status line");
        assert!(status.starts_with("OK "), "{status}");
        let header = lines.next().expect("header");
        assert!(header.split('\t').any(|c| c == "price"), "{header}");
        assert_eq!(reply.lines().last(), Some("END"));
    }

    #[test]
    fn parse_errors_answer_err_and_keep_the_connection() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(&engine, "QUERY Used CarUR(\nPING\n");
        assert!(reply.starts_with("ERR "), "{reply}");
        assert!(reply.ends_with("OK pong\n"), "{reply}");
    }

    #[test]
    fn budget_yields_partial_marker() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(&engine, "BUDGET 2\nQUERY UsedCarUR(make='ford', price)\n");
        assert!(reply.contains("OK budget 2"), "{reply}");
        assert!(reply.contains("PARTIAL budget exhausted"), "{reply}");
    }

    #[test]
    fn trace_reports_span_count_and_stats_report_counters() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(
            &engine,
            "TRACE ON\nQUERY UsedCarUR(make='honda', model='civic', year, price)\nSTATS\nQUIT\n",
        );
        assert!(reply.contains("TRACE "), "{reply}");
        assert!(reply.contains("queries\t1"), "{reply}");
        assert!(reply.contains("OK bye"), "{reply}");
    }
}
