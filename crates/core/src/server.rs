//! The `webbased` wire protocol: a line-oriented query service over
//! the shared [`Engine`].
//!
//! One connection is one tenant session. Requests are single lines;
//! replies are a status line (`OK …`, `ERR <code> …`, or `DEFER …`),
//! optionally followed by a tab-separated body terminated by `END`.
//! The protocol is deliberately 1999-shaped — telnet-friendly, no
//! framing beyond newlines:
//!
//! ```text
//! TENANT alice          → OK tenant alice
//! TRACE ON              → OK trace on
//! BUDGET 40             → OK budget 40
//! BUDGET NONE           → OK budget none
//! QUERY UsedCarUR(...)  → OK 3 12          (columns, rows)
//!                         make model ...   (tab-separated header)
//!                         jaguar xj6 ...   (tab-separated tuples)
//!                         END
//! EXPLAIN UsedCarUR(..) → OK plan / rendered plan / END
//! STATS                 → OK stats / key value lines / END
//! REFRESH [site]        → OK refresh ... (revalidate pages, rebuild views)
//! FRESHNESS             → OK freshness / ledger + recent drift / END
//! PING                  → OK pong
//! DRAIN                 → OK draining 0 in flight   (admissions stop)
//! SHUTDOWN              → OK shutting down          (session ends)
//! QUIT                  → OK bye           (connection closes)
//! ```
//!
//! `DEFER <reason>` answers a query the admission scheduler refused
//! this epoch — the tenant's cue to back off and retry, not an error.
//!
//! Every `ERR` carries a numeric code so clients can react without
//! parsing prose, and *no* protocol error ends the session:
//!
//! | code | meaning                                             |
//! |------|-----------------------------------------------------|
//! | 400  | malformed argument or non-UTF-8 request line        |
//! | 404  | unknown command                                     |
//! | 413  | request line longer than [`MAX_LINE`] bytes         |
//! | 422  | query/plan error (parse failure, unknown relation)  |
//! | 500  | query execution panicked (contained; engine serves on) |
//! | 503  | engine is draining or stopped                       |
//!
//! [`serve_connection`] is generic over `BufRead`/`Write`, so the
//! same loop serves a TCP socket (the `webbased` binary), an
//! in-memory buffer (the tests), or stdio. [`serve_channel`] is the
//! same dispatch fed from a channel of raw lines — the `webbased`
//! daemon's shape, where a reader thread owns the socket and cancels
//! the session token on client disconnect.

use std::io::{self, BufRead, Write};
use std::sync::mpsc::Receiver;

use crate::engine::{Engine, EngineError, QueryOptions};
use webbase_navigation::{BudgetTracker, CancelToken, DriftOrigin, QueryBudget};

/// Longest request line the server accepts (bytes, newline included).
/// Longer lines answer `ERR 413` and are discarded; the session lives.
pub const MAX_LINE: usize = 8192;

/// Per-connection defaults (a connection can change all of these with
/// `TENANT` / `TRACE` / `BUDGET` commands).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Tenant name used before any `TENANT` command.
    pub default_tenant: String,
    /// Reset the admission epoch automatically every `n` completed
    /// queries (`None` = only explicit `EPOCH` commands reset it).
    pub epoch_every: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { default_tenant: "anonymous".to_string(), epoch_every: None }
    }
}

/// Why a serve loop returned. `Shutdown` tells the daemon to drain
/// and exit the *process*, not just this connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client said `QUIT`.
    Quit,
    /// The input ended (socket closed, channel hung up).
    Eof,
    /// The client said `SHUTDOWN`.
    Shutdown,
}

struct Session {
    tenant: String,
    trace: bool,
    budget: Option<QueryBudget>,
    served: u64,
    /// The session's cancel token ([`serve_channel`] arms one; plain
    /// [`serve_connection`] has no way to observe a mid-query
    /// disconnect, so it runs without).
    cancel: Option<CancelToken>,
}

impl Session {
    fn new(config: &ServerConfig, cancel: Option<CancelToken>) -> Session {
        Session {
            tenant: config.default_tenant.clone(),
            trace: false,
            budget: None,
            served: 0,
            cancel,
        }
    }
}

/// Serve one connection until `QUIT`, `SHUTDOWN`, or EOF. Errors out
/// only on I/O failure — protocol misuse answers `ERR <code>` and
/// keeps the connection.
pub fn serve_connection<R: BufRead, W: Write>(
    engine: &Engine,
    config: &ServerConfig,
    mut reader: R,
    mut writer: W,
) -> io::Result<SessionEnd> {
    let mut session = Session::new(config, None);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            writer.flush()?;
            return Ok(SessionEnd::Eof);
        }
        if let Some(end) = handle_line(engine, config, &mut session, &buf, &mut writer)? {
            writer.flush()?;
            return Ok(end);
        }
        writer.flush()?;
    }
}

/// [`serve_connection`]'s dispatch, fed from a channel of raw request
/// lines instead of a `BufRead`. The `webbased` daemon runs this on a
/// worker thread while a reader thread owns the socket: when the
/// client disconnects mid-query, the reader cancels `cancel` and the
/// in-flight query abandons navigation at its next checkpoint.
pub fn serve_channel<W: Write>(
    engine: &Engine,
    config: &ServerConfig,
    lines: &Receiver<Vec<u8>>,
    mut writer: W,
    cancel: &CancelToken,
) -> io::Result<SessionEnd> {
    let mut session = Session::new(config, Some(cancel.clone()));
    loop {
        let Ok(raw) = lines.recv() else {
            writer.flush()?;
            return Ok(SessionEnd::Eof);
        };
        if let Some(end) = handle_line(engine, config, &mut session, &raw, &mut writer)? {
            writer.flush()?;
            return Ok(end);
        }
        writer.flush()?;
    }
}

/// Answer one raw request line. `Some(end)` ends the session.
fn handle_line<W: Write>(
    engine: &Engine,
    config: &ServerConfig,
    session: &mut Session,
    raw: &[u8],
    writer: &mut W,
) -> io::Result<Option<SessionEnd>> {
    if raw.len() > MAX_LINE {
        writeln!(writer, "ERR 413 request line exceeds {MAX_LINE} bytes")?;
        return Ok(None);
    }
    let Ok(text) = std::str::from_utf8(raw) else {
        writeln!(writer, "ERR 400 request line is not valid UTF-8")?;
        return Ok(None);
    };
    let line = text.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "PING" => writeln!(writer, "OK pong")?,
        "QUIT" => {
            writeln!(writer, "OK bye")?;
            return Ok(Some(SessionEnd::Quit));
        }
        "DRAIN" => {
            engine.drain();
            writeln!(writer, "OK draining {} in flight", engine.inflight_queries())?;
        }
        "SHUTDOWN" => {
            engine.shutdown();
            writeln!(writer, "OK shutting down")?;
            return Ok(Some(SessionEnd::Shutdown));
        }
        "TENANT" => {
            if rest.is_empty() {
                writeln!(writer, "ERR 400 tenant name required")?;
            } else {
                session.tenant = rest.to_string();
                writeln!(writer, "OK tenant {}", session.tenant)?;
            }
        }
        "TRACE" => match rest.to_ascii_uppercase().as_str() {
            "ON" => {
                session.trace = true;
                writeln!(writer, "OK trace on")?;
            }
            "OFF" => {
                session.trace = false;
                writeln!(writer, "OK trace off")?;
            }
            _ => writeln!(writer, "ERR 400 TRACE takes ON or OFF")?,
        },
        "BUDGET" => {
            if rest.eq_ignore_ascii_case("none") {
                session.budget = None;
                writeln!(writer, "OK budget none")?;
            } else {
                match rest.parse::<u64>() {
                    Ok(n) => {
                        session.budget = Some(QueryBudget::unlimited().with_fetch_quota(n));
                        writeln!(writer, "OK budget {n}")?;
                    }
                    Err(_) => writeln!(writer, "ERR 400 BUDGET takes a fetch quota or NONE")?,
                }
            }
        }
        "EPOCH" => {
            engine.reset_epoch();
            writeln!(writer, "OK epoch")?;
        }
        "QUERY" => {
            if rest.is_empty() {
                writeln!(writer, "ERR 400 query text required")?;
                return Ok(None);
            }
            let options = QueryOptions {
                budget: session.budget.clone(),
                trace: session.trace,
                cancel: session.cancel.clone(),
                resume: None,
            };
            match engine.query(&session.tenant, rest, options) {
                Ok(out) => {
                    let rel = &out.relation;
                    let attrs = rel.schema().attrs();
                    writeln!(writer, "OK {} {}", attrs.len(), rel.len())?;
                    let header: Vec<&str> =
                        attrs.iter().map(webbase_relational::Attr::as_str).collect();
                    writeln!(writer, "{}", header.join("\t"))?;
                    for t in rel.tuples() {
                        let row: Vec<String> =
                            (0..attrs.len()).map(|i| t.get(i).to_string()).collect();
                        writeln!(writer, "{}", row.join("\t"))?;
                    }
                    if out.plan.resume.is_some() {
                        writeln!(writer, "PARTIAL budget exhausted")?;
                    }
                    if let Some(obs) = &out.observation {
                        writeln!(writer, "TRACE {} spans", obs.trace.spans.len())?;
                    }
                    writeln!(writer, "END")?;
                    session.served += 1;
                    if let Some(every) = config.epoch_every {
                        if session.served.is_multiple_of(every) {
                            engine.reset_epoch();
                        }
                    }
                }
                Err(EngineError::Deferred(denial)) => {
                    writeln!(writer, "DEFER {denial}")?;
                }
                Err(e @ EngineError::Panicked(_)) => writeln!(writer, "ERR 500 {e}")?,
                Err(e @ EngineError::Draining) => writeln!(writer, "ERR 503 {e}")?,
                Err(e) => writeln!(writer, "ERR 422 {e}")?,
            }
        }
        "REFRESH" => {
            // Revalidate cached pages against the live Web (optionally
            // one site) and rebuild whatever drift invalidated. Charged
            // against the session budget like any navigation work, and
            // cancellable on client disconnect.
            let host = (!rest.is_empty()).then_some(rest);
            let tracker = session.budget.clone().map(BudgetTracker::new);
            let report = engine.refresh(
                host,
                DriftOrigin::Manual,
                tracker.as_ref(),
                session.cancel.as_ref(),
            );
            writeln!(
                writer,
                "OK refresh {} checked {} changed {} delta {} cold {} evicted",
                report.sweep.checked,
                report.sweep.changed,
                report.delta_refreshed,
                report.cold_refreshed,
                report.evicted
            )?;
        }
        "FRESHNESS" => {
            let f = engine.freshness();
            writeln!(writer, "OK freshness")?;
            writeln!(writer, "epoch\t{}", f.epoch)?;
            writeln!(writer, "tracked_views\t{}", f.tracked_views)?;
            writeln!(writer, "drifted\t{}", f.drifted.len())?;
            writeln!(writer, "events_published\t{}", f.events_published)?;
            for text in &f.drifted {
                writeln!(writer, "stale\t{text}")?;
            }
            for event in &f.recent {
                writeln!(
                    writer,
                    "event\t{:?}\t{:?}\t{}\t{}",
                    event.kind,
                    event.origin,
                    event.host,
                    event.requests.len()
                )?;
            }
            writeln!(writer, "END")?;
        }
        "EXPLAIN" => match engine.explain_semantics(rest) {
            Ok((plan, semantics)) => {
                writeln!(writer, "OK plan")?;
                for l in plan.render().lines() {
                    writeln!(writer, "{l}")?;
                }
                // The abstract interpreter's verdict: the static
                // fetch-cost interval and the per-host read-set.
                if let Some(semantics) = semantics {
                    for l in semantics.render().lines() {
                        writeln!(writer, "{l}")?;
                    }
                }
                writeln!(writer, "END")?;
            }
            Err(e) => writeln!(writer, "ERR 422 {e}")?,
        },
        "STATS" => {
            // The snapshot reads each counter individually (Relaxed
            // atomics), so a STATS taken while queries run can show a
            // *torn group* — e.g. a query counted but its store hits
            // not yet. Accepted by design: every counter is
            // individually monotone, which is all the harnesses rely
            // on, and a coherent group snapshot would put one lock on
            // the hot path of every counter bump. Pinned by
            // `stats_snapshots_are_fieldwise_monotone` in the chaos
            // battery.
            let s = engine.stats();
            writeln!(writer, "OK stats")?;
            writeln!(writer, "queries\t{}", s.queries)?;
            writeln!(writer, "deferred\t{}", s.deferred)?;
            writeln!(writer, "store_hits\t{}", s.store_hits)?;
            writeln!(writer, "store_misses\t{}", s.store_misses)?;
            writeln!(writer, "store_evictions\t{}", s.store_evictions)?;
            writeln!(writer, "memo_hits\t{}", s.memo_hits)?;
            writeln!(writer, "memo_misses\t{}", s.memo_misses)?;
            writeln!(writer, "memo_len\t{}", s.memo_len)?;
            writeln!(writer, "memo_coalesced\t{}", s.memo_coalesced)?;
            writeln!(writer, "result_hits\t{}", s.result_hits)?;
            writeln!(writer, "result_misses\t{}", s.result_misses)?;
            writeln!(writer, "result_coalesced\t{}", s.result_coalesced)?;
            writeln!(writer, "pool_waits\t{}", s.pool_waits)?;
            writeln!(writer, "panics\t{}", s.panics)?;
            writeln!(writer, "cancelled\t{}", s.cancelled)?;
            writeln!(writer, "result_aborted\t{}", s.result_aborted)?;
            writeln!(writer, "memo_aborted\t{}", s.memo_aborted)?;
            writeln!(writer, "lock_poison_recovered\t{}", s.lock_poison_recovered)?;
            writeln!(writer, "journal_recovered_pages\t{}", s.journal_recovered_pages)?;
            writeln!(writer, "journal_recovered_results\t{}", s.journal_recovered_results)?;
            writeln!(writer, "journal_torn\t{}", s.journal_torn)?;
            writeln!(writer, "web_requests\t{}", s.web_requests)?;
            writeln!(writer, "drift_events\t{}", s.drift_events)?;
            writeln!(writer, "view_invalidated\t{}", s.view_invalidated)?;
            writeln!(writer, "delta_refresh\t{}", s.delta_refresh)?;
            writeln!(writer, "cold_refresh\t{}", s.cold_refresh)?;
            writeln!(writer, "stale_served\t{}", s.stale_served)?;
            writeln!(writer, "static_denied\t{}", s.static_denied)?;
            writeln!(writer, "readset_escape\t{}", s.readset_escape)?;
            writeln!(writer, "END")?;
        }
        _ => writeln!(writer, "ERR 404 unknown command {verb}")?,
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webbase_webworld::prelude::LatencyModel;

    fn drive(engine: &Engine, script: &str) -> String {
        let mut out = Vec::new();
        serve_connection(engine, &ServerConfig::default(), script.as_bytes(), &mut out)
            .expect("in-memory serve");
        String::from_utf8(out).expect("utf8 reply")
    }

    #[test]
    fn ping_quit_and_unknown() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(&engine, "PING\nFROB\nQUIT\nPING\n");
        assert_eq!(reply, "OK pong\nERR 404 unknown command FROB\nOK bye\n");
    }

    #[test]
    fn query_streams_header_rows_and_end() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(
            &engine,
            "TENANT alice\nQUERY UsedCarUR(make='honda', model='civic', year, price)\n",
        );
        let mut lines = reply.lines();
        assert_eq!(lines.next(), Some("OK tenant alice"));
        let status = lines.next().expect("status line");
        assert!(status.starts_with("OK "), "{status}");
        let header = lines.next().expect("header");
        assert!(header.split('\t').any(|c| c == "price"), "{header}");
        assert_eq!(reply.lines().last(), Some("END"));
    }

    #[test]
    fn parse_errors_answer_err_and_keep_the_connection() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(&engine, "QUERY Used CarUR(\nPING\n");
        assert!(reply.starts_with("ERR 422 "), "{reply}");
        assert!(reply.ends_with("OK pong\n"), "{reply}");
    }

    #[test]
    fn overlong_and_non_utf8_lines_answer_coded_errors_and_keep_the_session() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let mut script = Vec::new();
        script.extend_from_slice(b"PING\n");
        // One line over the cap...
        script.extend_from_slice(&vec![b'Q'; MAX_LINE + 1]);
        script.push(b'\n');
        // ...one that is not UTF-8...
        script.extend_from_slice(b"QUERY \xff\xfe\n");
        // ...and the session still answers afterwards.
        script.extend_from_slice(b"PING\nQUIT\n");
        let mut out = Vec::new();
        let end = serve_connection(&engine, &ServerConfig::default(), script.as_slice(), &mut out)
            .expect("in-memory serve");
        assert_eq!(end, SessionEnd::Quit);
        let reply = String::from_utf8(out).expect("utf8 reply");
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK pong");
        assert!(lines[1].starts_with("ERR 413 "), "{reply}");
        assert!(lines[2].starts_with("ERR 400 "), "{reply}");
        assert_eq!(lines[3], "OK pong");
        assert_eq!(lines[4], "OK bye");
    }

    #[test]
    fn budget_yields_partial_marker() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(&engine, "BUDGET 2\nQUERY UsedCarUR(make='ford', price)\n");
        assert!(reply.contains("OK budget 2"), "{reply}");
        assert!(reply.contains("PARTIAL budget exhausted"), "{reply}");
    }

    #[test]
    fn trace_reports_span_count_and_stats_report_counters() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(
            &engine,
            "TRACE ON\nQUERY UsedCarUR(make='honda', model='civic', year, price)\nSTATS\nQUIT\n",
        );
        assert!(reply.contains("TRACE "), "{reply}");
        assert!(reply.contains("queries\t1"), "{reply}");
        assert!(reply.contains("panics\t0"), "{reply}");
        assert!(reply.contains("web_requests\t"), "{reply}");
        assert!(reply.contains("OK bye"), "{reply}");
    }

    #[test]
    fn explain_includes_the_static_analysis_section() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(&engine, "EXPLAIN UsedCarUR(make='ford', price)\nSTATS\nQUIT\n");
        assert!(reply.contains("OK plan"), "{reply}");
        assert!(reply.contains("static cost: ["), "{reply}");
        assert!(reply.contains("static read set:"), "{reply}");
        assert!(reply.contains(" nodes {"), "{reply}");
        // EXPLAIN is fetch-free and never trips the tripwires.
        assert!(reply.contains("static_denied\t0"), "{reply}");
        assert!(reply.contains("readset_escape\t0"), "{reply}");
    }

    #[test]
    fn refresh_and_freshness_verbs_answer() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply = drive(
            &engine,
            "QUERY UsedCarUR(make='honda', model='civic', year, price)\n\
             REFRESH\nFRESHNESS\nSTATS\nQUIT\n",
        );
        assert!(reply.contains("OK refresh "), "{reply}");
        assert!(reply.contains(" checked "), "{reply}");
        assert!(reply.contains("OK freshness"), "{reply}");
        assert!(reply.contains("epoch\t"), "{reply}");
        assert!(reply.contains("tracked_views\t"), "{reply}");
        // Nothing mutated, so the sweep found no drift and the
        // freshness counters show a quiet system.
        assert!(reply.contains("view_invalidated\t0"), "{reply}");
        assert!(reply.contains("stale_served\t0"), "{reply}");
    }

    #[test]
    fn drain_rejects_new_queries_and_shutdown_ends_the_session() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let reply =
            drive(&engine, "DRAIN\nQUERY UsedCarUR(make='honda', model='civic', year, price)\n");
        assert!(reply.contains("OK draining 0 in flight"), "{reply}");
        assert!(reply.contains("ERR 503 "), "{reply}");
        let mut out = Vec::new();
        let end = serve_connection(
            &engine,
            &ServerConfig::default(),
            "SHUTDOWN\nPING\n".as_bytes(),
            &mut out,
        )
        .expect("in-memory serve");
        assert_eq!(end, SessionEnd::Shutdown, "SHUTDOWN must end the session");
        let reply = String::from_utf8(out).expect("utf8 reply");
        assert!(reply.contains("OK shutting down"), "{reply}");
        assert!(!reply.contains("OK pong"), "no dispatch after SHUTDOWN: {reply}");
    }

    #[test]
    fn serve_channel_dispatches_lines_and_reports_eof_on_hangup() {
        let engine = Engine::build_demo(5, 400, LatencyModel::lan());
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        tx.send(b"PING\n".to_vec()).expect("send");
        tx.send(b"STATS\n".to_vec()).expect("send");
        drop(tx);
        let mut out = Vec::new();
        let cancel = CancelToken::new();
        let end = serve_channel(&engine, &ServerConfig::default(), &rx, &mut out, &cancel)
            .expect("channel serve");
        assert_eq!(end, SessionEnd::Eof);
        let reply = String::from_utf8(out).expect("utf8 reply");
        assert!(reply.starts_with("OK pong\n"), "{reply}");
        assert!(reply.contains("OK stats"), "{reply}");
    }
}
