//! Expected-findings manifests for generated sites.
//!
//! The site generator (`webbase_webworld::generate`) emits, per site, a
//! manifest of which finding codes its defect knobs plant. This module
//! checks a produced [`Report`] against that manifest: every expected
//! code present, nothing unexpected — turning webcheck's soundness
//! *and* completeness into a property checkable over an unbounded site
//! family.

use crate::diag::Report;
use std::collections::BTreeSet;

/// The outcome of checking one site's report against its manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestCheck {
    /// Exactly the expected codes were reported.
    Match,
    /// The report and manifest disagree.
    Mismatch { missing: Vec<String>, unexpected: Vec<String> },
}

impl ManifestCheck {
    pub fn is_match(&self) -> bool {
        matches!(self, ManifestCheck::Match)
    }
}

impl std::fmt::Display for ManifestCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestCheck::Match => write!(f, "manifest match"),
            ManifestCheck::Mismatch { missing, unexpected } => {
                write!(f, "manifest mismatch: missing {missing:?}, unexpected {unexpected:?}")
            }
        }
    }
}

/// The distinct finding codes of a report, in stable order.
pub fn reported_codes(report: &Report) -> BTreeSet<String> {
    report.diagnostics.iter().map(|d| d.code.id.to_string()).collect()
}

/// Compare a site's report against its expected-findings manifest.
/// The comparison is exact — a clean manifest (`expected` empty) means
/// the report must be clean, and a defect manifest must be reproduced
/// without extra findings riding along.
pub fn check_manifest<S: AsRef<str>>(report: &Report, expected: &[S]) -> ManifestCheck {
    let want: BTreeSet<String> = expected.iter().map(|s| s.as_ref().to_string()).collect();
    let got = reported_codes(report);
    let missing: Vec<String> = want.difference(&got).cloned().collect();
    let unexpected: Vec<String> = got.difference(&want).cloned().collect();
    if missing.is_empty() && unexpected.is_empty() {
        ManifestCheck::Match
    } else {
        ManifestCheck::Mismatch { missing, unexpected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, CYCLE_NO_PROGRESS};

    #[test]
    fn empty_manifest_requires_a_clean_report() {
        let empty: &[&str] = &[];
        assert!(check_manifest(&Report::new(), empty).is_match());
        let mut r = Report::new();
        r.push(Diagnostic::new(CYCLE_NO_PROGRESS, "x", "loc", "msg"));
        let check = check_manifest(&r, empty);
        assert_eq!(
            check,
            ManifestCheck::Mismatch { missing: vec![], unexpected: vec!["W031".to_string()] }
        );
    }

    #[test]
    fn expected_code_must_appear() {
        let check = check_manifest(&Report::new(), &["W031"]);
        assert_eq!(
            check,
            ManifestCheck::Mismatch { missing: vec!["W031".to_string()], unexpected: vec![] }
        );
        let mut r = Report::new();
        r.push(Diagnostic::new(CYCLE_NO_PROGRESS, "x", "loc", "msg"));
        assert!(check_manifest(&r, &["W031"]).is_match());
    }
}
