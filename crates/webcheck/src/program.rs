//! Pass 2 — program safety over `compile_map`'s output.
//!
//! The compiled Transaction F-logic program is checked the way a
//! compiler checks its own IR: range restriction (a rule cannot export
//! an unbound variable), call resolution (every predicate is a rule or
//! an oracle builtin), dead-rule detection, and conformance of object
//! molecules against the Figure 3 signature declarations.

use crate::diag::{self, Diagnostic, Report};
use std::collections::{HashMap, HashSet, VecDeque};
use webbase_flogic::goal::Goal;
use webbase_flogic::program::{Program, Rule};
use webbase_flogic::signatures::{SigArrow, SignatureIndex};
use webbase_flogic::term::{Sym, Term, Var};
use webbase_navigation::compile::CompiledSite;

/// The builtin actions resolved by the executor's oracle
/// (`NavOracle`): these are callable without a rule definition.
pub const ORACLE_BUILTINS: &[(&str, usize)] =
    &[("fetch_entry", 2), ("goto_url", 2), ("doit", 3), ("doit_value", 4), ("collect", 3)];

/// Check a compiled site: the exported predicates are its registered
/// relations, and molecules are checked against the navigation-layer
/// signatures (Figure 3 plus the executor's asserted supplements).
pub fn check_compiled(site: &str, compiled: &CompiledSite) -> Report {
    let exports: Vec<String> = compiled.relations.iter().map(|r| r.name.clone()).collect();
    check_program(site, &compiled.program, &exports, &crate::signatures::navigation_index())
}

/// Check any program against an export list and a signature index.
pub fn check_program(
    site: &str,
    program: &Program,
    exports: &[String],
    sigs: &SignatureIndex,
) -> Report {
    let mut report = Report::new();

    for (idx, rule) in program.rules().enumerate() {
        let loc = rule_loc(rule, idx);
        check_range_restriction(site, rule, &loc, &mut report);
        check_calls(site, program, &rule.body, &loc, &mut report);
        let mut env: HashMap<Var, String> = HashMap::new();
        check_signatures(site, sigs, &rule.body, &mut env, &loc, &mut report);
    }

    check_unused_rules(site, program, exports, &mut report);
    report
}

fn rule_loc(rule: &Rule, idx: usize) -> String {
    format!("rule #{idx} {}/{}", rule.head_pred, rule.head_args.len())
}

/// E111 — every variable in the head must be bound by the body. A rule
/// violating this exports unbound variables as answers.
fn check_range_restriction(site: &str, rule: &Rule, loc: &str, report: &mut Report) {
    let mut head_vars = Vec::new();
    for t in &rule.head_args {
        t.collect_vars(&mut head_vars);
    }
    let mut bound = Vec::new();
    binding_vars(&rule.body, &mut bound);
    let bound: HashSet<Var> = bound.into_iter().collect();
    for v in head_vars {
        if !bound.contains(&v) {
            report.push(Diagnostic::new(
                diag::RANGE_RESTRICTION,
                site,
                loc,
                format!("head variable V{} is never bound in the body", v.0),
            ));
        }
    }
}

/// Variables that a successful execution of `goal` binds. Negation
/// binds nothing (no binding escapes `naf`), and comparisons require
/// their operands to be ground already.
fn binding_vars(goal: &Goal, out: &mut Vec<Var>) {
    match goal {
        Goal::Atom(_, args) => {
            for t in args {
                t.collect_vars(out);
            }
        }
        Goal::IsA(o, _) | Goal::InsertIsA(o, _) | Goal::DeleteScalar(o, _) => o.collect_vars(out),
        Goal::ScalarAttr(o, _, v)
        | Goal::SetAttr(o, _, v)
        | Goal::InsertScalar(o, _, v)
        | Goal::InsertSet(o, _, v)
        | Goal::DeleteSet(o, _, v) => {
            o.collect_vars(out);
            v.collect_vars(out);
        }
        Goal::Seq(gs) | Goal::Choice(gs) => {
            for g in gs {
                binding_vars(g, out);
            }
        }
        Goal::Naf(_) | Goal::Cmp(..) | Goal::True | Goal::Fail => {}
    }
}

/// E112 — every called predicate must have rules or be an oracle
/// builtin; anything else fails at runtime, mid-navigation.
fn check_calls(site: &str, program: &Program, goal: &Goal, loc: &str, report: &mut Report) {
    match goal {
        Goal::Atom(pred, args) => {
            let name = pred.name();
            let arity = args.len();
            let builtin = ORACLE_BUILTINS.iter().any(|&(n, a)| n == name && a == arity);
            if !builtin && !program.is_defined(*pred, arity) {
                report.push(Diagnostic::new(
                    diag::UNDEFINED_PREDICATE,
                    site,
                    loc,
                    format!("call to {name}/{arity}, which has no rules and is not a builtin"),
                ));
            }
        }
        Goal::Seq(gs) | Goal::Choice(gs) => {
            for g in gs {
                check_calls(site, program, g, loc, report);
            }
        }
        Goal::Naf(g) => check_calls(site, program, g, loc, report),
        _ => {}
    }
}

/// W011 — rules of predicates unreachable from any exported relation.
fn check_unused_rules(site: &str, program: &Program, exports: &[String], report: &mut Report) {
    let mut live: HashSet<(Sym, usize)> = HashSet::new();
    let mut queue: VecDeque<(Sym, usize)> = VecDeque::new();
    for (pred, arity) in program.predicates() {
        if exports.iter().any(|e| Sym::new(e) == pred) {
            live.insert((pred, arity));
            queue.push_back((pred, arity));
        }
    }
    while let Some((pred, arity)) = queue.pop_front() {
        for rule in program.lookup(pred, arity) {
            let mut called = Vec::new();
            collect_calls(&rule.body, &mut called);
            for key in called {
                if program.is_defined(key.0, key.1) && live.insert(key) {
                    queue.push_back(key);
                }
            }
        }
    }
    for (idx, rule) in program.rules().enumerate() {
        let key = (rule.head_pred, rule.head_args.len());
        if !live.contains(&key) {
            report.push(Diagnostic::new(
                diag::UNUSED_RULE,
                site,
                rule_loc(rule, idx),
                format!(
                    "{}/{} is not reachable from any exported relation",
                    rule.head_pred,
                    rule.head_args.len()
                ),
            ));
        }
    }
}

fn collect_calls(goal: &Goal, out: &mut Vec<(Sym, usize)>) {
    match goal {
        Goal::Atom(pred, args) => out.push((*pred, args.len())),
        Goal::Seq(gs) | Goal::Choice(gs) => {
            for g in gs {
                collect_calls(g, out);
            }
        }
        Goal::Naf(g) => collect_calls(g, out),
        _ => {}
    }
}

/// E113/E114/W012 — object molecules against the signature index. The
/// walk tracks `V : class` memberships seen earlier in the serial
/// conjunction; attribute molecules on a variable of known class are
/// then checked for arrow conformance (`=>` vs `=>>`) and declaredness.
/// Attributes on variables of unknown class are skipped — static
/// analysis cannot refute them.
fn check_signatures(
    site: &str,
    sigs: &SignatureIndex,
    goal: &Goal,
    env: &mut HashMap<Var, String>,
    loc: &str,
    report: &mut Report,
) {
    match goal {
        Goal::IsA(o, class) | Goal::InsertIsA(o, class) => {
            let cname = class.name();
            if !sigs.has_class(&cname) {
                report.push(Diagnostic::new(
                    diag::UNKNOWN_CLASS,
                    site,
                    loc,
                    format!("class {cname} is not declared in the signatures"),
                ));
            } else if let Term::Var(v) = o {
                env.insert(*v, cname);
            }
        }
        Goal::ScalarAttr(o, attr, _) | Goal::InsertScalar(o, attr, _) => {
            check_molecule(site, sigs, env, o, *attr, SigArrow::Scalar, loc, report);
        }
        Goal::SetAttr(o, attr, _) | Goal::InsertSet(o, attr, _) | Goal::DeleteSet(o, attr, _) => {
            check_molecule(site, sigs, env, o, *attr, SigArrow::SetValued, loc, report);
        }
        Goal::DeleteScalar(o, attr) => {
            check_molecule(site, sigs, env, o, *attr, SigArrow::Scalar, loc, report);
        }
        Goal::Seq(gs) => {
            for g in gs {
                check_signatures(site, sigs, g, env, loc, report);
            }
        }
        Goal::Choice(gs) => {
            for g in gs {
                let mut branch_env = env.clone();
                check_signatures(site, sigs, g, &mut branch_env, loc, report);
            }
        }
        Goal::Naf(g) => {
            let mut inner_env = env.clone();
            check_signatures(site, sigs, g, &mut inner_env, loc, report);
        }
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn check_molecule(
    site: &str,
    sigs: &SignatureIndex,
    env: &HashMap<Var, String>,
    object: &Term,
    attr: Sym,
    used_as: SigArrow,
    loc: &str,
    report: &mut Report,
) {
    let Term::Var(v) = object else { return };
    let Some(class) = env.get(v) else { return };
    let aname = attr.name();
    match sigs.resolve(class, &aname) {
        None => {
            report.push(Diagnostic::new(
                diag::UNKNOWN_ATTRIBUTE,
                site,
                loc,
                format!("attribute {aname} is not declared for class {class}"),
            ));
        }
        Some(entry) if entry.arrow != used_as => {
            let (decl, used) = match entry.arrow {
                SigArrow::Scalar => ("=>", "->>"),
                SigArrow::SetValued => ("=>>", "->"),
            };
            report.push(Diagnostic::new(
                diag::SIGNATURE_VIOLATION,
                site,
                loc,
                format!("{class}[{aname} {decl} …] is declared, but the molecule uses {used}"),
            ));
        }
        Some(_) => {}
    }
}
