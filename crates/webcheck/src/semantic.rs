//! Pass 4: semantic analysis by abstract interpretation.
//!
//! The compiled navigation program is a guarded walk over the map's
//! state graph (Figures 3/4), so every question about what an execution
//! *can* do is a reachability or path question over that graph. This
//! pass abstractly interprets the graph once, fetch-free, and produces
//! three artefacts per registered relation:
//!
//! 1. **Fetch-cost intervals** ([`CostInterval`]) — the least and
//!    greatest number of page fetches one invocation can spend. The
//!    lower bound walks the BFS navigation spine (the exact path the
//!    compiler emits); the upper bound sums each spine action's
//!    [`fetch_bound`] and widens to [`Bound::Top`] as soon as a cycle
//!    (a "More" self-loop, typically) lies inside the relation's
//!    reachable region — unbounded pagination has no static bound.
//! 2. **Static read-sets** — the set of map nodes (and hence `(host,
//!    node)` pairs) an invocation can possibly touch: the spine plus
//!    everything forward-reachable from the data node. The engine
//!    pre-seeds its freshness ledger from this set and cross-checks the
//!    dynamic read-set against it at runtime (`readset_escape`).
//! 3. **Cycle & taint findings** — multi-node cycles are classified as
//!    `W031` (on a data path, no progress evidence) or `E131` (no data
//!    node reachable: the walk can spin forever without producing a
//!    tuple), and session-like hidden fields replayed across chained
//!    forms are flagged `W033` (expiry-replay hazard). Self-loops are
//!    pass 1's domain (`W004`) and are not re-reported here.
//!
//! Soundness contract (pinned by `tests/semantics.rs`): for every
//! completed invocation, the deduplicated pages fetched satisfy
//! `observed ≤ max` always, and `observed ≥ min` when the invocation
//! ran to completion without drift repairs or budget cancellation.
//!
//! [`fetch_bound`]: webbase_navigation::model::ActionDescr::fetch_bound

use crate::diag::{self, Diagnostic, Report};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use webbase_navigation::map::{NavigationMap, NodeId};
use webbase_navigation::model::ActionDescr;

/// An abstract fetch count: a finite number of pages, or ⊤ (unbounded
/// — a cycle with no recorded bound lies on the path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    Finite(u64),
    Top,
}

impl Bound {
    /// Abstract addition: ⊤ absorbs.
    pub fn plus(self, n: u64) -> Bound {
        match self {
            Bound::Finite(m) => Bound::Finite(m + n),
            Bound::Top => Bound::Top,
        }
    }

    /// Abstract sum of two bounds.
    pub fn join_add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a + b),
            _ => Bound::Top,
        }
    }

    /// Does a concrete observation stay under this bound?
    pub fn admits(self, observed: u64) -> bool {
        match self {
            Bound::Finite(m) => observed <= m,
            Bound::Top => true,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Top => write!(f, "⊤"),
        }
    }
}

/// The abstract fetch cost of one relation invocation: at least `min`
/// pages, at most `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostInterval {
    pub min: u64,
    pub max: Bound,
}

impl CostInterval {
    /// The zero-cost interval (an unexecutable relation).
    pub fn empty() -> CostInterval {
        CostInterval { min: 0, max: Bound::Finite(0) }
    }

    /// Interval addition (plan objects join relations conjunctively, so
    /// costs add).
    pub fn plus(self, other: CostInterval) -> CostInterval {
        CostInterval { min: self.min + other.min, max: self.max.join_add(other.max) }
    }

    /// Is a concrete fetch count inside the interval? (The lower bound
    /// only binds clean, completed invocations — see the module docs.)
    pub fn contains(self, observed: u64) -> bool {
        observed >= self.min && self.max.admits(observed)
    }
}

impl fmt::Display for CostInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

/// What the abstract interpreter derived for one registered relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSemantics {
    pub relation: String,
    /// Fetch-cost interval for one invocation.
    pub cost: CostInterval,
    /// The BFS navigation spine (entry plus every hop target): the
    /// nodes an invocation *must* read. `spine_nodes.len() == cost.min`;
    /// plan-level lower bounds union these per host so relations that
    /// share a spine prefix are not double-counted.
    pub spine_nodes: BTreeSet<NodeId>,
    /// Map nodes an invocation can touch (the static read-set; pair
    /// each with [`SiteSemantics::host`] for the ledger's stamps).
    pub read_nodes: BTreeSet<NodeId>,
}

/// Per-site result of the semantic pass, stored alongside the compiled
/// program so the engine can consult it without re-analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteSemantics {
    /// The site host every `(host, node)` read-set pair names.
    pub host: String,
    /// Per-relation semantics, keyed by relation name.
    pub relations: BTreeMap<String, RelationSemantics>,
}

impl SiteSemantics {
    pub fn relation(&self, name: &str) -> Option<&RelationSemantics> {
        self.relations.get(name)
    }

    /// Union of every relation's static read-set.
    pub fn read_nodes(&self) -> BTreeSet<NodeId> {
        self.relations.values().flat_map(|r| r.read_nodes.iter().copied()).collect()
    }

    /// The cost of invoking every relation once (the site's worst case
    /// for a plan object that touches all of them).
    pub fn total_cost(&self) -> CostInterval {
        self.relations.values().fold(CostInterval::empty(), |acc, r| acc.plus(r.cost))
    }
}

/// Nodes reachable from `start` (inclusive) following edges forward.
fn forward_reachable(map: &NavigationMap, start: NodeId) -> BTreeSet<NodeId> {
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for e in map.out_edges(n) {
            if seen.insert(e.to) {
                queue.push_back(e.to);
            }
        }
    }
    seen
}

/// Does any edge in `region` close a cycle (self-loops included)?
/// Kahn's algorithm over the induced subgraph: nodes left unpeeled sit
/// on a cycle.
fn region_has_cycle(map: &NavigationMap, region: &BTreeSet<NodeId>) -> bool {
    let mut indeg: BTreeMap<NodeId, usize> = region.iter().map(|&n| (n, 0)).collect();
    for e in &map.edges {
        if region.contains(&e.from) && region.contains(&e.to) {
            *indeg.get_mut(&e.to).expect("region node") += 1;
        }
    }
    let mut queue: VecDeque<NodeId> =
        indeg.iter().filter(|(_, &d)| d == 0).map(|(&n, _)| n).collect();
    let mut peeled = 0;
    while let Some(n) = queue.pop_front() {
        peeled += 1;
        for e in map.out_edges(n) {
            if e.from != e.to && region.contains(&e.to) {
                let d = indeg.get_mut(&e.to).expect("region node");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(e.to);
                }
            }
        }
    }
    // A self-loop keeps its node's indegree positive forever.
    peeled < region.len()
}

/// Tarjan-style strongly connected components over the nodes reachable
/// from the entry, returned as node sets. Single nodes are included
/// only when they carry a self-loop.
fn cyclic_sccs(map: &NavigationMap) -> Vec<BTreeSet<NodeId>> {
    let reachable = forward_reachable(map, map.entry);
    // Iterative Tarjan.
    let n = map.nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0;
    let mut out: Vec<BTreeSet<NodeId>> = Vec::new();

    // Explicit DFS stack of (node, out-edge cursor).
    for &root in &reachable {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(NodeId, usize)> = vec![(root, 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&(v, cursor)) = dfs.last() {
            let succs: Vec<NodeId> = map.out_edges(v).map(|e| e.to).collect();
            if cursor < succs.len() {
                let w = succs[cursor];
                dfs.last_mut().expect("non-empty dfs stack").1 += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = BTreeSet::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.insert(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic =
                        scc.len() > 1 || map.out_edges(v).any(|e| e.to == v && scc.contains(&v));
                    if cyclic {
                        out.push(scc);
                    }
                }
            }
        }
    }
    out
}

/// The W004 progress heuristic, shared with `map_lint`: a link whose
/// href carries a query string or a digit plausibly advances a cursor.
fn shows_progress(action: &ActionDescr) -> bool {
    match action {
        ActionDescr::Follow(link) => {
            link.href.contains('?') || link.href.chars().any(|c| c.is_ascii_digit())
        }
        _ => false,
    }
}

fn session_like(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("sess") || lower == "sid" || lower.contains("token")
}

/// Compute per-relation cost intervals and static read-sets.
pub fn site_semantics(map: &NavigationMap) -> SiteSemantics {
    let mut relations = BTreeMap::new();
    for reg in &map.relations {
        let sem = match map.path_to(reg.data_node) {
            Some(spine) => {
                // Every spine edge costs at least one fetch, plus the
                // entry page itself.
                let min = 1 + spine.len() as u64;
                let mut spine_nodes: BTreeSet<NodeId> = BTreeSet::new();
                spine_nodes.insert(map.entry);
                for &e in &spine {
                    spine_nodes.insert(map.edges[e].to);
                }
                let mut read = spine_nodes.clone();
                read.extend(forward_reachable(map, reg.data_node));
                let max = if region_has_cycle(map, &read) {
                    Bound::Top
                } else {
                    let spent: u64 =
                        spine.iter().map(|&e| map.edges[e].action.fetch_bound() as u64).sum();
                    Bound::Finite(1 + spent)
                };
                RelationSemantics {
                    relation: reg.relation.clone(),
                    cost: CostInterval { min, max },
                    spine_nodes,
                    read_nodes: read,
                }
            }
            // Unreachable data node: pass 1 rejects the map (E101);
            // record an unexecutable relation so lookups stay total.
            None => RelationSemantics {
                relation: reg.relation.clone(),
                cost: CostInterval::empty(),
                spine_nodes: BTreeSet::new(),
                read_nodes: BTreeSet::new(),
            },
        };
        relations.insert(reg.relation.clone(), sem);
    }
    SiteSemantics { host: map.site.clone(), relations }
}

/// Cycle/termination and taint diagnostics over one map.
pub fn check_semantics(map: &NavigationMap) -> Report {
    let mut report = Report::new();
    let data_nodes: BTreeSet<NodeId> = map.relations.iter().map(|r| r.data_node).collect();

    // ── Cycle classification ────────────────────────────────────────
    for scc in cyclic_sccs(map) {
        if scc.len() == 1 {
            // Self-loops are pass 1's W004; re-reporting them here
            // would double every healthy More loop.
            continue;
        }
        let nodes: Vec<String> = scc.iter().map(|&n| format!("[{n}]")).collect();
        let loc = format!("cycle {{{}}}", nodes.join(", "));
        let produces =
            scc.iter().any(|&n| forward_reachable(map, n).iter().any(|m| data_nodes.contains(m)));
        if !produces {
            report.push(Diagnostic::new(
                diag::NONPRODUCTIVE_CYCLE,
                &map.site,
                loc,
                "navigation can enter this cycle but no data page is reachable from it; \
                 the walk can spin forever without producing a tuple",
            ));
        } else {
            let progress = map
                .edges
                .iter()
                .filter(|e| scc.contains(&e.from) && scc.contains(&e.to))
                .any(|e| shows_progress(&e.action));
            if !progress {
                report.push(Diagnostic::new(
                    diag::CYCLE_NO_PROGRESS,
                    &map.site,
                    loc,
                    "multi-node cycle on a data path with no progress evidence \
                     (no edge parameterises a cursor); termination relies on the site",
                ));
            }
        }
    }

    // ── Session/form taint across chained forms ─────────────────────
    for reg in &map.relations {
        let Some(spine) = map.path_to(reg.data_node) else { continue };
        let mut submits_seen = 0u32;
        for &ei in &spine {
            let edge = &map.edges[ei];
            let ActionDescr::Submit(form) = &edge.action else { continue };
            submits_seen += 1;
            if submits_seen < 2 {
                continue;
            }
            for field in &form.fields {
                if field.is_hidden() && session_like(&field.name) && field.fixed_value.is_some() {
                    report.push(Diagnostic::new(
                        diag::SESSION_REPLAY_HAZARD,
                        &map.site,
                        format!("edge [{}]->[{}] form {}", edge.from, edge.to, form.cgi),
                        format!(
                            "hidden field '{}' replays a session token recorded at design \
                             time into a chained form; an expired token fails the whole \
                             chain at query time",
                            field.name
                        ),
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use webbase_html::extract::WidgetKind;
    use webbase_navigation::extractor::{CellParse, ExtractionSpec, FieldSpec};
    use webbase_navigation::map::{NavigationMap, NodeKind};
    use webbase_navigation::model::{FieldDescr, FormDescr, LinkDescr};

    fn follow(name: &str, href: &str) -> ActionDescr {
        ActionDescr::Follow(LinkDescr { name: name.into(), href: href.into() })
    }

    /// home --link--> hub --submit--> data (More self-loop), as in the
    /// Figure 2 miniature.
    fn mini_map() -> NavigationMap {
        let mut m = NavigationMap::new("www.newsday.com");
        let home = m.add_node("HomePg", "/|", "Newsday");
        let hub = m.add_node("UsedCarPg", "/auto/used|form", "Used cars");
        let data = m.add_node("DataPg", "/cgi|table", "Listings");
        m.entry = home;
        m.add_edge(home, hub, follow("Used Cars", "/auto/used"));
        let form = FormDescr {
            cgi: "/cgi-bin/nclassy".into(),
            method: "post".into(),
            fields: vec![FieldDescr {
                name: "make".into(),
                attr: "make".into(),
                widget: WidgetKind::Select { options: vec!["ford".into()] },
                mandatory: true,
                manual_facts: 0,
                fixed_value: None,
                default: None,
            }],
        };
        m.add_edge(hub, data, ActionDescr::Submit(form));
        m.add_edge(data, data, follow("More", "/cgi?page=1"));
        m.node_mut(data).kind = NodeKind::Data(ExtractionSpec::Table {
            fields: vec![FieldSpec::new("Make", "make", CellParse::Text)],
        });
        m.register_relation("newsday", data);
        m
    }

    #[test]
    fn cost_interval_on_the_miniature() {
        let sem = site_semantics(&mini_map());
        let r = sem.relation("newsday").expect("registered");
        // entry + link + submit = 3 fetches minimum; the More loop
        // widens the maximum to ⊤.
        assert_eq!(r.cost, CostInterval { min: 3, max: Bound::Top });
        assert_eq!(r.read_nodes.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.spine_nodes.len() as u64, r.cost.min);
        assert_eq!(format!("{}", r.cost), "[3, ⊤]");
    }

    #[test]
    fn loop_free_map_gets_a_finite_interval() {
        let mut m = mini_map();
        m.edges.retain(|e| e.from != e.to);
        let sem = site_semantics(&m);
        let r = sem.relation("newsday").expect("registered");
        assert_eq!(r.cost, CostInterval { min: 3, max: Bound::Finite(3) });
        assert!(r.cost.contains(3) && !r.cost.contains(2) && !r.cost.contains(4));
    }

    #[test]
    fn choice_enumeration_widens_only_the_max() {
        let mut m = mini_map();
        m.edges.retain(|e| e.from != e.to);
        // Replace the fixed link with a two-way link-defined attribute.
        m.edges[0].action = ActionDescr::FollowByValue {
            attr: "section".into(),
            choices: vec![("a".into(), "A".into()), ("b".into(), "B".into())],
        };
        let sem = site_semantics(&m);
        let r = sem.relation("newsday").expect("registered");
        assert_eq!(r.cost, CostInterval { min: 3, max: Bound::Finite(4) });
    }

    #[test]
    fn healthy_miniature_has_no_semantic_findings() {
        let report = check_semantics(&mini_map());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn multi_node_cycle_on_data_path_w031() {
        let mut m = mini_map();
        // hub -> home back edge closes a 2-node cycle on the data path,
        // with no cursor parameter anywhere in it.
        m.add_edge(1, 0, follow("Home", "/"));
        // The plain home->hub link has no digits either.
        let report = check_semantics(&m);
        assert_eq!(report.with_code("W031").len(), 1, "{}", report.render());
        assert!(report.with_code("E131").is_empty());
        // Cost max is ⊤ — the cycle sits inside the read region.
        let sem = site_semantics(&m);
        assert_eq!(sem.relation("newsday").expect("reg").cost.max, Bound::Top);
    }

    #[test]
    fn cursor_parameter_is_progress_evidence() {
        let mut m = mini_map();
        m.add_edge(1, 0, follow("Home", "/?from=1"));
        let report = check_semantics(&m);
        assert!(report.with_code("W031").is_empty(), "{}", report.render());
    }

    #[test]
    fn nonproductive_cycle_e131() {
        let mut m = mini_map();
        // A reachable 2-node cycle hanging off the hub that can never
        // reach the data page.
        let a = m.add_node("TrapA", "/a|", "A");
        let b = m.add_node("TrapB", "/b|", "B");
        m.add_edge(1, a, follow("promo", "/a"));
        m.add_edge(a, b, follow("next", "/b"));
        m.add_edge(b, a, follow("back", "/a"));
        let report = check_semantics(&m);
        assert_eq!(report.with_code("E131").len(), 1, "{}", report.render());
        assert!(report.has_errors());
    }

    #[test]
    fn session_token_replay_w033() {
        let mut m = mini_map();
        // Insert a login form before the query form; the query form
        // replays a recorded session id.
        let login = m.add_node("LoginPg", "/login|form", "Login");
        m.edges.retain(|e| !(e.from == 0 && e.to == 1));
        let login_form =
            FormDescr { cgi: "/cgi-bin/login".into(), method: "post".into(), fields: vec![] };
        m.add_edge(0, login, ActionDescr::Submit(login_form));
        m.add_edge(login, 1, follow("Search", "/auto/used"));
        if let ActionDescr::Submit(f) =
            &mut m.edges.iter_mut().find(|e| e.from == 1 && e.to == 2).expect("submit").action
        {
            f.fields.push(FieldDescr {
                name: "session_id".into(),
                attr: "session_id".into(),
                widget: WidgetKind::Hidden,
                mandatory: false,
                manual_facts: 0,
                fixed_value: Some("x7".into()),
                default: None,
            });
        }
        let report = check_semantics(&m);
        assert_eq!(report.with_code("W033").len(), 1, "{}", report.render());
    }

    #[test]
    fn plain_hidden_fields_are_not_session_taint() {
        // Kellys-style chained forms carry hidden make/model — chained
        // but not session-like, so no W033.
        let mut m = mini_map();
        let mid = m.add_node("ModelPg", "/model|form", "Model");
        m.edges.retain(|e| !(e.from == 1 && e.to == 2));
        let first =
            FormDescr { cgi: "/cgi-bin/make".into(), method: "post".into(), fields: vec![] };
        let second = FormDescr {
            cgi: "/cgi-bin/model".into(),
            method: "post".into(),
            fields: vec![FieldDescr {
                name: "make".into(),
                attr: "make".into(),
                widget: WidgetKind::Hidden,
                mandatory: false,
                manual_facts: 0,
                fixed_value: Some("ford".into()),
                default: None,
            }],
        };
        m.add_edge(1, mid, ActionDescr::Submit(first));
        m.add_edge(mid, 2, ActionDescr::Submit(second));
        let report = check_semantics(&m);
        assert!(report.with_code("W033").is_empty(), "{}", report.render());
    }

    #[test]
    fn interval_arithmetic() {
        let a = CostInterval { min: 2, max: Bound::Finite(5) };
        let b = CostInterval { min: 3, max: Bound::Top };
        assert_eq!(a.plus(a), CostInterval { min: 4, max: Bound::Finite(10) });
        assert_eq!(a.plus(b), CostInterval { min: 5, max: Bound::Top });
        assert!(b.contains(1_000_000) && !b.contains(2));
        assert_eq!(format!("{}", Bound::Top), "⊤");
    }

    #[test]
    fn total_cost_sums_relations() {
        let sem = site_semantics(&mini_map());
        assert_eq!(sem.total_cost(), CostInterval { min: 3, max: Bound::Top });
        assert_eq!(sem.read_nodes().len(), 3);
    }
}
