//! Pass 1 — navigation-map linting.
//!
//! A recorded map is a claim about a site's structure; these checks
//! verify the claim is *internally* coherent before anything is compiled
//! or fetched: every node reachable, registered relations actually
//! invocable, edges unambiguous, and form edges covering what the page's
//! own widgets say is mandatory.

use crate::diag::{self, Diagnostic, Report};
use std::collections::BTreeSet;
use webbase_navigation::map::{MapEdge, NavigationMap, NodeKind};
use webbase_navigation::model::ActionDescr;

/// Lint one navigation map.
pub fn check_map(map: &NavigationMap) -> Report {
    let mut report = Report::new();
    let reachable = reachable_from_entry(map);

    // W001: nodes the entry can never reach. Dead map weight — usually a
    // branch recorded from the wrong page, or an orphan left by an edit.
    for node in &map.nodes {
        if !reachable[node.id] {
            report.push(Diagnostic::new(
                diag::UNREACHABLE_NODE,
                &map.site,
                format!("node {} ({})", node.id, node.name),
                "no path from the entry page reaches this node".to_string(),
            ));
        }
    }

    // W002: literal duplicate edges (hand-built or merged maps), plus
    // insertions the map itself dropped because a conflicting exemplar
    // arrived for an existing edge.
    for (i, e) in map.edges.iter().enumerate() {
        if map.edges[..i].iter().any(|p| p.from == e.from && p.to == e.to && p.action == e.action) {
            report.push(Diagnostic::new(
                diag::DUPLICATE_EDGE,
                &map.site,
                edge_loc(map, e),
                "edge appears more than once in the map".to_string(),
            ));
        }
    }
    for e in &map.dropped_duplicates {
        report.push(Diagnostic::new(
            diag::DUPLICATE_EDGE,
            &map.site,
            edge_loc(map, e),
            format!(
                "a recorded insertion with exemplar {:?} was dropped in favour of the existing edge",
                e.exemplar
            ),
        ));
    }

    // W003: the same action with the same exemplar recorded toward
    // *different* targets — replay cannot tell which page to expect.
    // (Same action with different exemplars branching to different
    // targets is legitimate: Newsday's search form leads to a listing
    // page or a direct detail page depending on the make.)
    for (i, e) in map.edges.iter().enumerate() {
        if map.edges[..i].iter().any(|p| {
            p.from == e.from && p.action == e.action && p.exemplar == e.exemplar && p.to != e.to
        }) {
            report.push(Diagnostic::new(
                diag::AMBIGUOUS_EDGE,
                &map.site,
                edge_loc(map, e),
                format!(
                    "action {:?} with exemplar {:?} also leads to a different target",
                    e.action.label(),
                    e.exemplar
                ),
            ));
        }
    }

    // W004: a "More"-style self-loop whose link carries no visible
    // progress state (no query string, no page number). Such a loop can
    // refetch the same page forever; the executor's iteration bound
    // masks it, but the map is suspect.
    for e in &map.edges {
        if e.from == e.to {
            if let ActionDescr::Follow(link) = &e.action {
                let progresses =
                    link.href.contains('?') || link.href.chars().any(|c| c.is_ascii_digit());
                if !progresses {
                    report.push(Diagnostic::new(
                        diag::MORE_NO_PROGRESS,
                        &map.site,
                        edge_loc(map, e),
                        format!(
                            "self-loop link {:?} (href {:?}) carries no page/query state",
                            link.name, link.href
                        ),
                    ));
                }
            }
        }
    }

    // W005: the edge's action does not appear in the source node's
    // catalogue of observed actions — the edge promises an action the
    // recorded page never showed (typical of drift or a bad repair).
    for e in &map.edges {
        let actions = &map.node(e.from).actions;
        let catalogued = match &e.action {
            ActionDescr::Follow(l) => actions.iter().any(|a| match a {
                ActionDescr::Follow(c) => c.name == l.name,
                _ => false,
            }),
            ActionDescr::Submit(f) => actions.iter().any(|a| match a {
                ActionDescr::Submit(c) => c.cgi == f.cgi,
                _ => false,
            }),
            // Link-set choices are catalogued as individual links; the
            // edge is covered when at least one choice's href was seen.
            ActionDescr::FollowByValue { choices, .. } => choices.iter().any(|(_, href)| {
                actions.iter().any(|a| match a {
                    ActionDescr::Follow(c) => c.href == *href,
                    _ => false,
                })
            }),
        };
        if !catalogued {
            report.push(Diagnostic::new(
                diag::EDGE_NOT_CATALOGUED,
                &map.site,
                edge_loc(map, e),
                format!(
                    "action {:?} is not in the source page's recorded action catalogue",
                    e.action.label()
                ),
            ));
        }
    }

    // Relation registrations: E101/E102/E103/E104.
    for reg in &map.relations {
        let loc = format!("relation {} (data node {})", reg.relation, reg.data_node);
        let node = map.node(reg.data_node);
        let NodeKind::Data(spec) = &node.kind else {
            report.push(Diagnostic::new(
                diag::RELATION_NOT_DATA,
                &map.site,
                loc,
                format!("node {} ({}) carries no extraction script", node.id, node.name),
            ));
            continue;
        };
        if !reachable[reg.data_node] {
            report.push(Diagnostic::new(
                diag::UNREACHABLE_DATA_NODE,
                &map.site,
                loc,
                "the navigation can never arrive at this relation's data page".to_string(),
            ));
            continue;
        }

        // E103: along the invocation path, every field the page's own
        // widgets mark mandatory must be present on the recorded form
        // edge (html::extract inference lives in the catalogue copy).
        let path = map.path_to(reg.data_node).unwrap_or_default();
        for &edge_idx in &path {
            let e = &map.edges[edge_idx];
            let ActionDescr::Submit(edge_form) = &e.action else { continue };
            let Some(cat_form) = map.node(e.from).actions.iter().find_map(|a| match a {
                ActionDescr::Submit(c) if c.cgi == edge_form.cgi => Some(c),
                _ => None,
            }) else {
                continue; // W005 already covers the missing catalogue entry
            };
            for mf in cat_form.fields.iter().filter(|f| f.mandatory) {
                let covered = edge_form.fields.iter().any(|f| f.name == mf.name);
                if !covered {
                    report.push(Diagnostic::new(
                        diag::MANDATORY_UNCOVERED,
                        &map.site,
                        edge_loc(map, e),
                        format!(
                            "mandatory field {:?} of form {} is missing from the recorded edge",
                            mf.name, edge_form.cgi
                        ),
                    ));
                }
            }
        }

        // E104: no viable handle. Mirrors `vps::derive_handles`: a path
        // handle exists unless some mandatory form field lies outside
        // the relation schema (nothing could ever supply its value); a
        // direct handle exists when the extraction uses the page URL.
        let schema: BTreeSet<String> = spec.attrs().into_iter().collect();
        let mut path_viable = true;
        for &edge_idx in &path {
            if let ActionDescr::Submit(form) = &map.edges[edge_idx].action {
                for f in form.settable() {
                    if !schema.contains(&f.attr) && f.mandatory {
                        path_viable = false;
                    }
                }
            }
        }
        let direct = spec
            .fields()
            .iter()
            .any(|f| f.source == webbase_navigation::extractor::PAGE_URL_SOURCE);
        if !path_viable && !direct {
            report.push(Diagnostic::new(
                diag::NO_VIABLE_HANDLE,
                &map.site,
                format!("relation {}", reg.relation),
                "every invocation path requires a mandatory value outside the relation schema, \
                 and the extraction offers no direct-URL handle"
                    .to_string(),
            ));
        }
    }

    report
}

fn reachable_from_entry(map: &NavigationMap) -> Vec<bool> {
    let mut seen = vec![false; map.nodes.len()];
    if map.nodes.is_empty() {
        return seen;
    }
    let mut queue = std::collections::VecDeque::from([map.entry]);
    seen[map.entry] = true;
    while let Some(n) = queue.pop_front() {
        for e in map.out_edges(n) {
            if !seen[e.to] {
                seen[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }
    seen
}

fn edge_loc(map: &NavigationMap, e: &MapEdge) -> String {
    format!(
        "edge {} ({}) --{}--> {} ({})",
        e.from,
        map.node(e.from).name,
        e.action.label(),
        e.to,
        map.node(e.to).name
    )
}
