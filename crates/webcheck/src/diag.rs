//! The diagnostics framework: stable codes, severities, findings, and
//! the rendered report.
//!
//! Every analysis pass speaks this vocabulary. Codes are *stable* — CI
//! gates, tests, and quarantine reports reference them by id — so a code
//! is never renumbered or reused; retired checks leave a hole.
//! `W0xx`/`W01x`/`W02x` are warnings (the webbase still loads), `E1xx`
//! are errors (the spec is rejected at load time).

use std::fmt;

/// Finding severity. Errors make [`Report::has_errors`] true and fail
/// the `repro --check` gate; warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A stable diagnostic code: id, severity, owning pass, and a one-line
/// title. The registry below is the *single* source of truth — the
/// README diagnostic table is generated from it by
/// [`render_code_table`], so codes cannot drift from docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Code {
    pub id: &'static str,
    pub severity: Severity,
    /// The analysis pass that emits this code (`map`, `program`,
    /// `cross`, or `semantic`) — the README table's middle column.
    pub pass: &'static str,
    pub title: &'static str,
}

macro_rules! codes {
    ($($name:ident = ($id:literal, $sev:ident, $pass:literal, $title:literal);)*) => {
        $(pub const $name: Code =
            Code { id: $id, severity: Severity::$sev, pass: $pass, title: $title };)*
        /// Every registered code, for the README reference table.
        pub const ALL_CODES: &[Code] = &[$($name),*];
    };
}

codes! {
    // ── Pass 1: map linting ─────────────────────────────────────────
    UNREACHABLE_NODE = ("W001", Warning, "map", "node unreachable from the entry page");
    DUPLICATE_EDGE = ("W002", Warning, "map", "duplicate edge (identical action and target)");
    AMBIGUOUS_EDGE = ("W003", Warning, "map", "ambiguous edges (identical action and exemplar, different targets)");
    MORE_NO_PROGRESS = ("W004", Warning, "map", "More-style self-loop with no progress guarantee");
    EDGE_NOT_CATALOGUED = ("W005", Warning, "map", "edge action missing from the source node's catalogue");
    UNREACHABLE_DATA_NODE = ("E101", Error, "map", "registered relation's data node unreachable from the entry");
    RELATION_NOT_DATA = ("E102", Error, "map", "relation registered on a node with no extraction script");
    MANDATORY_UNCOVERED = ("E103", Error, "map", "form edge does not cover the site's inferred-mandatory fields");
    NO_VIABLE_HANDLE = ("E104", Error, "map", "relation has no viable handle (no invocation can ever succeed)");
    // ── Pass 2: program safety ──────────────────────────────────────
    RANGE_RESTRICTION = ("E111", Error, "program", "head variable never bound in the rule body");
    UNDEFINED_PREDICATE = ("E112", Error, "program", "call to a predicate that is neither defined nor a builtin");
    UNUSED_RULE = ("W011", Warning, "program", "rule unreachable from any exported relation");
    SIGNATURE_VIOLATION = ("E113", Error, "program", "attribute used against its signature arrow (=> vs =>>)");
    UNKNOWN_CLASS = ("E114", Error, "program", "membership query against an undeclared class");
    UNKNOWN_ATTRIBUTE = ("W012", Warning, "program", "attribute not declared for the object's class");
    // ── Pass 3: cross-layer conformance ─────────────────────────────
    UNKNOWN_VPS_SOURCE = ("E121", Error, "cross", "logical definition references a relation missing from the VPS catalog");
    UNMAPPED_ATTRIBUTE = ("E122", Error, "cross", "logical schema attribute maps to no VPS catalog source");
    UNSATISFIABLE_BINDING = ("E123", Error, "cross", "handle binding pattern cannot be satisfied through the schema");
    VACUOUS_COMPAT_RULE = ("W021", Warning, "cross", "compatibility rule references no known concept (never fires)");
    CONTRADICTORY_COMPAT_RULES = ("E124", Error, "cross", "compatibility rules contradict each other");
    // ── Pass 4: semantic (abstract interpretation) ──────────────────
    CYCLE_NO_PROGRESS = ("W031", Warning, "semantic", "multi-node cycle on a data path without progress evidence");
    SESSION_REPLAY_HAZARD = ("W033", Warning, "semantic", "session-like hidden field replayed across chained forms (expiry-replay hazard)");
    NONPRODUCTIVE_CYCLE = ("E131", Error, "semantic", "entry-reachable cycle from which no data node is reachable (cannot terminate productively)");
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The README `Diagnostic codes (webcheck)` table body, generated from
/// [`ALL_CODES`] so the docs cannot drift from the registry. Rows are
/// in registry (pass, then code) order.
pub fn render_code_table() -> String {
    let mut out = String::from("| Code | Pass | Meaning |\n|------|------|---------|\n");
    for c in ALL_CODES {
        out.push_str(&format!("| `{}` | {} | {} |\n", c.id, c.pass, c.title));
    }
    out
}

/// One finding: a code anchored at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    /// The site the finding belongs to, or `"<cross-layer>"` for pass-3
    /// findings that span sites.
    pub site: String,
    /// Human-readable source location within the analyzed artefact
    /// (node, edge, rule, relation, …).
    pub location: String,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        code: Code,
        site: &str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            site: site.to_string(),
            location: location.into(),
            message: message.into(),
        }
    }

    pub fn severity(&self) -> Severity {
        self.code.severity
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} at {}: {}",
            self.severity(),
            self.code.id,
            self.site,
            self.location,
            self.message
        )
    }
}

/// The outcome of one or more analysis passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity() == Severity::Error)
    }

    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Error)
    }

    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Warning)
    }

    /// Findings with a given stable code id (`"E101"`, …).
    pub fn with_code(&self, id: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code.id == id).collect()
    }

    /// Findings belonging to one site.
    pub fn for_site(&self, site: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.site == site).collect()
    }

    /// Human-readable report, errors first.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return String::from("webcheck: no findings\n");
        }
        let mut out = String::new();
        for d in self.errors() {
            out.push_str(&format!("  {d}\n"));
        }
        for d in self.warnings() {
            out.push_str(&format!("  {d}\n"));
        }
        out.push_str(&format!(
            "webcheck: {} error(s), {} warning(s)\n",
            self.errors().count(),
            self.warnings().count()
        ));
        out
    }

    /// Machine-readable report: one JSON object per finding, one per
    /// line (JSON-lines), errors first — the `repro --check-json`
    /// output CI consumes. An empty report renders as an empty string.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for d in self.errors().chain(self.warnings()) {
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"pass\":\"{}\",\"site\":\"{}\",\
                 \"location\":\"{}\",\"message\":\"{}\"}}\n",
                d.code.id,
                d.severity(),
                d.code.pass,
                json_escape(&d.site),
                json_escape(&d.location),
                json_escape(&d.message)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for c in ALL_CODES {
            assert!(seen.insert(c.id), "duplicate code id {}", c.id);
            let level = match c.severity {
                Severity::Warning => 'W',
                Severity::Error => 'E',
            };
            assert!(c.id.starts_with(level), "{} severity does not match its prefix", c.id);
            assert!(!c.title.is_empty());
        }
    }

    #[test]
    fn report_partitions_and_renders() {
        let mut r = Report::new();
        r.push(Diagnostic::new(UNREACHABLE_NODE, "a.com", "node 3", "lonely"));
        r.push(Diagnostic::new(RANGE_RESTRICTION, "a.com", "rule p/2 #0", "V1 unbound"));
        assert!(!r.is_clean());
        assert!(r.has_errors());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        assert_eq!(r.with_code("E111").len(), 1);
        assert_eq!(r.for_site("a.com").len(), 2);
        let text = r.render();
        assert!(text.contains("error[E111]"), "{text}");
        assert!(text.contains("warning[W001]"), "{text}");
        // errors render before warnings
        assert!(text.find("E111").unwrap() < text.find("W001").unwrap());
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::new();
        assert!(r.is_clean() && !r.has_errors());
        assert_eq!(r.render(), "webcheck: no findings\n");
        assert_eq!(r.render_jsonl(), "");
    }

    #[test]
    fn jsonl_escapes_and_orders_errors_first() {
        let mut r = Report::new();
        r.push(Diagnostic::new(UNREACHABLE_NODE, "a.com", "node \"3\"", "tab\there"));
        r.push(Diagnostic::new(RANGE_RESTRICTION, "a.com", "rule p/2 #0", "V1 unbound"));
        let jsonl = r.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"code\":\"E111\""), "errors first: {jsonl}");
        assert!(lines[1].contains("\"location\":\"node \\\"3\\\"\""), "{jsonl}");
        assert!(lines[1].contains("\"message\":\"tab\\there\""), "{jsonl}");
        assert!(lines[1].contains("\"pass\":\"map\""), "{jsonl}");
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn code_table_covers_every_registered_code() {
        let table = render_code_table();
        for c in ALL_CODES {
            assert!(table.contains(&format!("| `{}` | {} | {} |", c.id, c.pass, c.title)));
        }
        assert_eq!(table.lines().count(), 2 + ALL_CODES.len());
    }

    #[test]
    fn passes_are_known() {
        for c in ALL_CODES {
            assert!(
                matches!(c.pass, "map" | "program" | "cross" | "semantic"),
                "{} has unknown pass {}",
                c.id,
                c.pass
            );
        }
    }
}
