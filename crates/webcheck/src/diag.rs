//! The diagnostics framework: stable codes, severities, findings, and
//! the rendered report.
//!
//! Every analysis pass speaks this vocabulary. Codes are *stable* — CI
//! gates, tests, and quarantine reports reference them by id — so a code
//! is never renumbered or reused; retired checks leave a hole.
//! `W0xx`/`W01x`/`W02x` are warnings (the webbase still loads), `E1xx`
//! are errors (the spec is rejected at load time).

use std::fmt;

/// Finding severity. Errors make [`Report::has_errors`] true and fail
/// the `repro --check` gate; warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A stable diagnostic code: id, severity, and a one-line title.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Code {
    pub id: &'static str,
    pub severity: Severity,
    pub title: &'static str,
}

macro_rules! codes {
    ($($name:ident = ($id:literal, $sev:ident, $title:literal);)*) => {
        $(pub const $name: Code =
            Code { id: $id, severity: Severity::$sev, title: $title };)*
        /// Every registered code, for the README reference table.
        pub const ALL_CODES: &[Code] = &[$($name),*];
    };
}

codes! {
    // ── Pass 1: map linting ─────────────────────────────────────────
    UNREACHABLE_NODE = ("W001", Warning, "node unreachable from the entry page");
    DUPLICATE_EDGE = ("W002", Warning, "duplicate edge (identical action and target)");
    AMBIGUOUS_EDGE = ("W003", Warning, "ambiguous edges (identical action and exemplar, different targets)");
    MORE_NO_PROGRESS = ("W004", Warning, "More-style self-loop with no progress guarantee");
    EDGE_NOT_CATALOGUED = ("W005", Warning, "edge action missing from the source node's catalogue");
    UNREACHABLE_DATA_NODE = ("E101", Error, "registered relation's data node unreachable from the entry");
    RELATION_NOT_DATA = ("E102", Error, "relation registered on a node with no extraction script");
    MANDATORY_UNCOVERED = ("E103", Error, "form edge does not cover the site's inferred-mandatory fields");
    NO_VIABLE_HANDLE = ("E104", Error, "relation has no viable handle (no invocation can ever succeed)");
    // ── Pass 2: program safety ──────────────────────────────────────
    RANGE_RESTRICTION = ("E111", Error, "head variable never bound in the rule body");
    UNDEFINED_PREDICATE = ("E112", Error, "call to a predicate that is neither defined nor a builtin");
    UNUSED_RULE = ("W011", Warning, "rule unreachable from any exported relation");
    SIGNATURE_VIOLATION = ("E113", Error, "attribute used against its signature arrow (=> vs =>>)");
    UNKNOWN_CLASS = ("E114", Error, "membership query against an undeclared class");
    UNKNOWN_ATTRIBUTE = ("W012", Warning, "attribute not declared for the object's class");
    // ── Pass 3: cross-layer conformance ─────────────────────────────
    UNKNOWN_VPS_SOURCE = ("E121", Error, "logical definition references a relation missing from the VPS catalog");
    UNMAPPED_ATTRIBUTE = ("E122", Error, "logical schema attribute maps to no VPS catalog source");
    UNSATISFIABLE_BINDING = ("E123", Error, "handle binding pattern cannot be satisfied through the schema");
    VACUOUS_COMPAT_RULE = ("W021", Warning, "compatibility rule references no known concept (never fires)");
    CONTRADICTORY_COMPAT_RULES = ("E124", Error, "compatibility rules contradict each other");
}

/// One finding: a code anchored at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    /// The site the finding belongs to, or `"<cross-layer>"` for pass-3
    /// findings that span sites.
    pub site: String,
    /// Human-readable source location within the analyzed artefact
    /// (node, edge, rule, relation, …).
    pub location: String,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        code: Code,
        site: &str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            site: site.to_string(),
            location: location.into(),
            message: message.into(),
        }
    }

    pub fn severity(&self) -> Severity {
        self.code.severity
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} at {}: {}",
            self.severity(),
            self.code.id,
            self.site,
            self.location,
            self.message
        )
    }
}

/// The outcome of one or more analysis passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity() == Severity::Error)
    }

    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Error)
    }

    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Warning)
    }

    /// Findings with a given stable code id (`"E101"`, …).
    pub fn with_code(&self, id: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code.id == id).collect()
    }

    /// Findings belonging to one site.
    pub fn for_site(&self, site: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.site == site).collect()
    }

    /// Human-readable report, errors first.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return String::from("webcheck: no findings\n");
        }
        let mut out = String::new();
        for d in self.errors() {
            out.push_str(&format!("  {d}\n"));
        }
        for d in self.warnings() {
            out.push_str(&format!("  {d}\n"));
        }
        out.push_str(&format!(
            "webcheck: {} error(s), {} warning(s)\n",
            self.errors().count(),
            self.warnings().count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for c in ALL_CODES {
            assert!(seen.insert(c.id), "duplicate code id {}", c.id);
            let level = match c.severity {
                Severity::Warning => 'W',
                Severity::Error => 'E',
            };
            assert!(c.id.starts_with(level), "{} severity does not match its prefix", c.id);
            assert!(!c.title.is_empty());
        }
    }

    #[test]
    fn report_partitions_and_renders() {
        let mut r = Report::new();
        r.push(Diagnostic::new(UNREACHABLE_NODE, "a.com", "node 3", "lonely"));
        r.push(Diagnostic::new(RANGE_RESTRICTION, "a.com", "rule p/2 #0", "V1 unbound"));
        assert!(!r.is_clean());
        assert!(r.has_errors());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        assert_eq!(r.with_code("E111").len(), 1);
        assert_eq!(r.for_site("a.com").len(), 2);
        let text = r.render();
        assert!(text.contains("error[E111]"), "{text}");
        assert!(text.contains("warning[W001]"), "{text}");
        // errors render before warnings
        assert!(text.find("E111").unwrap() < text.find("W001").unwrap());
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::new();
        assert!(r.is_clean() && !r.has_errors());
        assert_eq!(r.render(), "webcheck: no findings\n");
    }
}
