//! The signature universe the analyzer checks navigation programs
//! against: Figure 3, plus the attributes the executor *actually
//! asserts* on action objects when it interns a page.
//!
//! Figure 3 declares `name`/`address` on `link` and `cgi` on `form`,
//! but the compiled programs query them on the *action* objects
//! (`A : link_follow, A[name -> …]`) — mirroring the executor, which
//! copies those attributes onto the action when cataloguing a page.
//! The supplements record that de-facto model so conformance checking
//! matches what runs, not only what the paper's figure prints.

use webbase_flogic::signatures::{figure3_classes, ClassDecl, SignatureIndex};

/// The executor-supplement declarations.
pub fn executor_supplements() -> Vec<ClassDecl> {
    vec![
        ClassDecl::new(
            "link_follow",
            "Executor supplement: link attributes copied onto the action",
        )
        .scalar("name", "string", "Anchor text of the underlying link")
        .scalar("address", "url", "URL of the underlying link"),
        ClassDecl::new(
            "form_submit",
            "Executor supplement: form attributes copied onto the action",
        )
        .scalar("cgi", "url", "CGI script of the underlying form"),
    ]
}

/// Figure 3 plus the executor supplements.
pub fn navigation_signatures() -> Vec<ClassDecl> {
    let mut decls = figure3_classes();
    decls.extend(executor_supplements());
    decls
}

/// The index used by pass 2 for compiled navigation programs.
pub fn navigation_index() -> SignatureIndex {
    SignatureIndex::new(navigation_signatures())
}

#[cfg(test)]
mod tests {
    use super::*;
    use webbase_flogic::signatures::SigArrow;

    #[test]
    fn supplements_cover_what_compiled_programs_query() {
        let idx = navigation_index();
        // Queried by compiled link rules.
        assert_eq!(idx.resolve("link_follow", "name").map(|e| e.arrow), Some(SigArrow::Scalar));
        assert_eq!(idx.resolve("link_follow", "address").map(|e| e.arrow), Some(SigArrow::Scalar));
        // Queried by compiled form rules.
        assert_eq!(idx.resolve("form_submit", "cgi").map(|e| e.arrow), Some(SigArrow::Scalar));
        // Inherited from the Figure 3 action class.
        assert_eq!(idx.resolve("form_submit", "source").map(|e| e.arrow), Some(SigArrow::Scalar));
        assert_eq!(
            idx.resolve("link_follow", "targets").map(|e| e.arrow),
            Some(SigArrow::SetValued)
        );
        // Page molecules.
        assert_eq!(idx.resolve("data_page", "actions").map(|e| e.arrow), Some(SigArrow::SetValued));
    }
}
