//! Pass 3 — cross-layer conformance.
//!
//! The three layers make promises to each other: the logical schema
//! promises its attributes come *from somewhere* in the VPS catalog
//! (Tables 1–2), handles promise their binding patterns are satisfiable
//! (Table 3), and the UR's compatibility rules promise to constrain
//! real concepts. This pass checks those promises against plain
//! descriptions of each layer, so it needs no dependency on the layer
//! crates themselves — `core` assembles the input from the live stack.

use crate::diag::{self, Diagnostic, Report};
use std::collections::BTreeSet;

/// Site name used for findings that span layers rather than belonging
/// to one site's map.
pub const CROSS_LAYER: &str = "<cross-layer>";

/// One logical-layer relation: its exported schema and the VPS base
/// relations its definition draws from.
#[derive(Debug, Clone, Default)]
pub struct LogicalSpec {
    pub name: String,
    pub attrs: Vec<String>,
    pub bases: Vec<String>,
}

/// One VPS catalog relation: schema plus derived invocation handles.
#[derive(Debug, Clone, Default)]
pub struct VpsRelSpec {
    pub name: String,
    pub site: String,
    pub attrs: Vec<String>,
    pub handles: Vec<HandleSpec>,
}

/// One handle's binding pattern.
#[derive(Debug, Clone, Default)]
pub struct HandleSpec {
    pub mandatory: Vec<String>,
    pub selection: Vec<String>,
}

/// A UR compatibility rule, mirrored from `ur::CompatRule`.
#[derive(Debug, Clone)]
pub enum CompatRuleSpec {
    Requires { premise: Vec<String>, then: String },
    Excludes { premise: Vec<String>, then_not: String },
}

/// Everything pass 3 looks at.
#[derive(Debug, Clone, Default)]
pub struct CrossLayerInput {
    pub logical: Vec<LogicalSpec>,
    pub vps: Vec<VpsRelSpec>,
    /// Concept (alternative) names declared in the UR hierarchy.
    pub concepts: Vec<String>,
    pub compat: Vec<CompatRuleSpec>,
}

/// Run the cross-layer conformance checks.
pub fn check_cross_layer(input: &CrossLayerInput) -> Report {
    let mut report = Report::new();

    // E121/E122 — logical definitions against the VPS catalog.
    for spec in &input.logical {
        let loc = format!("logical relation {}", spec.name);
        let mut known_bases: Vec<&VpsRelSpec> = Vec::new();
        for base in &spec.bases {
            match input.vps.iter().find(|v| v.name == *base) {
                Some(v) => known_bases.push(v),
                None => report.push(Diagnostic::new(
                    diag::UNKNOWN_VPS_SOURCE,
                    CROSS_LAYER,
                    &loc,
                    format!("definition uses VPS relation {base}, which is not in the catalog"),
                )),
            }
        }
        if known_bases.is_empty() {
            continue; // every base already reported; attrs have no source to check against
        }
        for attr in &spec.attrs {
            let sourced = known_bases.iter().any(|v| v.attrs.iter().any(|a| a == attr));
            if !sourced {
                report.push(Diagnostic::new(
                    diag::UNMAPPED_ATTRIBUTE,
                    CROSS_LAYER,
                    &loc,
                    format!("schema attribute {attr} maps to no attribute of any VPS source"),
                ));
            }
        }
    }

    // E123 — handle binding patterns. A mandatory attribute outside the
    // relation schema can never be supplied by a query binding; a
    // mandatory attribute outside its own selection breaks the §3
    // `mandatory ⊆ selection` convention the evaluator relies on.
    for rel in &input.vps {
        let schema: BTreeSet<&String> = rel.attrs.iter().collect();
        for (i, h) in rel.handles.iter().enumerate() {
            let loc = format!("relation {} handle #{i}", rel.name);
            let selection: BTreeSet<&String> = h.selection.iter().collect();
            for m in &h.mandatory {
                if !schema.contains(m) {
                    report.push(Diagnostic::new(
                        diag::UNSATISFIABLE_BINDING,
                        &rel.site,
                        &loc,
                        format!("mandatory attribute {m} is not in the relation schema"),
                    ));
                } else if !selection.contains(m) {
                    report.push(Diagnostic::new(
                        diag::UNSATISFIABLE_BINDING,
                        &rel.site,
                        &loc,
                        format!("mandatory attribute {m} is missing from the selection set"),
                    ));
                }
            }
        }
    }

    // W021/E124 — compatibility rules against the concept universe.
    let concepts: BTreeSet<&String> = input.concepts.iter().collect();
    for (i, rule) in input.compat.iter().enumerate() {
        let loc = format!("compat rule #{i}");
        let (premise, conclusion) = match rule {
            CompatRuleSpec::Requires { premise, then } => (premise, then),
            CompatRuleSpec::Excludes { premise, then_not } => (premise, then_not),
        };
        for name in premise.iter().chain(std::iter::once(conclusion)) {
            if !concepts.contains(name) {
                report.push(Diagnostic::new(
                    diag::VACUOUS_COMPAT_RULE,
                    CROSS_LAYER,
                    &loc,
                    format!("references {name:?}, which names no concept in the hierarchy — the rule can never fire"),
                ));
            }
        }
        // A rule that excludes part of its own premise rejects every
        // selection it applies to.
        if let CompatRuleSpec::Excludes { premise, then_not } = rule {
            if premise.contains(then_not) {
                report.push(Diagnostic::new(
                    diag::CONTRADICTORY_COMPAT_RULES,
                    CROSS_LAYER,
                    &loc,
                    format!("excludes {then_not:?}, which is part of its own premise"),
                ));
            }
        }
    }
    // Requires/Excludes pairs over the same concept whose premises are
    // in a subset relation: any selection satisfying the larger premise
    // fires both rules, demanding the concept and forbidding it at once.
    for (i, a) in input.compat.iter().enumerate() {
        let CompatRuleSpec::Requires { premise: req_p, then } = a else { continue };
        for (j, b) in input.compat.iter().enumerate() {
            let CompatRuleSpec::Excludes { premise: exc_p, then_not } = b else { continue };
            if then != then_not {
                continue;
            }
            let req: BTreeSet<&String> = req_p.iter().collect();
            let exc: BTreeSet<&String> = exc_p.iter().collect();
            if req.is_subset(&exc) || exc.is_subset(&req) {
                report.push(Diagnostic::new(
                    diag::CONTRADICTORY_COMPAT_RULES,
                    CROSS_LAYER,
                    format!("compat rules #{i} and #{j}"),
                    format!("one requires {then:?} and the other excludes it under overlapping premises"),
                ));
            }
        }
    }

    report
}
