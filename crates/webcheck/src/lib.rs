//! # webbase-webcheck
//!
//! Cross-layer static analysis for the webbase: reject a broken spec at
//! **load time**, not ten fetches into a query. Three passes:
//!
//! 1. **Map linting** ([`map_lint`]) — the recorded [`NavigationMap`]
//!    is internally coherent: reachability, edge hygiene, mandatory
//!    coverage, handle viability. Codes `W001`–`W005`, `E101`–`E104`.
//! 2. **Program safety** ([`program`]) — the compiled Transaction
//!    F-logic program is runnable: range restriction, resolvable calls,
//!    live rules, and molecules conforming to the Figure 3 signatures.
//!    Codes `W011`–`W012`, `E111`–`E114`.
//! 3. **Cross-layer conformance** ([`cross`]) — the logical schema, the
//!    VPS catalog, and the UR's compatibility rules agree. Codes
//!    `W021`, `E121`–`E124`.
//!
//! All passes speak the [`diag`] vocabulary: stable codes, severities,
//! locations, one rendered [`Report`]. `E`-level findings mean the spec
//! must be rejected; `W`-level findings load with a warning.
//!
//! The passes are pure functions over already-built artefacts — running
//! them costs nothing on the query path.

pub mod cross;
pub mod diag;
pub mod manifest;
pub mod map_lint;
pub mod program;
pub mod semantic;
pub mod signatures;

pub use cross::{
    check_cross_layer, CompatRuleSpec, CrossLayerInput, HandleSpec, LogicalSpec, VpsRelSpec,
    CROSS_LAYER,
};
pub use diag::{render_code_table, Code, Diagnostic, Report, Severity};
pub use manifest::{check_manifest, reported_codes, ManifestCheck};
pub use map_lint::check_map;
pub use program::{check_compiled, check_program, ORACLE_BUILTINS};
pub use semantic::{check_semantics, site_semantics, Bound, CostInterval, SiteSemantics};
pub use signatures::{navigation_index, navigation_signatures};

use webbase_navigation::compile::compile_map;
use webbase_navigation::map::NavigationMap;

/// The complete per-site analysis: passes 1 (map lint), 2 (program
/// safety), and 4 (semantic/abstract interpretation), plus the derived
/// [`SiteSemantics`] the runtime consumes. This is the **single**
/// map-ingestion entry point — every path that loads a map (catalog
/// `add_map`, engine build, hot reload) goes through it, so no loaded
/// map can skip a pass.
pub fn analyze_full(map: &NavigationMap) -> (Report, SiteSemantics) {
    let mut report = map_lint::check_map(map);
    if !report.has_errors() {
        let compiled = compile_map(map);
        report.merge(program::check_compiled(&map.site, &compiled));
    }
    report.merge(semantic::check_semantics(map));
    (report, semantic::site_semantics(map))
}

/// Run all analysis passes over one site's map, discarding the derived
/// semantics (callers that also want them use [`analyze_full`]).
/// An E-level map finding short-circuits pass 2, which assumes a map
/// lint-clean enough to compile.
pub fn check_site(map: &NavigationMap) -> Report {
    analyze_full(map).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use webbase_html::extract::WidgetKind;
    use webbase_navigation::extractor::{CellParse, ExtractionSpec, FieldSpec};
    use webbase_navigation::map::{NavigationMap, NodeKind};
    use webbase_navigation::model::{ActionDescr, FieldDescr, FormDescr, LinkDescr};

    /// A healthy miniature of the Figure 2 map (mirrors the compile
    /// fixture): home --link--> form page --submit--> data page with a
    /// More loop, catalogue kept in sync with the edges.
    fn mini_map() -> NavigationMap {
        let mut m = NavigationMap::new("www.newsday.com");
        let home = m.add_node("HomePg", "/|", "Newsday");
        let used = m.add_node("UsedCarPg", "/auto/used|form", "Used cars");
        let data = m.add_node("DataPg", "/cgi|table", "Listings");
        m.entry = home;
        let used_link = LinkDescr { name: "Used Cars".into(), href: "/auto/used".into() };
        m.node_mut(home).actions.push(ActionDescr::Follow(used_link.clone()));
        m.add_edge(home, used, ActionDescr::Follow(used_link));
        let form = FormDescr {
            cgi: "/cgi-bin/nclassy".into(),
            method: "post".into(),
            fields: vec![FieldDescr {
                name: "make".into(),
                attr: "make".into(),
                widget: WidgetKind::Select { options: vec!["ford".into()] },
                mandatory: true,
                manual_facts: 0,
                fixed_value: None,
                default: None,
            }],
        };
        m.node_mut(used).actions.push(ActionDescr::Submit(form.clone()));
        m.add_edge(used, data, ActionDescr::Submit(form));
        let more = LinkDescr { name: "More".into(), href: "/cgi?page=1".into() };
        m.node_mut(data).actions.push(ActionDescr::Follow(more.clone()));
        m.add_edge(data, data, ActionDescr::Follow(more));
        m.node_mut(data).kind = NodeKind::Data(ExtractionSpec::Table {
            fields: vec![
                FieldSpec::new("Make", "make", CellParse::Text),
                FieldSpec::new("Price", "price", CellParse::Number),
            ],
        });
        m.register_relation("newsday", data);
        m
    }

    #[test]
    fn healthy_map_is_clean() {
        let report = check_site(&mini_map());
        assert!(report.is_clean(), "unexpected findings:\n{}", report.render());
    }

    #[test]
    fn unreachable_node_w001() {
        let mut m = mini_map();
        m.add_node("LonelyPg", "/x|", "X");
        let report = check_site(&m);
        assert_eq!(report.with_code("W001").len(), 1, "{}", report.render());
        assert!(!report.has_errors());
    }

    #[test]
    fn conflicting_exemplar_insertion_w002() {
        let mut m = mini_map();
        let submit = m.edges[1].action.clone();
        m.add_edge_with(1, 2, submit, vec![("make".into(), "jaguar".into())]);
        let report = check_site(&m);
        assert_eq!(report.with_code("W002").len(), 1, "{}", report.render());
    }

    #[test]
    fn ambiguous_targets_w003() {
        let mut m = mini_map();
        // The same link action, same (empty) exemplar, recorded toward a
        // second target.
        let detour = m.add_node("DetourPg", "/detour|", "Detour");
        let link = LinkDescr { name: "Used Cars".into(), href: "/auto/used".into() };
        m.add_edge(0, detour, ActionDescr::Follow(link));
        let report = check_map(&m);
        assert_eq!(report.with_code("W003").len(), 1, "{}", report.render());
    }

    #[test]
    fn stateless_more_loop_w004() {
        let mut m = mini_map();
        let more = LinkDescr { name: "More".into(), href: "/more".into() };
        m.node_mut(2).actions.push(ActionDescr::Follow(more.clone()));
        m.add_edge(2, 2, ActionDescr::Follow(more));
        let report = check_site(&m);
        assert_eq!(report.with_code("W004").len(), 1, "{}", report.render());
    }

    #[test]
    fn uncatalogued_edge_w005() {
        let mut m = mini_map();
        // Simulate catalogue drift: the page's recorded links no longer
        // include the anchor the edge relies on.
        m.node_mut(0).actions.clear();
        let report = check_site(&m);
        assert_eq!(report.with_code("W005").len(), 1, "{}", report.render());
    }

    #[test]
    fn unreachable_data_node_e101() {
        let mut m = mini_map();
        m.edges.retain(|e| !(e.from == 1 && e.to == 2)); // sever the submit hop
        let report = check_site(&m);
        assert!(!report.with_code("E101").is_empty(), "{}", report.render());
        assert!(report.has_errors());
    }

    #[test]
    fn relation_on_plain_page_e102() {
        let mut m = mini_map();
        m.register_relation("bogus", 1); // node 1 has no extraction script
        let report = check_site(&m);
        assert_eq!(report.with_code("E102").len(), 1, "{}", report.render());
    }

    #[test]
    fn dropped_mandatory_field_e103() {
        let mut m = mini_map();
        // The edge's recorded form lost the mandatory make field the
        // page's catalogue still shows.
        if let ActionDescr::Submit(f) = &mut m.edges[1].action {
            f.fields.clear();
        }
        let report = check_site(&m);
        assert!(!report.with_code("E103").is_empty(), "{}", report.render());
    }

    #[test]
    fn mandatory_outside_schema_e104() {
        let mut m = mini_map();
        // A mandatory zip field the relation schema cannot supply, on
        // both the catalogue and the edge copy of the form.
        let zip = FieldDescr {
            name: "zip".into(),
            attr: "zip".into(),
            widget: WidgetKind::Radio { options: vec!["10001".into()] },
            mandatory: true,
            manual_facts: 0,
            fixed_value: None,
            default: None,
        };
        if let ActionDescr::Submit(f) = &mut m.edges[1].action {
            f.fields.push(zip.clone());
        }
        if let ActionDescr::Submit(f) = &mut m.node_mut(1).actions[0] {
            f.fields.push(zip);
        }
        let report = check_site(&m);
        assert_eq!(report.with_code("E104").len(), 1, "{}", report.render());
    }

    #[test]
    fn compiled_mini_map_program_is_safe() {
        let compiled = webbase_navigation::compile::compile_map(&mini_map());
        let report = check_compiled("www.newsday.com", &compiled);
        assert!(report.is_clean(), "{}", report.render());
    }
}
