//! Querying a hostile Web: every site 500s on every 7th request, and the
//! jaguar query still returns its full answer — with a degradation
//! report saying which sites misbehaved (the README's fault-injection
//! example, runnable).

use webbase::{LatencyModel, Webbase};
use webbase_webworld::faults::FlakySite;
use webbase_webworld::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = Dataset::generate(11, 400);
    // Every site 500s on every 7th request.
    let web = standard_web_faulty(data.clone(), LatencyModel::lan(), |_host, site| {
        Box::new(FlakySite::new(site, 7)) as Box<dyn webbase_webworld::server::Site>
    });
    let mut wb = Webbase::build_on(web, data)?;
    let (result, plan) = wb.query(
        "UsedCarUR(make='jaguar', model, year >= 1993, price, bbprice, \
         safety='good', condition='good') WHERE price < bbprice",
    )?;
    assert!(!result.is_empty()); // retries recovered every answer
    println!("{}", result.to_table());
    println!("Site degradation:\n{}", plan.degradation.render());
    Ok(())
}
