//! Quickstart: build the paper's used-car webbase and run the §1 query.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! This stands up the simulated 1999 Web (thirteen car-domain sites),
//! replays the designer's mapping-by-example sessions, wires the three
//! layers, and runs the paper's opening example: *"make a list of used
//! Jaguars advertised in New York City area, such that each car is a
//! 1993 or later model, has good safety ratings, and its selling price
//! is less than its Blue Book value."*

use webbase::{LatencyModel, Webbase};

fn main() {
    println!("Building the used-car webbase (simulated Web, 13 sites)…\n");
    let mut wb = Webbase::build_demo(42, 600, LatencyModel::lan());
    println!("{}", wb.report.render());

    let query = "UsedCarUR(make='jaguar', model, year >= 1993, price, bbprice, \
                 safety='good', condition='good') WHERE price < bbprice";
    println!("Query:\n  {query}\n");

    let plan = wb.explain(query).expect("query plans");
    println!("{}", plan.render());

    let (result, _) = wb.query(query).expect("query runs");
    println!("Answers ({} rows):\n{}", result.len(), result.to_table());

    let stats = &wb.layer.vps.stats;
    println!(
        "Pages fetched while answering: {} (simulated network {:?}, cpu {:?})",
        stats.total_pages(),
        stats.total_network(),
        stats.total_cpu()
    );
}
