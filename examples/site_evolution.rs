//! Map maintenance against evolving sites — the §7 Kelly's-1999 case.
//!
//! ```bash
//! cargo run --example site_evolution
//! ```
//!
//! Records navigation maps against version 1 of the sites, then points
//! them at version 2 (Kelly's gains its "1999 Models" link and year;
//! Newsday adds a hub link and a form checkbox). The maintenance pass
//! detects every change, applies the auto-applicable ones in place, and
//! reports what would need the designer.

use webbase_navigation::maintenance::check_map;
use webbase_navigation::recorder::Recorder;
use webbase_navigation::sessions;
use webbase_webworld::prelude::*;
use webbase_webworld::sites::standard_web_versioned;

fn main() {
    let data = Dataset::generate(42, 600);
    let web_v1 = standard_web_versioned(data.clone(), LatencyModel::lan(), 1);
    let web_v2 = standard_web_versioned(data.clone(), LatencyModel::lan(), 2);

    for (host, session) in
        [("www.kbb.com", sessions::kellys()), ("www.newsday.com", sessions::newsday(&data))]
    {
        println!("=== {host} ===\n");
        let (mut map, _) = Recorder::record(web_v1.clone(), host, &session).expect("records on v1");

        println!("checking the v1 map against the unchanged site…");
        let clean = check_map(web_v1.clone(), &mut map);
        println!(
            "  {} changes, {} unreachable — clean: {}\n",
            clean.changes.len(),
            clean.unreachable.len(),
            clean.is_clean()
        );

        println!("checking the v1 map against the evolved site (v2)…");
        let report = check_map(web_v2.clone(), &mut map);
        for (node, change) in &report.changes {
            println!(
                "  node {} [{}]: {:?} → {:?}",
                node,
                map.node(*node).name,
                change,
                change.severity()
            );
        }
        println!(
            "\n  auto-applied: {}   manual intervention needed: {}",
            report.auto_applied, report.manual_needed
        );

        println!("\nre-checking after auto-repair…");
        let again = check_map(web_v2.clone(), &mut map);
        println!("  {} changes remain ({} manual)\n", again.changes.len(), again.manual_needed);
    }
}
