//! A shopping session against the structured universal relation —
//! several ad hoc queries of increasing sophistication, ending with the
//! paper's §6.2 lease query.
//!
//! ```bash
//! cargo run --example used_car_shopping
//! ```

use webbase::{LatencyModel, Webbase};

fn run(wb: &mut Webbase, title: &str, query: &str) {
    println!("── {title}\n   {query}\n");
    match wb.query(query) {
        Ok((result, plan)) => {
            for obj in &plan.objects {
                let names: Vec<&str> = obj.alternatives.iter().map(String::as_str).collect();
                println!("   object: {}", names.join(" ⋈ "));
            }
            println!("\n{}", indent(&result.to_table()));
        }
        Err(e) => println!("   ✗ {e}\n"),
    }
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("   {l}\n")).collect()
}

fn main() {
    let mut wb = Webbase::build_demo(42, 600, LatencyModel::lan());
    println!("UR attributes: {}\n", wb.ur_attributes().join(", "));

    run(&mut wb, "Cheap Fords anywhere", "UsedCarUR(make='ford', model, year, price < 6000)");

    run(
        &mut wb,
        "Safety ratings for a specific model",
        "UsedCarUR(make='honda', model='accord', year >= 1995, safety)",
    );

    run(
        &mut wb,
        "Jaguars under blue book (the paper's §1 query)",
        "UsedCarUR(make='jaguar', model, year >= 1993, price, bbprice, \
         safety='good', condition='good') WHERE price < bbprice",
    );

    run(
        &mut wb,
        "Monthly-payment shopping (§6.2): a computed column over price, rate, term",
        "UsedCarUR(make='jaguar', model, year >= 1994, price, rate, cost, \
         zip='10001', duration=36, condition='good', \
         payment := price * (1 + rate / 100 * duration / 12) / duration) \
         WHERE payment < 1000 AND price < bbprice",
    );

    // A query that cannot be answered without more bindings: the planner
    // explains rather than silently returning nothing.
    run(
        &mut wb,
        "Blue book without condition (refused: kellys insists on condition)",
        "UsedCarUR(make='ford', model='escort', bbprice)",
    );
}
