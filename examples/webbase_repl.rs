//! An interactive structured-UR shell — the "user interface that permits
//! a high degree of ad hoc querying by naive Web users" of §2, in its
//! plainest possible form.
//!
//! ```bash
//! cargo run --example webbase_repl
//! ```
//!
//! Commands:
//!
//! ```text
//! UsedCarUR(make='ford', model, price < 6000)   run a query
//! .attrs                                        list the UR attributes
//! .hierarchy                                    show Figure 5
//! .objects                                      show the maximal objects
//! .explain <query>                              plan without executing
//! .stats                                        pages fetched so far
//! .quit
//! ```

use std::io::{BufRead, Write};
use webbase::{LatencyModel, Webbase};
use webbase_ur::maximal::{maximal_objects, render_maximal};

fn main() {
    println!("building the used-car webbase…");
    let mut wb = Webbase::build_demo(42, 600, LatencyModel::lan());
    println!(
        "ready. {} sites mapped, {} UR attributes. Try:\n  \
         UsedCarUR(make='ford', model, year, price < 6000)\n  \
         (.attrs, .hierarchy, .objects, .explain <q>, .stats, .quit)\n",
        wb.maps.len(),
        wb.ur_attributes().len()
    );

    let stdin = std::io::stdin();
    loop {
        print!("UR> ");
        std::io::stdout().flush().expect("stdout flush");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".attrs" => println!("{}\n", wb.ur_attributes().join(", ")),
            ".hierarchy" => {
                println!("{}", wb.planner.hierarchy.render(&wb.ur_attributes()));
            }
            ".objects" => {
                let objects = maximal_objects(&wb.planner.hierarchy, &wb.planner.rules);
                println!("{}{}", wb.planner.rules.render(), render_maximal(&objects));
            }
            ".stats" => {
                let s = &wb.layer.vps.stats;
                println!(
                    "pages fetched: {}   simulated network: {:?}   interpreter cpu: {:?}\n",
                    s.total_pages(),
                    s.total_network(),
                    s.total_cpu()
                );
            }
            _ if line.starts_with(".explain") => {
                let q = line.trim_start_matches(".explain").trim();
                match wb.explain(q) {
                    Ok(plan) => println!("{}", plan.render()),
                    Err(e) => println!("✗ {e}\n"),
                }
            }
            query => match wb.query(query) {
                Ok((result, plan)) => {
                    for obj in &plan.objects {
                        let names: Vec<&str> =
                            obj.alternatives.iter().map(String::as_str).collect();
                        println!("-- object {}", names.join(" ⋈ "));
                    }
                    println!("{}({} rows)\n", result.to_table(), result.len());
                }
                Err(e) => println!("✗ {e}\n"),
            },
        }
    }
    println!("bye.");
}
