//! Building a webbase for a **new application domain** with nothing but
//! the public API — apartments instead of used cars.
//!
//! ```bash
//! cargo run --example apartment_hunting
//! ```
//!
//! The paper (§6): "webbases will be designed for application domains
//! (such as cars, jobs, houses) by the experts in those domains, and
//! designing concept hierarchies and compatibility constraints is a
//! feasible task for them." This example is that expert's workflow, end
//! to end:
//!
//! 1. map two rental sites by example;
//! 2. let the VPS derive the handles;
//! 3. define the logical relations;
//! 4. define the concept hierarchy;
//! 5. ask for apartments renting *below the fair-rent guideline* —
//!    the apartment-domain twin of the jaguar-under-blue-book query.

use std::sync::Arc;
use webbase_logical::{LogicalLayer, LogicalRelation};
use webbase_navigation::extractor::{CellParse, ExtractionSpec, FieldSpec};
use webbase_navigation::recorder::{DesignerAction, Recorder};
use webbase_relational::prelude::*;
use webbase_ur::compat::CompatRules;
use webbase_ur::hierarchy::{Alternative, ChoiceGroup, Hierarchy};
use webbase_ur::plan::UrPlanner;
use webbase_ur::query::parse_query;
use webbase_vps::VpsCatalog;
use webbase_webworld::prelude::*;
use webbase_webworld::sites::{AptListings, AptMarket, RentGuide};

fn main() {
    // ── 0. The (simulated) raw Web of the new domain. ────────────────
    let market = AptMarket::generate(42, 150);
    let web = SyntheticWeb::builder()
        .site(AptListings::new(market.clone()))
        .site(RentGuide::new())
        .latency(LatencyModel::lan())
        .build();

    // ── 1. Mapping by example: the designer browses each site once. ──
    let listings_session = vec![
        DesignerAction::Goto("http://www.aptlistings.com/".into()),
        DesignerAction::SubmitForm {
            action: "/cgi-bin/find".into(),
            values: vec![("borough".into(), "brooklyn".into())],
        },
        DesignerAction::MarkDataPage {
            relation: "aptListings".into(),
            spec: ExtractionSpec::Table {
                fields: vec![
                    FieldSpec::new("Borough", "borough", CellParse::Text),
                    FieldSpec::new("Bedrooms", "bedrooms", CellParse::Number),
                    FieldSpec::new("Rent", "rent", CellParse::Number),
                    FieldSpec::new("Contact", "contact", CellParse::Text),
                ],
            },
        },
        DesignerAction::FollowLink("More".into()),
    ];
    let guide_session = vec![
        DesignerAction::Goto("http://www.rentguide.com/".into()),
        DesignerAction::SubmitForm {
            action: "/cgi-bin/guide".into(),
            values: vec![("borough".into(), "queens".into()), ("beds".into(), "1".into())],
        },
        DesignerAction::MarkDataPage {
            relation: "rentGuide".into(),
            spec: ExtractionSpec::Table {
                fields: vec![
                    FieldSpec::new("Borough", "borough", CellParse::Text),
                    FieldSpec::new("Bedrooms", "bedrooms", CellParse::Number),
                    FieldSpec::new("Fair Rent", "fairrent", CellParse::Number),
                ],
            },
        },
    ];

    // The domain expert supplies the domain's attribute vocabulary —
    // the recorder's default standardiser knows cars, not apartments.
    // One manual mapping (beds → bedrooms) covers both sites' forms.
    let standardizer = || {
        let mut s = webbase_relational::standardize::Standardizer::new([
            "borough", "bedrooms", "rent", "contact", "fairrent",
        ]);
        s.map("beds", "bedrooms");
        s
    };

    let mut catalog = VpsCatalog::new();
    for (host, session) in
        [("www.aptlistings.com", listings_session), ("www.rentguide.com", guide_session)]
    {
        let mut recorder = Recorder::with_standardizer(web.clone(), host, standardizer());
        for action in &session {
            recorder.apply(action).expect("designer action applies");
        }
        let (map, stats) = recorder.finish();
        println!(
            "mapped {host}: {} objects, {} attrs, {} manual facts, {} auto-standardised",
            stats.objects, stats.attributes, stats.manual_facts, stats.auto_standardized
        );
        catalog.add_map(web.clone(), map);
    }
    println!("\n{}", catalog.render_table1());
    println!("{}", catalog.render_table3());

    // ── 2./3. The logical layer (trivial here: one relation per site). ─
    let relations = vec![
        LogicalRelation::new(
            "listings",
            Expr::relation("aptListings").project(["borough", "bedrooms", "rent", "contact"]),
        ),
        LogicalRelation::new(
            "guidelines",
            Expr::relation("rentGuide").project(["borough", "bedrooms", "fairrent"]),
        ),
    ];
    let mut layer = LogicalLayer::new(catalog, relations);
    println!("{}", layer.binding_report());

    // ── 4. The external schema: a two-concept hierarchy, no traps. ───
    let hierarchy = Hierarchy {
        ur_name: "AptUR".into(),
        groups: vec![
            ChoiceGroup {
                name: "Listings".into(),
                alternatives: vec![Alternative::new("Listings", "listings")],
            },
            ChoiceGroup {
                name: "FairRent".into(),
                alternatives: vec![Alternative::new("FairRent", "guidelines")],
            },
        ],
    };
    let planner = UrPlanner::new(hierarchy, CompatRules::default());

    // ── 5. Ad hoc queries against AptUR. ─────────────────────────────
    for text in [
        "AptUR(borough='brooklyn', bedrooms=2, rent, contact) WHERE rent < fairrent",
        "AptUR(borough='manhattan', bedrooms=1, rent, fairrent)",
    ] {
        println!("── {text}\n");
        let q = parse_query(text).expect("parses");
        match planner.execute(&q, &mut layer) {
            Ok((result, plan)) => {
                print!("{}", plan.render());
                println!("{}", result.to_table());
            }
            Err(e) => println!("✗ {e}"),
        }
    }

    // Sanity against ground truth, so the example doubles as a check.
    let q =
        parse_query("AptUR(borough='brooklyn', bedrooms=2, rent, contact) WHERE rent < fairrent")
            .expect("parses");
    let (result, _) = planner.execute(&q, &mut layer).expect("runs");
    let expected = expected_bargains(&market, "brooklyn", 2);
    assert_eq!(result.len(), expected, "webbase disagrees with ground truth");
    println!("ground-truth check: {} bargain(s) ✓", result.len());
}

fn expected_bargains(market: &Arc<AptMarket>, borough: &str, beds: u32) -> usize {
    use std::collections::BTreeSet;
    let guide = webbase_webworld::sites::apartments::fair_rent(borough, beds);
    market
        .matching(Some(borough), Some(beds))
        .into_iter()
        .filter(|a| a.rent < guide)
        .map(|a| (a.rent, a.contact.clone()))
        .collect::<BTreeSet<_>>()
        .len()
}
