//! Mapping by example, step by step — the §7 map builder on the
//! simulated Newsday site.
//!
//! ```bash
//! cargo run --example mapping_by_example
//! ```
//!
//! Shows the designer's browsing session being folded into a navigation
//! map (Figure 2), the §7 automation statistics, and the Transaction
//! F-logic navigation program compiled from the map (Figure 4).

use webbase_navigation::executor::SiteNavigator;
use webbase_navigation::recorder::Recorder;
use webbase_navigation::sessions;
use webbase_relational::Value;
use webbase_webworld::prelude::*;

fn main() {
    let data = Dataset::generate(42, 600);
    let web = standard_web(data.clone(), LatencyModel::lan());

    println!("=== The designer's session (mapping by example) ===\n");
    let session = sessions::newsday(&data);
    for (i, action) in session.iter().enumerate() {
        println!("  step {i:>2}: {action:?}");
    }

    let (map, stats) = Recorder::record(web.clone(), "www.newsday.com", &session).expect("records");

    println!("\n=== The navigation map (Figure 2) ===\n");
    println!("{}", map.render_text());
    println!("GraphViz DOT:\n{}", map.render_dot());

    println!("=== §7 automation statistics ===\n");
    println!(
        "  {} objects, {} attributes extracted automatically; {} manual facts ({:.1}%)\n",
        stats.objects,
        stats.attributes,
        stats.manual_facts,
        100.0 * stats.manual_ratio()
    );

    println!("=== Compiled navigation program (Figure 4) ===\n");
    let nav = SiteNavigator::new(web, map);
    println!("{}", nav.render_program());

    println!("=== Executing newsday(make='ford', model='escort', …) ===\n");
    let (records, run) = nav
        .run_relation(
            "newsday",
            &[
                ("make".to_string(), Value::str("ford")),
                ("model".to_string(), Value::str("escort")),
            ],
        )
        .expect("navigation runs");
    for r in &records {
        println!(
            "  {} {} {} — ${} — {}",
            r["make"], r["model"], r["year"], r["price"], r["contact"]
        );
    }
    println!(
        "\n  {} tuples, {} pages fetched ({} cache hits), simulated network {:?}",
        records.len(),
        run.pages_fetched,
        run.cache_hits,
        run.network
    );

    println!("\n=== The map, serialised as F-logic facts ===\n");
    // "A navigation map is a collection of F-logic objects" — so that is
    // exactly how it persists. The fact text reloads into an identical,
    // executable map.
    let facts = webbase_navigation::persist::render_facts(&nav.map);
    for line in facts.lines().take(14) {
        println!("  {line}");
    }
    println!("  … ({} lines total)", facts.lines().count());
    let reloaded = webbase_navigation::persist::parse_map(&facts).expect("facts reload");
    assert_eq!(reloaded, nav.map);
    println!("  reloaded map is identical: ✓");
}
