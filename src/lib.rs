//! # webbase-suite
//!
//! The umbrella package of the webbase reproduction: it hosts the
//! runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`), and re-exports every workspace crate for
//! convenience.
//!
//! Start with `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --example quickstart
//! ```

pub use webbase;
pub use webbase_flogic as flogic;
pub use webbase_html as html;
pub use webbase_logical as logical;
pub use webbase_navigation as navigation;
pub use webbase_relational as relational;
pub use webbase_ur as ur;
pub use webbase_vps as vps;
pub use webbase_webworld as webworld;
