//! The freshness contract, end to end: **a maintained view is
//! indistinguishable from a cold re-run** at the same web generation.
//!
//! Sites carry seeded mutation schedules ([`MutatingSite`]) switched on
//! by explicit generation clocks, so the web's state is a pure function
//! of `(request, generation)` — never of traffic. After every refresh
//! the engine's served answers are compared against `query_isolated`
//! oracles that re-fetch the live (mutated) web from scratch, and the
//! `stale_served` tripwire must stay at zero throughout.
//!
//! The dataset seed comes from `WEBBASE_TEST_SEED` (CI sweeps 11/23/47)
//! and the suite must pass both threaded and under
//! `RUST_TEST_THREADS=1`.

mod common;

use common::{seed, JAGUAR_QUERY};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;
use webbase::engine::{Engine, EngineConfig, QueryOptions};
use webbase::{LatencyModel, Relation};
use webbase_navigation::DriftOrigin;
use webbase_webworld::data::Dataset;
use webbase_webworld::faults::{seeded_schedule, MutatingSite, Mutation, MutationClock};
use webbase_webworld::prelude::*;
use webbase_webworld::server::Site;

const FORD: &str = "UsedCarUR(make='ford', price)";
const NYTIMES: &str = "www.nytimes.com";
const NYDAILY: &str = "www.nydailynews.com";
const KELLYS: &str = "www.kbb.com";
const NEWSDAY: &str = "www.newsday.com";

/// The drift pool: one scheduled mutation per site. Three are
/// data-only price rewrites (delta- or cold-refreshable); the newsday
/// form rename is manual-intervention drift that quarantines during the
/// rebuild — the ladder's last rung.
fn drift_pool() -> Vec<(&'static str, Mutation)> {
    vec![
        (NYTIMES, Mutation::new("$", "$1")),
        (KELLYS, Mutation::new("$", "$2").on_path("/cgi-bin/bb")),
        (NYDAILY, Mutation::new("$", "$3")),
        (NEWSDAY, Mutation::new("name=make>", "name=mk2>").on_path("/auto/used")),
    ]
}

/// An engine over the standard web with every `hosts` site wrapped in a
/// [`MutatingSite`]; mutations are inert at generation 0, so the
/// navigation maps record against the healthy web.
fn drifting_engine(
    schedules: &[(&str, Vec<Mutation>)],
) -> (Engine, HashMap<String, MutationClock>) {
    let data = Dataset::generate(seed(), 400);
    let clocks: Mutex<HashMap<String, MutationClock>> = Mutex::new(HashMap::new());
    let web = standard_web_faulty(data.clone(), LatencyModel::lan(), |h, s| {
        match schedules.iter().find(|(host, _)| *host == h) {
            Some((host, schedule)) => {
                let (site, clock) = MutatingSite::new(s, schedule.clone());
                clocks.lock().expect("clocks").insert(host.to_string(), clock);
                Box::new(site) as Box<dyn Site>
            }
            None => s,
        }
    });
    let engine = Engine::build_on(web, data, EngineConfig::default()).expect("builds");
    let clocks = clocks.into_inner().expect("clocks");
    assert_eq!(clocks.len(), schedules.len(), "every scheduled host must exist in the web");
    (engine, clocks)
}

fn served(engine: &Engine, text: &str) -> Relation {
    engine.query("tenant", text, QueryOptions::default()).expect("query runs").relation
}

fn oracle(engine: &Engine, text: &str) -> Relation {
    engine.query_isolated("oracle", text, QueryOptions::default()).expect("oracle runs").relation
}

/// Refresh everything, then check the freshness contract for `queries`:
/// every served answer equals a cold isolated re-run at the current
/// generation, and nothing stale was ever served.
fn checkpoint(
    engine: &Engine,
    queries: &[&str],
) -> Result<(), proptest::test_runner::TestCaseError> {
    engine.refresh(None, DriftOrigin::Maintenance, None, None);
    for text in queries {
        let fresh = oracle(engine, text);
        let answer = served(engine, text);
        prop_assert_eq!(
            &answer,
            &fresh,
            "maintained view for {} diverged from a cold re-run",
            text
        );
    }
    prop_assert_eq!(engine.stats().stale_served, 0, "stale answer served");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Arbitrary interleavings of per-site drift and maintenance: after
    /// every refresh, served answers equal cold re-runs and
    /// `stale_served` stays zero — across delta refreshes, cold
    /// rebuilds, and quarantining structural drift alike.
    #[test]
    fn maintained_views_equal_cold_reruns_under_arbitrary_drift(
        ops in proptest::collection::vec(0usize..5, 1..8),
    ) {
        let pool = drift_pool();
        let schedules: Vec<(&str, Vec<Mutation>)> =
            pool.iter().map(|(h, m)| (*h, vec![m.clone()])).collect();
        let (engine, clocks) = drifting_engine(&schedules);

        // Prime the cache at generation 0 and sanity-check it.
        checkpoint(&engine, &[FORD, JAGUAR_QUERY])?;

        for op in ops {
            match op {
                0..=3 => {
                    let host = pool[op].0;
                    clocks[host].advance();
                }
                _ => checkpoint(&engine, &[FORD, JAGUAR_QUERY])?,
            }
        }
        // However the storm ended, the final state must converge.
        checkpoint(&engine, &[FORD, JAGUAR_QUERY])?;
    }
}

/// A seeded multi-step drift storm on one site: the schedule order
/// comes from [`seeded_schedule`] under the CI seed, and the engine is
/// held to the freshness contract at every generation.
#[test]
fn seeded_storm_refreshes_to_cold_equivalence_at_every_generation() {
    let pool =
        vec![Mutation::new("$", "$1"), Mutation::new("$1", "$2"), Mutation::new("ford", "fordx")];
    let schedule = seeded_schedule(seed(), &pool, pool.len());
    let (engine, clocks) = drifting_engine(&[(NYTIMES, schedule.clone())]);
    let clock = &clocks[NYTIMES];

    let healthy = served(&engine, FORD);
    for generation in 1..=schedule.len() as u64 {
        clock.set(generation);
        let report = engine.refresh(Some(NYTIMES), DriftOrigin::Maintenance, None, None);
        let fresh = oracle(&engine, FORD);
        let answer = served(&engine, FORD);
        assert_eq!(
            answer, fresh,
            "generation {generation}: maintained view diverged from a cold re-run ({report:?})"
        );
    }
    assert_ne!(served(&engine, FORD), healthy, "the storm must be answer-visible");
    let stats = engine.stats();
    assert_eq!(stats.stale_served, 0, "{stats:?}");
    assert!(stats.view_invalidated >= 1, "drift never invalidated anything: {stats:?}");
}

/// Concurrent tenants querying across a refresh never observe a torn
/// generation: every answer equals the cold re-run at the old or the
/// new generation — nothing in between, nothing stale.
#[test]
fn concurrent_queries_across_a_refresh_see_whole_generations() {
    let (engine, clocks) = drifting_engine(&[(NYTIMES, vec![Mutation::new("$", "$1")])]);
    let before = served(&engine, FORD);
    clocks[NYTIMES].advance();
    let after = oracle(&engine, FORD);
    assert_ne!(before, after, "the mutation must be answer-visible");

    std::thread::scope(|s| {
        let refresher = s.spawn(|| {
            engine.refresh(Some(NYTIMES), DriftOrigin::Maintenance, None, None);
        });
        let tenants: Vec<_> = (0..4)
            .map(|t| {
                let engine = &engine;
                s.spawn(move || {
                    (0..6)
                        .map(|_| {
                            engine
                                .query(&format!("tenant{t}"), FORD, QueryOptions::default())
                                .expect("query survives the refresh")
                                .relation
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for t in tenants {
            for answer in t.join().expect("tenant thread") {
                assert!(
                    answer == before || answer == after,
                    "a tenant observed a torn generation: neither the old nor the new answer"
                );
            }
        }
        refresher.join().expect("refresher thread");
    });

    // Post-refresh steady state: the new generation, atomically.
    assert_eq!(served(&engine, FORD), after, "post-refresh answer is not the new generation");
    assert_eq!(engine.stats().stale_served, 0);
}
