//! Cross-crate integration tests: the full pipeline from designer
//! session to UR answers, checked against the dataset's ground truth.

use std::sync::Arc;
use webbase::{LatencyModel, Webbase};
use webbase_relational::eval::RelationProvider;
use webbase_relational::prelude::*;
use webbase_webworld::data::{
    blue_book_price_typed, insurance_cost, safety_rating, Dataset, SiteSlice,
};

fn demo() -> Webbase {
    Webbase::build_demo(11, 600, LatencyModel::lan())
}

/// Ads for a make across the slices the `classifieds` logical relation
/// covers.
fn classifieds_truth(data: &Arc<Dataset>, make: &str) -> usize {
    [SiteSlice::Newsday, SiteSlice::NyTimes, SiteSlice::NewYorkDaily]
        .iter()
        .map(|s| data.matching(*s, Some(make), None).len())
        .sum()
}

#[test]
fn classifieds_collects_every_ground_truth_ad() {
    let mut wb = demo();
    let data = wb.data.clone();
    for make in ["ford", "jaguar", "volvo"] {
        let rel = wb
            .layer
            .fetch("classifieds", &AccessSpec::new().with("make", make))
            .expect("classifieds fetch");
        assert_eq!(
            rel.len(),
            classifieds_truth(&data, make),
            "classifieds({make}) disagrees with ground truth"
        );
    }
}

#[test]
fn ur_query_price_below_book_matches_ground_truth() {
    let mut wb = demo();
    let data = wb.data.clone();
    let (result, _) = wb
        .query(
            "UsedCarUR(make='bmw', model, year, price, bbprice, condition='good') \
             WHERE price < bbprice",
        )
        .expect("query runs");
    // Ground truth over classifieds + dealers slices, deduped by the
    // projected attributes (set semantics).
    let mut expected = std::collections::BTreeSet::new();
    for slice in [
        SiteSlice::Newsday,
        SiteSlice::NyTimes,
        SiteSlice::NewYorkDaily,
        SiteSlice::CarPoint,
        SiteSlice::AutoWeb,
    ] {
        for ad in data.matching(slice, Some("bmw"), None) {
            // Kelly's v1 form only offers model years 1988–1998 (the
            // 1999 option arrives with the versioned web), so 1999 ads
            // cannot be priced and never join with blue_price.
            if ad.year > 1998 {
                continue;
            }
            let bb = blue_book_price_typed(&ad.make, &ad.model, ad.year, "good", "retail");
            if ad.price < bb {
                expected.insert((ad.model.clone(), ad.year, ad.price, bb));
            }
        }
    }
    assert_eq!(result.len(), expected.len());
}

#[test]
fn safety_and_insurance_attributes_agree_with_generators() {
    let mut wb = demo();
    let (result, _) = wb
        .query("UsedCarUR(make='saab', model='900', year, safety, cost, condition='good')")
        .expect("query runs");
    assert!(!result.is_empty());
    let yi = result.schema().index_of(&"year".into()).expect("year");
    let si = result.schema().index_of(&"safety".into()).expect("safety");
    let ci = result.schema().index_of(&"cost".into()).expect("cost");
    for t in result.tuples() {
        let year = t.get(yi).as_int().expect("year int") as u32;
        assert_eq!(
            t.get(si),
            &Value::str(safety_rating("saab", "900", year)),
            "safety generator mismatch"
        );
        // cost is full or liability depending on the object — either is a
        // valid generator output.
        let cost = t.get(ci).as_int().expect("cost int") as u32;
        assert!(
            cost == insurance_cost("saab", "900", year, "full")
                || cost == insurance_cost("saab", "900", year, "liability"),
            "insurance generator mismatch: {cost}"
        );
    }
}

#[test]
fn scoped_constants_do_not_leak_across_roles() {
    // The unique-role regression: zip belongs to the finance concept; a
    // dealer's own zip (projected away in the logical view) must not be
    // filtered by it.
    let mut wb = demo();
    // Both queries restrict to 1993+ (the finance site only quotes cars
    // it knows, ≥ 1993) so the only difference is the rate join itself.
    let with_zip = wb
        .query(
            "UsedCarUR(make='toyota', model='camry', year >= 1993, price, rate, \
             zip='10001', duration=36)",
        )
        .expect("query runs");
    let without_rate = wb
        .query("UsedCarUR(make='toyota', model='camry', year >= 1993, price)")
        .expect("query runs");
    // Every camry ad appears in both: compare the distinct (year, price)
    // pairs. (Row counts differ legitimately — the rate query unions the
    // Loan and Lease objects, which quote different rates per ad.)
    let pairs = |rel: &Relation| -> std::collections::BTreeSet<(i64, i64)> {
        let yi = rel.schema().index_of(&"year".into()).expect("year");
        let pi = rel.schema().index_of(&"price".into()).expect("price");
        rel.tuples()
            .iter()
            .map(|t| (t.get(yi).as_int().expect("year"), t.get(pi).as_int().expect("price")))
            .collect()
    };
    assert_eq!(pairs(&with_zip.0), pairs(&without_rate.0));
}

#[test]
fn relaxed_union_returns_partial_answers() {
    use webbase_logical::{paper_schema, LogicalLayer};
    use webbase_navigation::recorder::Recorder;
    use webbase_navigation::sessions;
    use webbase_vps::VpsCatalog;
    use webbase_webworld::prelude::*;

    // Build a layer whose `classifieds` union has one un-invocable side:
    // record only the Newsday map, then define classifieds over newsday ∪
    // nyTimes (nyTimes unmapped → unknown relation → strict union fails).
    let data = Dataset::generate(11, 300);
    let web = standard_web(data.clone(), LatencyModel::lan());
    let mut cat = VpsCatalog::new();
    let (map, _) = Recorder::record(web.clone(), "www.newsday.com", &sessions::newsday(&data))
        .expect("records");
    cat.add_map(web, map);
    let layer = LogicalLayer::new(cat, paper_schema());

    let mut strict = layer;
    let err = strict.fetch("classifieds", &AccessSpec::new().with("make", "ford"));
    assert!(err.is_err(), "strict union must fail with unmapped sides");

    let mut relaxed = strict.with_relaxed_union(true);
    let rel = relaxed
        .fetch("classifieds", &AccessSpec::new().with("make", "ford"))
        .expect("relaxed union yields partial answers");
    assert_eq!(rel.len(), data.matching(SiteSlice::Newsday, Some("ford"), None).len());
}

#[test]
fn deterministic_across_rebuilds() {
    let mut a = Webbase::build_demo(3, 300, LatencyModel::lan());
    let mut b = Webbase::build_demo(3, 300, LatencyModel::lan());
    let q = "UsedCarUR(make='dodge', model, year, price)";
    let (ra, _) = a.query(q).expect("a runs");
    let (rb, _) = b.query(q).expect("b runs");
    assert_eq!(ra, rb);
}

#[test]
fn figure_renderings_are_consistent() {
    let wb = demo();
    // Table 1 names every VPS relation the maps registered.
    let t1 = wb.layer.vps.render_table1();
    for rel in wb.layer.vps.relations() {
        assert!(t1.contains(rel), "table 1 missing {rel}");
    }
    // Figure 2 map renders with the Figure 4 program re-parseable.
    let map = wb.map_for("www.newsday.com").expect("mapped");
    assert!(map.render_dot().starts_with("digraph"));
    let nav = webbase_navigation::executor::SiteNavigator::new(wb.web.clone(), map.clone());
    webbase_flogic::parser::parse_program(&nav.render_program())
        .expect("figure 4 output must re-parse");
    // Figure 5 + compatibility rules render.
    let fig5 = wb.planner.hierarchy.render(&wb.ur_attributes());
    assert!(fig5.contains("UsedCarUR("));
    assert!(wb.planner.rules.render().contains("Lease"));
}

#[test]
fn second_domain_builds_through_public_api() {
    // The apartment-hunting example, as a checked integration test: the
    // library is a framework, not a car-shaped demo.
    use webbase_logical::{LogicalLayer, LogicalRelation};
    use webbase_navigation::extractor::{CellParse, ExtractionSpec, FieldSpec};
    use webbase_navigation::recorder::{DesignerAction, Recorder};
    use webbase_relational::standardize::Standardizer;
    use webbase_relational::Expr;
    use webbase_ur::compat::CompatRules;
    use webbase_ur::hierarchy::{Alternative, ChoiceGroup, Hierarchy};
    use webbase_ur::plan::UrPlanner;
    use webbase_ur::query::parse_query;
    use webbase_vps::VpsCatalog;
    use webbase_webworld::prelude::*;
    use webbase_webworld::sites::apartments::{fair_rent, AptListings, AptMarket, RentGuide};

    let market = AptMarket::generate(11, 150);
    let web = SyntheticWeb::builder()
        .site(AptListings::new(market.clone()))
        .site(RentGuide::new())
        .latency(LatencyModel::zero())
        .build();

    let std = || {
        let mut s = Standardizer::new(["borough", "bedrooms", "rent", "contact", "fairrent"]);
        s.map("beds", "bedrooms");
        s
    };
    let mut catalog = VpsCatalog::new();
    for (host, session) in [
        (
            "www.aptlistings.com",
            vec![
                DesignerAction::Goto("http://www.aptlistings.com/".into()),
                DesignerAction::SubmitForm {
                    action: "/cgi-bin/find".into(),
                    values: vec![("borough".into(), "brooklyn".into())],
                },
                DesignerAction::MarkDataPage {
                    relation: "aptListings".into(),
                    spec: ExtractionSpec::Table {
                        fields: vec![
                            FieldSpec::new("Borough", "borough", CellParse::Text),
                            FieldSpec::new("Bedrooms", "bedrooms", CellParse::Number),
                            FieldSpec::new("Rent", "rent", CellParse::Number),
                            FieldSpec::new("Contact", "contact", CellParse::Text),
                        ],
                    },
                },
                DesignerAction::FollowLink("More".into()),
            ],
        ),
        (
            "www.rentguide.com",
            vec![
                DesignerAction::Goto("http://www.rentguide.com/".into()),
                DesignerAction::SubmitForm {
                    action: "/cgi-bin/guide".into(),
                    values: vec![("borough".into(), "queens".into()), ("beds".into(), "1".into())],
                },
                DesignerAction::MarkDataPage {
                    relation: "rentGuide".into(),
                    spec: ExtractionSpec::Table {
                        fields: vec![
                            FieldSpec::new("Borough", "borough", CellParse::Text),
                            FieldSpec::new("Bedrooms", "bedrooms", CellParse::Number),
                            FieldSpec::new("Fair Rent", "fairrent", CellParse::Number),
                        ],
                    },
                },
            ],
        ),
    ] {
        let mut r = Recorder::with_standardizer(web.clone(), host, std());
        for a in &session {
            r.apply(a).expect("applies");
        }
        let (map, _) = r.finish();
        catalog.add_map(web.clone(), map);
    }

    let mut layer = LogicalLayer::new(
        catalog,
        vec![
            LogicalRelation::new(
                "listings",
                Expr::relation("aptListings").project(["borough", "bedrooms", "rent", "contact"]),
            ),
            LogicalRelation::new(
                "guidelines",
                Expr::relation("rentGuide").project(["borough", "bedrooms", "fairrent"]),
            ),
        ],
    );
    let planner = UrPlanner::new(
        Hierarchy {
            ur_name: "AptUR".into(),
            groups: vec![
                ChoiceGroup {
                    name: "Listings".into(),
                    alternatives: vec![Alternative::new("Listings", "listings")],
                },
                ChoiceGroup {
                    name: "FairRent".into(),
                    alternatives: vec![Alternative::new("FairRent", "guidelines")],
                },
            ],
        },
        CompatRules::default(),
    );

    for borough in ["brooklyn", "manhattan", "bronx"] {
        for beds in 0..=3u32 {
            let q = parse_query(&format!(
                "AptUR(borough='{borough}', bedrooms={beds}, rent, contact) \
                 WHERE rent < fairrent"
            ))
            .expect("parses");
            let (result, _) = planner.execute(&q, &mut layer).expect("runs");
            let guide = fair_rent(borough, beds);
            let expected: std::collections::BTreeSet<(u32, String)> = market
                .matching(Some(borough), Some(beds))
                .into_iter()
                .filter(|a| a.rent < guide)
                .map(|a| (a.rent, a.contact.clone()))
                .collect();
            assert_eq!(
                result.len(),
                expected.len(),
                "{borough}/{beds}: webbase disagrees with ground truth"
            );
        }
    }
}
