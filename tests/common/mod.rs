//! Shared fixture for the fault-injection integration suites
//! (`fault_matrix.rs`, `self_healing.rs`).
//!
//! Maps are recorded once against a healthy web and shipped (the
//! fact-map deployment mode); every faulty or drifted run reloads the
//! same maps, so the only difference between runs is the web's
//! behaviour. The dataset seed comes from `WEBBASE_TEST_SEED` (default
//! 11) so CI can sweep the suite across seeds.

use std::sync::{Arc, OnceLock};
use webbase::{LatencyModel, Webbase};
use webbase_relational::Relation;
use webbase_webworld::data::Dataset;
use webbase_webworld::prelude::*;
use webbase_webworld::server::Site;

/// The §1 jaguar query (good safety, priced under blue book).
#[allow(dead_code)]
pub const JAGUAR_QUERY: &str = "UsedCarUR(make='jaguar', model, year >= 1993, price, bbprice, \
                                safety='good', condition='good') WHERE price < bbprice";

/// The §7 timing-table query.
#[allow(dead_code)]
pub const FORD_SELECT: &str = "SELECT make, model, year, price WHERE make=ford AND model=escort";

/// The dataset seed under test: `WEBBASE_TEST_SEED` or 11.
pub fn seed() -> u64 {
    std::env::var("WEBBASE_TEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(11)
}

/// Generated-corpus scale for the differential battery: the suites run
/// `default` sites per seed unless `WEBBASE_GEN_SITES=<n>` opts into a
/// bigger (or smaller) corpus — e.g. `WEBBASE_GEN_SITES=100` stretches
/// the whole battery to a 100-site webworld.
#[allow(dead_code)]
pub fn gen_sites(default: usize) -> usize {
    std::env::var("WEBBASE_GEN_SITES").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// The generated corpus under test: clean-knob sites at [`seed`],
/// scaled by [`gen_sites`].
#[allow(dead_code)]
pub fn gen_corpus(default_sites: usize) -> webbase_webworld::generate::GenCorpus {
    webbase_webworld::generate::GenCorpus::generate(seed(), gen_sites(default_sites))
}

#[allow(dead_code)]
pub fn fixture() -> &'static (Arc<Dataset>, Vec<String>) {
    static FIX: OnceLock<(Arc<Dataset>, Vec<String>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let wb = Webbase::build_demo(seed(), 400, LatencyModel::lan());
        (wb.data.clone(), wb.export_fact_maps())
    })
}

#[allow(dead_code)]
pub fn webbase_on(web: SyntheticWeb) -> Webbase {
    let (data, maps) = fixture();
    Webbase::build_from_fact_maps(web, data.clone(), maps).expect("fact maps reload")
}

#[allow(dead_code)]
pub fn healthy_webbase_at(latency: LatencyModel) -> Webbase {
    let (data, _) = fixture();
    webbase_on(standard_web(data.clone(), latency))
}

#[allow(dead_code)]
pub fn healthy_webbase() -> Webbase {
    healthy_webbase_at(LatencyModel::lan())
}

#[allow(dead_code)]
pub fn faulty_webbase_at(
    latency: LatencyModel,
    wrap: impl Fn(&str, Box<dyn Site>) -> Box<dyn Site>,
) -> Webbase {
    let (data, _) = fixture();
    webbase_on(standard_web_faulty(data.clone(), latency, wrap))
}

#[allow(dead_code)]
pub fn faulty_webbase(wrap: impl Fn(&str, Box<dyn Site>) -> Box<dyn Site>) -> Webbase {
    faulty_webbase_at(LatencyModel::lan(), wrap)
}

/// Every tuple of `partial` appears in `full` — degraded answers may be
/// fewer, never fabricated.
#[allow(dead_code)]
pub fn subset(partial: &Relation, full: &Relation) -> bool {
    partial.tuples().iter().all(|t| full.tuples().contains(t))
}
