//! Soundness of the abstract interpreter (webcheck pass 4) against the
//! live executor, across all 15 webworld sites.
//!
//! The contract (pinned here, stated in `webcheck::semantic`): for
//! every invocation, the deduplicated pages read satisfy `observed ≤
//! max` always, and `observed ≥ min` when the invocation ran cold to
//! completion without drift repairs or budget/cancel interruption.
//! Dynamic page reads must land inside the static read-set at host
//! granularity — the engine's `readset_escape` tripwire, pinned to
//! zero here under drift and mid-chain cancellation alike. And a plan
//! whose static lower bound already exceeds the fetch quota must be
//! denied before the first page fetch.
//!
//! The deterministic suites sweep seeds 11/23/47 in-process; the
//! drift/cancel proptest runs at `WEBBASE_TEST_SEED` so the CI matrix
//! sweeps it too.

mod common;

use std::sync::OnceLock;
use webbase::{Engine, EngineConfig, EngineError, LatencyModel, QueryOptions};
use webbase_logical::QueryBudget;
use webbase_navigation::executor::SiteNavigator;
use webbase_navigation::DriftOrigin;
use webbase_relational::value::Value;
use webbase_webcheck::site_semantics;
use webbase_webworld::data::Dataset;
use webbase_webworld::prelude::standard_web;

const SEEDS: [u64; 3] = [11, 23, 47];
const FORD: &str = "UsedCarUR(make='ford', price)";

/// A cold car-demo engine (13 sites) over a healthy LAN web.
fn car_engine(seed: u64, config: EngineConfig) -> Engine {
    let data = Dataset::generate(seed, 300);
    let web = standard_web(data.clone(), LatencyModel::lan());
    Engine::build_on(web, data, config).expect("engine builds")
}

// ───────────────── cold completed runs: the full interval ────────────

#[test]
fn cold_engine_queries_land_inside_the_static_interval() {
    for seed in SEEDS {
        for text in [FORD, common::JAGUAR_QUERY] {
            // A fresh engine per query: the page store must be cold or
            // the lower bound does not bind (warm spine pages are free).
            let engine = car_engine(seed, EngineConfig::default());
            let (_plan, sem) = engine.explain_semantics(text).expect("plan compiles");
            let sem = sem.expect("every car plan has full semantics");
            let before = engine.web().total_stats().requests;
            engine.query("t0", text, QueryOptions::default()).expect("clean query");
            let observed = engine.web().total_stats().requests - before;
            assert!(
                observed >= sem.cost.min,
                "seed {seed} {text:?}: {observed} fetched < static lower bound {} — \
                 the admission gate would over-deny",
                sem.cost.min
            );
            assert!(
                sem.cost.max.admits(observed),
                "seed {seed} {text:?}: {observed} fetched escapes static upper bound {}",
                sem.cost.max
            );
            let stats = engine.stats();
            assert_eq!(stats.readset_escape, 0, "seed {seed} {text:?}: dynamic reads escaped");
            assert_eq!(stats.static_denied, 0, "gate is off by default");
        }
    }
}

// ─────────── the apartment stack: per-invocation intervals ───────────

#[test]
fn apartment_invocations_respect_their_relation_intervals() {
    for seed in SEEDS {
        let (web, maps, mut layer, planner) = webbase_bench::apartment_stack(seed);
        // Per-relation, per-invocation: a fresh navigator (cold fetch
        // cache) runs each relation once; `pages_fetched` is then the
        // deduplicated page count of that single invocation.
        let bindings: Vec<(&str, Vec<(String, Value)>)> = vec![
            ("aptListings", vec![("borough".into(), Value::str("brooklyn"))]),
            (
                "rentGuide",
                vec![("borough".into(), Value::str("queens")), ("bedrooms".into(), Value::Int(1))],
            ),
        ];
        for map in &maps {
            let sem = site_semantics(map);
            for (name, given) in &bindings {
                let Some(rel_sem) = sem.relation(name) else { continue };
                let nav = SiteNavigator::new(web.clone(), map.clone());
                let (_, stats) = nav.run_relation(name, given).expect("invocation runs");
                let observed = stats.pages_fetched as u64;
                assert!(
                    rel_sem.cost.contains(observed),
                    "seed {seed} {name}: one invocation fetched {observed} pages, \
                     outside {}",
                    rel_sem.cost
                );
            }
        }
        // The whole stack through the planner: both choice groups, so
        // both sites' spines are paid — the plan-level lower bound is
        // the sum of the two per-host spine sizes.
        let total = maps
            .iter()
            .map(|m| site_semantics(m).total_cost())
            .fold(webbase_webcheck::CostInterval::empty(), webbase_webcheck::CostInterval::plus);
        let q =
            webbase_ur::query::parse_query("AptUR(borough='brooklyn', bedrooms=1, rent, fairrent)")
                .expect("apt query parses");
        let before = web.total_stats().requests;
        planner.execute(&q, &mut layer).expect("apt query runs");
        let observed = web.total_stats().requests - before;
        assert!(
            observed >= total.min && total.max.admits(observed),
            "seed {seed}: apartment plan fetched {observed}, outside {total}"
        );
    }
}

// ──────── the gate: a hopeless quota is denied before any fetch ──────

#[test]
fn static_lower_bound_above_quota_is_denied_fetch_free() {
    let seed = common::seed();
    let engine =
        car_engine(seed, EngineConfig { static_admission: true, ..EngineConfig::default() });
    let (_plan, sem) = engine.explain_semantics(FORD).expect("plan compiles");
    let needed = sem.expect("semantics").cost.min;
    assert!(needed > 1, "the ford plan must need more than one fetch");
    let before = engine.web().total_stats().requests;
    let hopeless = QueryOptions::budgeted(QueryBudget::unlimited().with_fetch_quota(needed - 1));
    match engine.query("t0", FORD, hopeless) {
        Err(EngineError::Deferred(_)) => {}
        other => panic!("a hopeless quota must be deferred, got {other:?}"),
    }
    assert_eq!(
        engine.web().total_stats().requests,
        before,
        "a statically denied query must not touch the network"
    );
    let stats = engine.stats();
    assert_eq!(stats.static_denied, 1, "the denial must be counted");
    assert_eq!(stats.queries, 0, "a denied query never ran");
    // The same query under an adequate quota is admitted and completes.
    let ample = QueryOptions::budgeted(QueryBudget::unlimited().with_fetch_quota(10_000));
    engine.query("t0", FORD, ample).expect("an adequate quota is admitted");
    assert_eq!(engine.stats().static_denied, 1, "no new denials");
}

// ───── drift + mid-chain cancellation: the tripwires stay at zero ────

/// One shared drifting engine (the NYTimes site carries the mutation
/// schedule); the clock only ever advances, so cases stay monotone.
fn drift_fixture() -> &'static (Engine, webbase_webworld::faults::MutationClock) {
    static FIX: OnceLock<(Engine, webbase_webworld::faults::MutationClock)> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = Dataset::generate(common::seed(), 300);
        let (web, clock) = webbase_bench::drifting_web(data.clone(), LatencyModel::lan());
        let engine = Engine::build_on(web, data, EngineConfig::default()).expect("engine builds");
        (engine, clock)
    })
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under MutatingSite drift (with the refresh ladder running) and
    /// mid-chain budget/cancel interruption, execution never reads a
    /// host outside the plan's static read-set (`readset_escape` == 0),
    /// never serves a known-stale view (`stale_served` == 0), and a
    /// budgeted run never overspends its quota.
    #[test]
    fn drift_and_cancellation_never_escape_the_static_read_set(
        advance in 0usize..3,
        quota in 2u64..40,
        polls in 1u64..6,
        pick in 0usize..2,
    ) {
        let (engine, clock) = drift_fixture();
        for _ in 0..advance {
            if (clock.generation() as usize) < webbase_bench::DRIFT_GENERATIONS {
                clock.advance();
                engine.refresh(
                    Some(webbase_bench::DRIFT_HOST),
                    DriftOrigin::Maintenance,
                    None,
                    None,
                );
            }
        }
        let text = if pick == 0 { FORD } else { common::JAGUAR_QUERY };

        // Mid-chain budget exhaustion: a sound partial, never an error.
        let budget = QueryBudget::unlimited().with_fetch_quota(quota);
        let out = engine
            .query("prop-budget", text, QueryOptions::budgeted(budget))
            .expect("budget exhaustion is not an error");
        if let Some(snap) = &out.plan.budget {
            prop_assert!(snap.fetches <= quota, "overspent: {} > {quota}", snap.fetches);
        }

        // Mid-chain cooperative cancellation at a navigation checkpoint.
        let token = webbase::CancelToken::new().cancel_after_polls(polls);
        let options = QueryOptions { cancel: Some(token), ..QueryOptions::default() };
        engine.query("prop-cancel", text, options).expect("cancellation is not an error");

        let stats = engine.stats();
        prop_assert_eq!(stats.readset_escape, 0, "dynamic reads escaped the static read-set");
        prop_assert_eq!(stats.stale_served, 0, "a known-stale view was served");
    }
}
