//! Integration tests for the §7 experiments: map maintenance across
//! site versions, the timing table, and the map-builder statistics.

use webbase::timing::{self, serial_timing};
use webbase::{LatencyModel, Webbase};
use webbase_navigation::maintenance::check_map;
use webbase_navigation::recorder::Recorder;
use webbase_navigation::sessions;
use webbase_webworld::data::Dataset;
use webbase_webworld::sites::standard_web_versioned;

#[test]
fn map_builder_statistics_shape() {
    let wb = Webbase::build_demo(11, 600, LatencyModel::lan());
    // The §7 shape: Newsday is the biggest map, with a manual share
    // under 5%; every site stays in single-digit-ish manual territory.
    let newsday = wb
        .report
        .sites
        .iter()
        .find(|(s, _)| s == "www.newsday.com")
        .map(|(_, st)| *st)
        .expect("newsday recorded");
    assert!(newsday.objects >= 35);
    assert!(newsday.attributes >= 150);
    // ~5% as the paper reports (exact value varies with the dataset seed
    // since the rare-make branch may add map objects).
    assert!(newsday.manual_ratio() < 0.06);
    for (site, st) in &wb.report.sites {
        assert!(st.manual_ratio() < 0.15, "{site}: {}", st.manual_ratio());
    }
}

#[test]
fn timing_table_reproduces_the_papers_shape() {
    let wb = Webbase::build_demo(11, 600, LatencyModel::dialup_1999());
    let rows = serial_timing(&wb, "ford", "escort");
    assert_eq!(rows.len(), 10);
    // Shape checks, not absolute numbers:
    // 1. Every site answers with at least one page fetched.
    for r in &rows {
        assert!(r.pages >= 1, "{}", r.site);
    }
    // 2. The page counts spread over an order of magnitude (13..103 in
    //    the paper).
    let min = rows.iter().map(|r| r.pages).min().expect("rows");
    let max = rows.iter().map(|r| r.pages).max().expect("rows");
    assert!(max >= 5 * min, "spread too small: {min}..{max}");
    // 3. Elapsed dominates CPU everywhere (fetching dominates, as the
    //    paper observes).
    for r in &rows {
        assert!(r.elapsed >= r.cpu);
    }
}

#[test]
fn parallel_evaluation_helps() {
    let wb = Webbase::build_demo(11, 600, LatencyModel::dialup_1999());
    let cmp = timing::compare(&wb, "ford", "escort");
    assert!(cmp.parallel_wall < cmp.serial_wall);
}

#[test]
fn maintenance_over_all_sites() {
    // Record every map on v1, check against v1 (clean) and v2 (the
    // documented evolutions; everything auto-applies).
    let data = Dataset::generate(11, 400);
    let web_v1 = standard_web_versioned(data.clone(), LatencyModel::lan(), 1);
    let web_v2 = standard_web_versioned(data.clone(), LatencyModel::lan(), 2);
    let mut total_changes = 0;
    for (host, session) in sessions::all_sessions(&data) {
        let (mut map, _) = Recorder::record(web_v1.clone(), host, &session).expect("records");
        let clean = check_map(web_v1.clone(), &mut map);
        assert!(clean.is_clean(), "{host} dirty against its own version: {:?}", clean.changes);
        let report = check_map(web_v2.clone(), &mut map);
        assert_eq!(report.manual_needed, 0, "{host}: {:?}", report.changes);
        total_changes += report.changes.len();
        // After auto-repair the map is clean against v2.
        let again = check_map(web_v2.clone(), &mut map);
        assert!(again.is_clean(), "{host} not repaired: {:?}", again.changes);
    }
    assert!(total_changes >= 4, "v2 must differ visibly (kellys + newsday)");
}

#[test]
fn repaired_map_still_answers_queries() {
    // The paper's Kelly's case end to end: record on v1, repair against
    // v2, and the 1999 model year becomes queryable.
    let data = Dataset::generate(11, 400);
    let web_v1 = standard_web_versioned(data.clone(), LatencyModel::lan(), 1);
    let web_v2 = standard_web_versioned(data.clone(), LatencyModel::lan(), 2);
    let (mut map, _) =
        Recorder::record(web_v1, "www.kbb.com", &sessions::kellys()).expect("records");
    check_map(web_v2.clone(), &mut map);
    let nav = webbase_navigation::executor::SiteNavigator::new(web_v2, map);
    use webbase_relational::Value;
    let (records, _) = nav
        .run_relation(
            "kellys",
            &[
                ("make".to_string(), Value::str("ford")),
                ("model".to_string(), Value::str("escort")),
                ("condition".to_string(), Value::str("good")),
                ("pricetype".to_string(), Value::str("retail")),
                ("year".to_string(), Value::Int(1999)),
            ],
        )
        .expect("runs");
    assert_eq!(records.len(), 1, "1999 values reachable after repair");
}
