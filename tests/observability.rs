//! Property tests for the observability layer.
//!
//! Two families: (1) the span tree a real traced query produces is
//! well-formed at any seed — exactly one root, children nested inside
//! their parents' intervals, per-track timestamps monotone; the same
//! invariants hold for adversarial synthetic sink usage (spans left
//! open, interleaved tracks). (2) Metrics counters are monotone across
//! a resumed query's rounds — resumption may re-serve journalled pages
//! from cache, but no counter ever goes backwards.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use webbase::{LatencyModel, MetricsRegistry, Obs, QueryTrace, Webbase, METRICS};
use webbase_logical::QueryBudget;
use webbase_obs::{SpanKind, TraceSink, QUERY_TRACK};

fn assert_well_formed(trace: &QueryTrace) -> Result<(), TestCaseError> {
    prop_assert!(!trace.spans.is_empty(), "a traced query must record spans");
    // Exactly one root, renumbered to id 0.
    let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    prop_assert_eq!(roots.len(), 1, "span tree must have a single root");
    prop_assert_eq!(roots[0].id, 0);
    let mut last_start: BTreeMap<&str, Duration> = BTreeMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        prop_assert_eq!(s.id, i, "ids must be dense after renumbering");
        prop_assert!(s.start <= s.end, "span {i}: start after end");
        if let Some(p) = s.parent {
            prop_assert!(p < s.id, "span {}: parent {} not earlier", s.id, p);
            let parent = &trace.spans[p];
            prop_assert!(
                parent.start <= s.start && s.end <= parent.end,
                "span {} [{:?}..{:?}] escapes parent {} [{:?}..{:?}]",
                s.id,
                s.start,
                s.end,
                p,
                parent.start,
                parent.end
            );
        }
        // Per-track monotonicity: spans are renumbered in per-track
        // emission order, so start times never regress within a track.
        if let Some(prev) = last_start.insert(s.track.as_str(), s.start) {
            prop_assert!(
                prev <= s.start,
                "track {}: start regressed {prev:?} -> {:?}",
                s.track,
                s.start
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Real traces are well-formed at any seed, for both a plain query
    /// and one that exercises the dependent-join tail.
    #[test]
    fn traced_queries_produce_well_formed_span_trees(seed in 1u64..=100) {
        let mut wb = Webbase::build_demo(seed, 400, LatencyModel::lan());
        let (_, _, obs) =
            wb.query_traced("UsedCarUR(make='ford', model='escort', year, price)")
                .expect("traced query runs");
        assert_well_formed(&obs.trace)?;
        // Rendering is total and agrees with the span count.
        prop_assert_eq!(obs.trace.render_jsonl().lines().count(), obs.trace.spans.len());
    }

    /// The invariants survive adversarial sink usage: random interleaved
    /// begins/events/advances across tracks, with some spans never ended
    /// (finish() closes them at the final track clock).
    #[test]
    fn synthetic_span_trees_are_well_formed(
        ops in proptest::collection::vec((0u8..4, 0usize..3, 0u64..5_000), 1..60),
    ) {
        let sink = TraceSink::enabled();
        let tracks = [QUERY_TRACK, "site-a.test", "site-b.test"];
        // The root must exist before site spans for single-root to hold.
        let root = sink.begin(QUERY_TRACK, SpanKind::Query, "q", Vec::new());
        let mut open = vec![(QUERY_TRACK, root)];
        for (op, t, us) in ops {
            let track = tracks[t];
            match op {
                0 => {
                    let h = sink.begin(track, SpanKind::Nav, format!("step {us}"), Vec::new());
                    open.push((track, h));
                }
                1 => {
                    // End the most recently opened span (well-nested use).
                    if open.len() > 1 {
                        let (tr, h) = open.pop().expect("non-empty");
                        sink.end_with(h, vec![("closed", tr.to_string())]);
                    }
                }
                2 => sink.event(track, SpanKind::Fetch, "GET /", Vec::new()),
                _ => sink.advance(track, Duration::from_micros(us)),
            }
        }
        // Some spans (root included) are deliberately left open.
        let trace = sink.finish();
        assert_well_formed(&trace)?;
    }

    /// Counters only grow across the rounds of a resumed query: each
    /// resumption preloads the journal and spends a fresh budget, and
    /// every metric's value is ≥ its value after the previous round.
    #[test]
    fn counters_are_monotone_across_resumed_queries(quota in 4u64..=12) {
        let mut wb = Webbase::build_demo(11, 400, LatencyModel::lan());
        let registry = Arc::new(MetricsRegistry::new());
        wb.layer.vps.set_obs(Obs::metrics_only(registry.clone()));
        let q = "UsedCarUR(make='ford', price)";
        let (_, plan) = wb
            .query_with_budget(q, QueryBudget::unlimited().with_fetch_quota(quota))
            .expect("budgeted query runs");
        let mut token = plan.resume;
        prop_assert!(token.is_some(), "quota {quota} must not finish the ford query");
        let mut prev = registry.snapshot();
        let mut rounds = 0;
        while let Some(t) = token {
            rounds += 1;
            prop_assert!(rounds < 100, "resume loop failed to converge");
            let (_, p) = wb.resume(q, &t).expect("resumes");
            let snap = registry.snapshot();
            for m in METRICS {
                prop_assert!(
                    snap.get(m) >= prev.get(m),
                    "round {rounds}: {} regressed {} -> {}",
                    m.name(),
                    prev.get(m),
                    snap.get(m)
                );
            }
            prop_assert!(
                snap.fetch_latency.count >= prev.fetch_latency.count,
                "latency observations regressed"
            );
            prev = snap;
            token = p.resume;
        }
    }
}
