//! Self-healing execution against a drifted Web.
//!
//! The maps were recorded against yesterday's sites; today's sites have
//! renamed a link, reshuffled a form, or put session tokens in their
//! pagination links. The contract: queries **never abort**. Auto-
//! repairable drift is healed mid-query (same answers as the healthy
//! web); manual-intervention drift quarantines exactly the affected map
//! node (strict subset of the healthy answers, node named in the
//! report); stale CGI sessions are replayed from checkpointed inputs.
//! Identical seeds produce identical [`RepairReport`]s.

mod common;

use common::{faulty_webbase, fixture, healthy_webbase};
use webbase_html::diff::PageChange;
use webbase_navigation::model::ActionDescr;
use webbase_webworld::data::SiteSlice;
use webbase_webworld::faults::{DriftingSite, ExpiringSessionSite};
use webbase_webworld::server::Site;

/// A query whose newsday branch paginates (no model bound → many rows).
const FORD_QUERY: &str = "SELECT make, model, year, price WHERE make=ford";

const NEWSDAY: &str = "www.newsday.com";

/// The drifted web of scenario A: newsday's auto hub renames its
/// "Used Cars" link (the target survives) — auto-repairable.
fn renamed_link_webbase() -> webbase::Webbase {
    faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(
                DriftingSite::new(s, ">Used Cars</a>", ">Pre-owned Cars</a>").only_on_path("/auto"),
            ) as Box<dyn Site>
        } else {
            s
        }
    })
}

/// Scenario C: newsday's search form renames its mandatory `make`
/// field — not auto-repairable, the node is quarantined.
fn renamed_field_webbase() -> webbase::Webbase {
    faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(DriftingSite::new(s, "name=make>", "name=mk2>").only_on_path("/auto/used"))
                as Box<dyn Site>
        } else {
            s
        }
    })
}

#[test]
fn renamed_link_is_repaired_mid_query() {
    let (data, _) = fixture();
    assert!(
        !data.matching(SiteSlice::Newsday, Some("ford"), None).is_empty(),
        "seed must give newsday ford ads, or the scenario is vacuous"
    );
    let full = healthy_webbase().select("classifieds", FORD_QUERY).expect("healthy query");

    let mut wb = renamed_link_webbase();
    let sel = wb.select("classifieds", FORD_QUERY).expect("drifted query must not abort");
    assert_eq!(sel, full, "auto-repaired drift must not cost answers");

    let rep = wb.layer.vps.repairs();
    let site = rep.sites.get(NEWSDAY).expect("newsday must report repairs");
    assert!(
        site.auto_applied.iter().any(|(_, c)| matches!(
            c,
            PageChange::LinkRenamed { old, new, .. }
                if old == "Used Cars" && new == "Pre-owned Cars"
        )),
        "the rename must be recorded: {:?}",
        site.auto_applied
    );
    assert!(site.steps_replayed >= 1, "a renamed link is a compiled constant → replay");
    assert!(site.quarantined.is_empty(), "auto-repairable drift must not quarantine");
    assert_eq!(rep.sites.len(), 1, "undrifted sites must stay silent: {}", rep.render());
}

#[test]
fn renamed_select_option_is_repaired_without_replay() {
    // The year select's "1997" becomes "'97": option-list edits are
    // auto-applied to the working map, but no compiled constant changed,
    // so the run is not replayed and (year unbound) answers are intact.
    let full = healthy_webbase().select("classifieds", FORD_QUERY).expect("healthy query");
    let mut wb = faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(
                DriftingSite::new(s, "\"1997\">1997", "\"'97\">'97").only_on_path("/auto/used"),
            ) as Box<dyn Site>
        } else {
            s
        }
    });
    let sel = wb.select("classifieds", FORD_QUERY).expect("drifted query must not abort");
    assert_eq!(sel, full);

    let rep = wb.layer.vps.repairs();
    let site = rep.sites.get(NEWSDAY).expect("newsday must report repairs");
    let removed = site.auto_applied.iter().any(
        |(_, c)| matches!(c, PageChange::OptionRemoved { field, option, .. } if field == "year" && option == "1997"),
    );
    let added = site.auto_applied.iter().any(
        |(_, c)| matches!(c, PageChange::OptionAdded { field, option, .. } if field == "year" && option == "'97"),
    );
    assert!(removed && added, "both sides of the rename: {:?}", site.auto_applied);
    assert_eq!(site.steps_replayed, 0, "option edits don't touch compiled constants");
    assert!(site.quarantined.is_empty());
}

#[test]
fn renamed_mandatory_field_quarantines_the_node() {
    let (data, _) = fixture();
    let newsday_truth = data.matching(SiteSlice::Newsday, Some("ford"), None);
    assert!(!newsday_truth.is_empty(), "newsday must have ford ads for strictness");
    let full = healthy_webbase().select("classifieds", FORD_QUERY).expect("healthy query");

    let mut wb = renamed_field_webbase();
    let sel = wb.select("classifieds", FORD_QUERY).expect("drifted query must not abort");
    assert!(common::subset(&sel, &full), "drift must never fabricate answers");
    assert!(sel.len() < full.len(), "newsday's branch must be lost, not faked");

    // The report names exactly the node whose form drifted: the
    // UsedCarPg carrying f1 (/cgi-bin/nclassy).
    let map = wb.map_for(NEWSDAY).expect("newsday map");
    let expected = map
        .nodes
        .iter()
        .find(|n| {
            n.actions
                .iter()
                .any(|a| matches!(a, ActionDescr::Submit(f) if f.cgi == "/cgi-bin/nclassy"))
        })
        .expect("the recorded map has the f1 node");
    let rep = wb.layer.vps.repairs();
    assert_eq!(
        rep.quarantined_nodes(),
        vec![(NEWSDAY, expected.id, expected.name.as_str())],
        "{}",
        rep.render()
    );
    let site = &rep.sites[NEWSDAY];
    assert_eq!(site.steps_replayed, 0, "nothing auto-applicable → nothing to replay");
}

#[test]
fn expired_sessions_replay_from_checkpointed_inputs() {
    let (data, _) = fixture();
    assert!(
        data.matching(SiteSlice::Newsday, Some("ford"), None).len() > 4,
        "the ford listing must paginate for the scenario to bite"
    );
    let full = healthy_webbase().select("classifieds", FORD_QUERY).expect("healthy query");

    // ttl 0: every session token stamped into newsday's pagination
    // links is stale by the time it is used — each "More" step 440s and
    // is replayed from its checkpointed inputs (make/model/page).
    let mut wb = faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(ExpiringSessionSite::new(s, 0)) as Box<dyn Site>
        } else {
            s
        }
    });
    let sel = wb.select("classifieds", FORD_QUERY).expect("expiring sessions must not abort");
    assert_eq!(sel, full, "session replay must recover the whole More chain");

    let rep = wb.layer.vps.repairs();
    let site = rep.sites.get(NEWSDAY).expect("newsday must report recoveries");
    assert!(site.sessions_recovered >= 1, "{}", rep.render());
    assert!(site.auto_applied.is_empty() && site.quarantined.is_empty());
}

#[test]
fn identical_seeds_give_identical_repair_reports() {
    let run_renamed = || {
        let mut wb = renamed_link_webbase();
        let sel = wb.select("classifieds", FORD_QUERY).expect("drifted query");
        (sel, wb.layer.vps.repairs())
    };
    let (sel1, rep1) = run_renamed();
    let (sel2, rep2) = run_renamed();
    assert_eq!(sel1, sel2, "answers must be a pure function of the seed");
    assert_eq!(rep1, rep2, "repair reports must be a pure function of the seed");

    let run_quarantined = || {
        let mut wb = renamed_field_webbase();
        let sel = wb.select("classifieds", FORD_QUERY).expect("drifted query");
        (sel, wb.layer.vps.repairs())
    };
    let (sel1, rep1) = run_quarantined();
    let (sel2, rep2) = run_quarantined();
    assert_eq!(sel1, sel2);
    assert_eq!(rep1, rep2);
    assert!(!rep1.is_clean() && !rep1.render().is_empty());
}
