//! Golden-trace regression tests.
//!
//! Because the simulated Web is deterministic and every trace timestamp
//! comes from the *simulated* clock, the rendered trace of a query is a
//! complete, byte-stable description of execution at a given seed: plan
//! steps, rewrites, handle invocations, navigation steps, fetches and
//! their dispositions, in order, with timings. These tests pin the §7
//! query's trace at three seeds against checked-in snapshots, so any
//! change to planning, navigation, caching, or the resilience machinery
//! that alters observable execution shows up as a readable trace diff —
//! not as a silent behaviour change.
//!
//! Regenerate the snapshots after an *intentional* change with:
//!
//! ```bash
//! WEBBASE_BLESS=1 cargo test --test trace_golden
//! ```

use std::path::PathBuf;
use webbase::{LatencyModel, Webbase};

/// The §7 experiment's query shape — `make=ford AND model=escort` over
/// the used-car webbase — expressed as a structured-UR query so the
/// trace exercises all three layers (plan → logical → VPS → navigation).
const GOLDEN_QUERY: &str = "UsedCarUR(make='ford', model='escort', year, price)";

fn snapshot_path(seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/trace_seed{seed}.txt"))
}

fn rendered_trace(seed: u64) -> String {
    let mut wb = Webbase::build_demo(seed, 400, LatencyModel::lan());
    let (_, _, obs) = wb.query_traced(GOLDEN_QUERY).expect("the golden query runs");
    obs.trace.render_tree()
}

fn golden(seed: u64) {
    let rendered = rendered_trace(seed);
    // Determinism first: two independently built webbases at the same
    // seed must render byte-identical traces. A golden file is useless
    // if the trace isn't reproducible.
    assert_eq!(
        rendered,
        rendered_trace(seed),
        "seed {seed}: trace is not byte-deterministic across runs"
    );
    let path = snapshot_path(seed);
    if std::env::var("WEBBASE_BLESS").is_ok() {
        std::fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {} ({e}); regenerate with WEBBASE_BLESS=1", path.display())
    });
    assert_eq!(
        rendered, expected,
        "seed {seed}: trace diverged from the golden snapshot; if the change is \
         intentional, regenerate with WEBBASE_BLESS=1 cargo test --test trace_golden"
    );
}

#[test]
fn golden_trace_seed_11() {
    golden(11);
}

#[test]
fn golden_trace_seed_23() {
    golden(23);
}

#[test]
fn golden_trace_seed_47() {
    golden(47);
}

#[test]
fn golden_traces_have_the_expected_shape() {
    // Shape checks that hold at any seed, so snapshot regeneration can't
    // silently bless a gutted trace: one root query span, a plan span,
    // at least one object with logical → handle → nav-run → fetch below.
    let mut wb = Webbase::build_demo(11, 400, LatencyModel::lan());
    let (_, _, obs) = wb.query_traced(GOLDEN_QUERY).expect("runs");
    let trace = &obs.trace;
    for kind in [
        webbase::SpanKind::Query,
        webbase::SpanKind::Plan,
        webbase::SpanKind::Object,
        webbase::SpanKind::Logical,
        webbase::SpanKind::Handle,
        webbase::SpanKind::NavRun,
        webbase::SpanKind::Nav,
        webbase::SpanKind::Fetch,
    ] {
        assert!(!trace.of_kind(kind).is_empty(), "no {kind:?} spans in the golden trace");
    }
    // The JSON rendering carries the same spans, one per line.
    assert_eq!(trace.render_jsonl().lines().count(), trace.spans.len());
}
