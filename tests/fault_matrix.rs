//! The fault matrix: the paper's queries against the full thirteen-site
//! Web with every site degraded — flaky (intermittent 500s), truncating
//! (mid-transfer disconnects), and stalling (hung CGI scripts).
//!
//! The contract under failure is the one §7's "dynamic nature of the
//! Web" demands: queries *complete*, partial answers are a subset of the
//! healthy answers (never fabricated), the degradation report names
//! exactly the sites that misbehaved, and identical seeds produce
//! byte-identical answers and reports.

mod common;

use common::{
    faulty_webbase, faulty_webbase_at, healthy_webbase, healthy_webbase_at, subset, FORD_SELECT,
    JAGUAR_QUERY,
};
use std::collections::BTreeSet;
use std::time::Duration;
use webbase::{LatencyModel, Metric, Obs, SpanKind};
use webbase_logical::{BudgetDenial, QueryBudget};
use webbase_webworld::faults::{
    DelayedSite, DriftingSite, ExpiringSessionSite, FlakySite, StallingSite, TruncatingSite,
};
use webbase_webworld::server::Site;

/// A query whose newsday branch paginates (model unbound → a long
/// "More" chain).
const FORD_QUERY: &str = "UsedCarUR(make='ford', price)";

const NEWSDAY: &str = "www.newsday.com";

#[test]
fn fault_matrix_partial_answers_are_sound() {
    let mut healthy = healthy_webbase();
    let (jag_full, _) = healthy.query(JAGUAR_QUERY).expect("healthy jaguar query");
    let sel_full = healthy.select("classifieds", FORD_SELECT).expect("healthy select");
    assert!(!jag_full.is_empty(), "seed must produce jaguar answers");
    assert!(!sel_full.is_empty(), "seed must produce escort answers");

    type Wrap = Box<dyn Fn(&str, Box<dyn Site>) -> Box<dyn Site>>;
    let matrix: Vec<(&str, Wrap)> = vec![
        (
            "flaky(7)",
            Box::new(|_h: &str, s: Box<dyn Site>| Box::new(FlakySite::new(s, 7)) as Box<dyn Site>),
        ),
        ("truncating(800)", Box::new(|_h, s| Box::new(TruncatingSite::new(s, 800)))),
        (
            "stalling(5, 120s)",
            Box::new(|_h, s| Box::new(StallingSite::new(s, 5, Duration::from_secs(120)))),
        ),
    ];
    for (name, wrap) in matrix {
        let mut wb = faulty_webbase(wrap);
        let (jag, _) =
            wb.query(JAGUAR_QUERY).unwrap_or_else(|e| panic!("{name}: jaguar query failed: {e}"));
        assert!(subset(&jag, &jag_full), "{name}: fabricated jaguar answers");
        let sel = wb
            .select("classifieds", FORD_SELECT)
            .unwrap_or_else(|e| panic!("{name}: select failed: {e}"));
        assert!(subset(&sel, &sel_full), "{name}: fabricated select answers");
    }
}

#[test]
fn all_sites_flaky_reports_exactly_the_degraded_sites() {
    let run = || {
        let mut wb = faulty_webbase(|_h, s| Box::new(FlakySite::new(s, 7)) as Box<dyn Site>);
        let (result, plan) = wb.query(JAGUAR_QUERY).expect("flaky query completes");
        (result, plan.degradation, wb.web.stats())
    };
    let (result, report, stats) = run();
    assert!(!result.is_empty(), "retries recover the flaky answers");

    // Ground truth from the server side: a host saw a 500 iff it fielded
    // at least 7 requests (the wrapper fails every 7th). The report must
    // name exactly those hosts — no more, no less.
    let expected: BTreeSet<&str> =
        stats.iter().filter(|(_, s)| s.requests >= 7).map(|(h, _)| h.as_str()).collect();
    let reported: BTreeSet<&str> = report.degraded_sites().into_iter().collect();
    assert_eq!(reported, expected, "{}", report.render());
    assert!(!reported.is_empty(), "the jaguar query must touch a busy site");
    assert!(report.total_retries() > 0);

    // Determinism: same seed, same fault schedule → identical answers
    // and an identical report.
    let (result2, report2, _) = run();
    assert_eq!(result, result2, "answers must be a pure function of the seed");
    assert_eq!(report, report2, "reports must be a pure function of the seed");
}

#[test]
fn stalling_sites_time_out_but_queries_recover() {
    // 120s stalls dwarf the default 30s fetch timeout: every 5th request
    // times out, the retry (off the stall schedule) succeeds.
    let mut wb = faulty_webbase(|_h, s| {
        Box::new(StallingSite::new(s, 5, Duration::from_secs(120))) as Box<dyn Site>
    });
    let (result, plan) = wb.query(JAGUAR_QUERY).expect("stalling query completes");
    assert!(!result.is_empty());
    let timeouts: u64 = plan.degradation.sites.values().map(|s| s.timeouts).sum();
    assert!(timeouts > 0, "stalls over the timeout must be observed as timeouts");
    for (host, site) in &plan.degradation.sites {
        assert!(!site.breaker_open, "{host}: isolated timeouts must not open the circuit");
    }
}

#[test]
fn stalling_sites_under_a_deadline_yield_sound_partials_and_a_token() {
    let (jag_full, _) = healthy_webbase().query(JAGUAR_QUERY).expect("healthy jaguar query");

    // Every 5th request stalls past the 30s fetch timeout; two such
    // timeouts blow a 45s query deadline, so the run must end early —
    // cleanly, with a sound partial answer and a resume token.
    let run = || {
        let mut wb = faulty_webbase(|_h, s| {
            Box::new(StallingSite::new(s, 5, Duration::from_secs(120))) as Box<dyn Site>
        });
        let budget = QueryBudget::unlimited().with_deadline(Duration::from_secs(45));
        let (partial, plan) =
            wb.query_with_budget(JAGUAR_QUERY, budget).expect("deadline exhaustion must not abort");
        (partial, plan)
    };
    let (partial, plan) = run();
    assert!(subset(&partial, &jag_full), "fabricated answers under the deadline");
    assert!(partial.len() < jag_full.len(), "two 30s timeouts must blow a 45s deadline");
    let snap = plan.budget.as_ref().expect("budgeted runs carry a snapshot");
    assert_eq!(snap.exhausted, Some(BudgetDenial::DeadlineExceeded));
    assert!(!plan.degradation.is_clean(), "the shortfall must be reported");
    assert!(plan.resume.is_some(), "deadline exhaustion must leave a resume token");

    // Determinism: same seed, same faults, same deadline → identical
    // partial answers and an identical spend.
    let (partial2, plan2) = run();
    assert_eq!(partial, partial2, "partials must be a pure function of the seed");
    assert_eq!(snap.fetches, plan2.budget.expect("snapshot").fetches);
}

#[test]
fn expiring_sessions_under_a_deadline_yield_sound_partials() {
    let (ford_full, _) = healthy_webbase().query(FORD_QUERY).expect("healthy ford query");

    // Newsday's sessions all expire (every "More" step goes through
    // replay) and every newsday page costs a simulated second: a 3s
    // deadline affords at most a few newsday pages, nowhere near the
    // replaying chain.
    let mut wb = faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(DelayedSite::new(ExpiringSessionSite::new(s, 0), Duration::from_secs(1)))
                as Box<dyn Site>
        } else {
            s
        }
    });
    let budget = QueryBudget::unlimited().with_deadline(Duration::from_secs(3));
    let (partial, plan) =
        wb.query_with_budget(FORD_QUERY, budget).expect("expiring sessions must not abort");
    assert!(subset(&partial, &ford_full), "fabricated answers under the deadline");
    assert!(partial.len() < ford_full.len(), "the delayed newsday chain cannot finish in 3s");
    let snap = plan.budget.expect("budgeted runs carry a snapshot");
    assert_eq!(snap.exhausted, Some(BudgetDenial::DeadlineExceeded));
    assert!(!plan.degradation.is_clean(), "the shortfall must be reported");
}

#[test]
fn session_replays_are_charged_to_the_owning_site_quota() {
    let (ford_full, _) = healthy_webbase().query(FORD_QUERY).expect("healthy ford query");

    // Per-site quota of 4: newsday's entry chain fits, but its stale-
    // session replays (charged to newsday, not to the global pool) push
    // it over and the site is cut off mid-chain.
    let mut wb = faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(ExpiringSessionSite::new(s, 0)) as Box<dyn Site>
        } else {
            s
        }
    });
    let budget = QueryBudget::unlimited().with_site_quota(4);
    let (partial, plan) =
        wb.query_with_budget(FORD_QUERY, budget).expect("site quota must not abort");
    assert!(subset(&partial, &ford_full), "fabricated answers under the site quota");
    assert!(partial.len() < ford_full.len(), "newsday's replaying chain cannot fit in 4 fetches");
    let snap = plan.budget.expect("budgeted runs carry a snapshot");
    for (host, spend) in &snap.sites {
        assert!(spend.fetches <= 4, "{host} overspent its site quota: {}", spend.fetches);
    }
    let newsday = snap.sites.get(NEWSDAY).expect("newsday must be tracked");
    assert!(newsday.denied > 0, "newsday's replays must be charged to newsday");
}

#[test]
fn dead_site_trips_the_breaker_and_stays_fast() {
    // At the paper's dialup latencies the healthy baseline is realistic,
    // so the ≤2× bound below measures the breaker, not the noise floor.
    let mut healthy = healthy_webbase_at(LatencyModel::dialup_1999());
    let (jag_full, _) = healthy.query(JAGUAR_QUERY).expect("healthy jaguar query");
    let healthy_net = healthy.layer.vps.stats.total_network();

    // www.nytimes.com drops every request: one of the classifieds sites
    // is permanently dead.
    let mut dead = faulty_webbase_at(LatencyModel::dialup_1999(), |h, s| {
        if h == "www.nytimes.com" {
            Box::new(FlakySite::new(s, 1)) as Box<dyn Site>
        } else {
            s
        }
    });
    let (result, plan) = dead.query(JAGUAR_QUERY).expect("query completes around the corpse");
    assert!(!result.is_empty(), "the other classifieds sites still answer");
    assert!(subset(&result, &jag_full), "a dead site cannot add answers");

    let site =
        plan.degradation.sites.get("www.nytimes.com").expect("the dead site must be reported");
    assert!(site.breaker_open, "the circuit must end the query open");
    assert!(site.breaker_trips >= 1);

    // A follow-up query finds the circuit still open and fails fast:
    // no fresh retries are spent re-probing the corpse.
    let sel = dead.select("classifieds", FORD_SELECT).expect("follow-up select");
    assert!(!sel.is_empty(), "newsday and the daily news still answer");
    let cumulative = dead.layer.vps.degradation();
    let site = cumulative.sites.get("www.nytimes.com").expect("still reported");
    assert!(site.fast_failures > 0, "later attempts must fail fast, not re-probe");

    // The breaker caps the cost of the corpse: simulated wall-clock stays
    // within 2× of the healthy run (acceptance bound), instead of paying
    // retries + backoff for every one of the site's pages.
    let dead_net = dead.layer.vps.stats.total_network();
    assert!(
        dead_net <= healthy_net * 2,
        "dead site blew up the wall-clock: {dead_net:?} vs healthy {healthy_net:?}"
    );
}

// ---------------------------------------------------------------------
// Observability cross-checks: the metrics registry, the trace, and the
// degradation/repair reports are three independent records of the same
// execution. They are incremented at the same instrumentation points,
// so any drift between them is a bug in one of the three.
// ---------------------------------------------------------------------

/// A paginating select (model unbound → newsday's whole "More" chain).
const FORD_ALL: &str = "SELECT make, model, year, price WHERE make=ford";

#[test]
fn metrics_counters_cross_check_the_degradation_report() {
    let mut wb = faulty_webbase(|_h, s| Box::new(FlakySite::new(s, 7)) as Box<dyn Site>);
    let (result, plan, obs) = wb.query_traced(JAGUAR_QUERY).expect("flaky traced query");
    assert!(!result.is_empty());
    let m = &obs.metrics;
    let deg = &plan.degradation;
    assert!(deg.total_retries() > 0, "a flaky web must force retries for this test to bite");

    assert_eq!(m.get(Metric::Retries), deg.total_retries(), "retries: counter vs report");
    let timeouts: u64 = deg.sites.values().map(|s| s.timeouts).sum();
    assert_eq!(m.get(Metric::Timeouts), timeouts, "timeouts: counter vs report");
    let failures: u64 = deg.sites.values().map(|s| s.failures).sum();
    assert_eq!(
        m.get(Metric::HttpFailures) + m.get(Metric::Timeouts),
        failures,
        "failures split into 5xx + timeouts"
    );
    let fast: u64 = deg.sites.values().map(|s| s.fast_failures).sum();
    assert_eq!(m.get(Metric::FastFailures), fast, "fast failures: counter vs report");
    let trips: u64 = deg.sites.values().map(|s| s.breaker_trips).sum();
    assert_eq!(m.get(Metric::BreakerOpens), trips, "breaker trips: counter vs report");

    // The trace is the third record: one backoff event per retry, and
    // the latency histogram observed every completed network attempt.
    let backoffs = obs.trace.of_kind(SpanKind::Backoff).len() as u64;
    assert_eq!(backoffs, deg.total_retries(), "one backoff span per retry");
    assert_eq!(
        m.fetch_latency.count,
        m.get(Metric::Fetches),
        "every network attempt lands in the latency histogram"
    );
}

#[test]
fn budget_denials_in_the_degradation_report_match_the_counter() {
    let mut wb = healthy_webbase();
    let obs = Obs::full();
    wb.layer.vps.set_obs(obs.clone());
    let budget = QueryBudget::unlimited().with_fetch_quota(10);
    let (_, plan) = wb.query_with_budget(FORD_QUERY, budget).expect("quota must not abort");
    let trace = obs.sink.finish();
    let m = obs.metrics.as_ref().expect("full obs carries a registry").snapshot();
    wb.layer.vps.set_obs(Obs::none());

    let deg_denied: u64 = plan.degradation.sites.values().map(|s| s.budget_denied).sum();
    assert!(deg_denied > 0, "a quota of 10 must deny fetches for this test to bite");
    assert_eq!(m.get(Metric::BudgetDenials), deg_denied, "denials: counter vs report");
    // Every denial is also visible in the trace as a budget_denied fetch
    // disposition.
    let denied_spans = trace
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Fetch && s.field("disposition") == Some("budget_denied"))
        .count() as u64;
    assert_eq!(denied_spans, deg_denied, "denials: trace vs report");
}

#[test]
fn repairs_in_the_repair_report_match_counter_and_spans() {
    // Newsday's auto hub renames its "Used Cars" link — auto-repaired
    // mid-query, then the run is replayed (compiled constant changed).
    let mut wb = faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(
                DriftingSite::new(s, ">Used Cars</a>", ">Pre-owned Cars</a>").only_on_path("/auto"),
            ) as Box<dyn Site>
        } else {
            s
        }
    });
    let obs = Obs::full();
    wb.layer.vps.set_obs(obs.clone());
    wb.select("classifieds", FORD_ALL).expect("drifted query must not abort");
    let trace = obs.sink.finish();
    let m = obs.metrics.as_ref().expect("registry").snapshot();
    wb.layer.vps.set_obs(Obs::none());

    let rep = wb.layer.vps.repairs();
    let auto_applied: u64 = rep.sites.values().map(|s| s.auto_applied.len() as u64).sum();
    let replayed: u64 = rep.sites.values().map(|s| s.steps_replayed).sum();
    assert!(auto_applied > 0, "the renamed link must be auto-repaired for this test to bite");
    assert!(replayed > 0, "a repaired compiled constant must force a replay");
    assert_eq!(m.get(Metric::Repairs), auto_applied, "repairs: counter vs report");
    assert_eq!(m.get(Metric::Replays), replayed, "replays: counter vs report");
    assert_eq!(
        trace.of_kind(SpanKind::Repair).len() as u64,
        auto_applied,
        "repairs: spans vs report"
    );
    assert_eq!(trace.of_kind(SpanKind::Replay).len() as u64, replayed, "replays: spans vs report");
    assert_eq!(m.get(Metric::Quarantines), 0, "auto-repairable drift must not quarantine");
}

#[test]
fn quarantines_and_session_recoveries_match_their_counters() {
    // Scenario C: newsday's search form renames its mandatory field —
    // not auto-repairable, the node is quarantined.
    let mut wb = faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(DriftingSite::new(s, "name=make>", "name=mk2>").only_on_path("/auto/used"))
                as Box<dyn Site>
        } else {
            s
        }
    });
    let obs = Obs::full();
    wb.layer.vps.set_obs(obs.clone());
    wb.select("classifieds", FORD_ALL).expect("quarantine must not abort");
    let trace = obs.sink.finish();
    let m = obs.metrics.as_ref().expect("registry").snapshot();
    wb.layer.vps.set_obs(Obs::none());
    let quarantined: u64 =
        wb.layer.vps.repairs().sites.values().map(|s| s.quarantined.len() as u64).sum();
    assert!(quarantined > 0, "the renamed mandatory field must quarantine its node");
    assert_eq!(m.get(Metric::Quarantines), quarantined, "quarantines: counter vs report");
    assert_eq!(
        trace.of_kind(SpanKind::Quarantine).len() as u64,
        quarantined,
        "quarantines: spans vs report"
    );

    // Stale CGI sessions on newsday: every "More" step is recovered from
    // checkpointed inputs, and each recovery is counted and traced.
    let mut wb = faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(ExpiringSessionSite::new(s, 0)) as Box<dyn Site>
        } else {
            s
        }
    });
    let obs = Obs::full();
    wb.layer.vps.set_obs(obs.clone());
    wb.select("classifieds", FORD_ALL).expect("session replay must not abort");
    let trace = obs.sink.finish();
    let m = obs.metrics.as_ref().expect("registry").snapshot();
    wb.layer.vps.set_obs(Obs::none());
    let recovered: u64 = wb.layer.vps.repairs().sites.values().map(|s| s.sessions_recovered).sum();
    assert!(recovered > 0, "ttl-0 sessions must force recoveries");
    assert_eq!(m.get(Metric::SessionRecoveries), recovered, "recoveries: counter vs report");
    assert_eq!(
        trace.of_kind(SpanKind::SessionRecovery).len() as u64,
        recovered,
        "recoveries: spans vs report"
    );
}
