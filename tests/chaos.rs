//! Chaos battery for the crash-safe server runtime.
//!
//! Every scenario injects a failure — a panicking leader, a client
//! disconnect mid-query, a torn journal, a kill-and-restart cycle —
//! and gates on the same two invariants:
//!
//! 1. **Answer equality**: after recovery, the engine's answer equals
//!    the isolated serial oracle's (a private session sharing nothing).
//! 2. **Counter/span sanity**: failures are counted where they were
//!    contained, nothing is left in flight, and no lock stays poisoned.
//!
//! The dataset seed comes from `WEBBASE_TEST_SEED` (default 11); CI
//! sweeps seeds 11/23/47.

mod common;

use common::{seed, subset, JAGUAR_QUERY};
use webbase::{
    CancelToken, Engine, EngineConfig, EngineError, LatencyModel, Lifecycle, QueryOptions, Relation,
};
use webbase_logical::QueryBudget;

const FORD: &str = "UsedCarUR(make='ford', price)";

fn engine() -> Engine {
    Engine::build_demo(seed(), 400, LatencyModel::lan())
}

fn journaled_engine(path: &std::path::Path) -> Engine {
    let data = webbase_webworld::data::Dataset::generate(seed(), 400);
    let web = webbase_webworld::prelude::standard_web(data.clone(), LatencyModel::lan());
    let config = EngineConfig { journal: Some(path.to_path_buf()), ..EngineConfig::default() };
    Engine::build_on(web, data, config).expect("journaled engine builds")
}

fn oracle(engine: &Engine, text: &str) -> Relation {
    engine.query_isolated("oracle", text, QueryOptions::default()).expect("oracle runs").relation
}

fn journal_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("webbase-chaos-{}-{}-{name}", std::process::id(), seed()))
}

#[test]
fn leader_panic_hands_off_and_the_engine_survives() {
    let engine = engine();
    let chaos = QueryOptions {
        cancel: Some(CancelToken::new().panic_after_polls(1)),
        ..QueryOptions::default()
    };
    let err = engine.query("crashy", JAGUAR_QUERY, chaos);
    assert!(matches!(err, Err(EngineError::Panicked(_))), "fuse must fire: {err:?}");
    let stats = engine.stats();
    assert_eq!(stats.panics, 1, "{stats:?}");
    assert!(stats.result_aborted >= 1, "the panicking leader must hand off: {stats:?}");
    assert_eq!(engine.inflight_queries(), 0, "no orphaned in-flight entry");
    // The same query now runs to the oracle's answer — the panic
    // neither cached garbage nor wedged any shared structure.
    let after = engine.query("steady", JAGUAR_QUERY, QueryOptions::default()).expect("serves on");
    assert_eq!(after.relation, oracle(&engine, JAGUAR_QUERY), "post-panic answer diverged");
    assert_eq!(engine.stats().panics, 1, "recovery run panicked");
}

#[test]
fn concurrent_followers_survive_a_leader_panic() {
    let engine = engine();
    let expected = oracle(&engine, JAGUAR_QUERY);
    let results: Vec<Result<Relation, EngineError>> = std::thread::scope(|scope| {
        let fused = {
            let engine = engine.clone();
            scope.spawn(move || {
                let chaos = QueryOptions {
                    cancel: Some(CancelToken::new().panic_after_polls(1)),
                    ..QueryOptions::default()
                };
                engine.query("crashy", JAGUAR_QUERY, chaos).map(|o| o.relation)
            })
        };
        // Give the fused query time to claim result-cache leadership,
        // then pile followers onto the same key.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let followers: Vec<_> = (0..3)
            .map(|t| {
                let engine = engine.clone();
                scope.spawn(move || {
                    let tenant = format!("tenant{t}");
                    engine.query(&tenant, JAGUAR_QUERY, QueryOptions::default()).map(|o| o.relation)
                })
            })
            .collect();
        let mut results = vec![fused.join().expect("fused thread")];
        results.extend(followers.into_iter().map(|f| f.join().expect("follower thread")));
        results
    });
    let ok: Vec<&Relation> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    let errs: Vec<&EngineError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(ok.len() >= 3, "at most the fused query may fail: {errs:?}");
    for rel in &ok {
        assert_eq!(**rel, expected, "a survivor's answer diverged from the oracle");
    }
    for e in &errs {
        assert!(matches!(e, EngineError::Panicked(_)), "only the injected panic may fail: {e}");
    }
    let stats = engine.stats();
    assert_eq!(stats.panics as usize, errs.len(), "{stats:?}");
    assert_eq!(engine.inflight_queries(), 0);
}

#[test]
fn a_cancelled_query_aborts_cleanly_and_is_not_cached() {
    let engine = engine();
    let expected = oracle(&engine, FORD);
    let token = CancelToken::new().cancel_after_polls(2);
    let out = engine
        .query(
            "leaver",
            FORD,
            QueryOptions { cancel: Some(token.clone()), ..QueryOptions::default() },
        )
        .expect("cancellation is a clean partial, not an error");
    assert!(token.is_cancelled(), "the fuse must have fired");
    assert!(!out.plan.degradation.is_clean(), "a cancelled run is degraded by definition");
    assert!(subset(&out.relation, &expected), "a cancelled partial fabricated tuples");
    assert!(out.relation.len() < expected.len(), "cancel at poll 2 cannot finish the walk");
    let stats = engine.stats();
    assert_eq!(stats.cancelled, 1, "{stats:?}");
    assert_eq!(engine.inflight_queries(), 0, "no orphaned navigation");
    // The partial must not have been published: a fresh tenant gets
    // the full answer, not the cancelled remnant.
    let after = engine.query("steady", FORD, QueryOptions::default()).expect("full run");
    assert_eq!(after.relation, expected, "the cancelled partial leaked into the result cache");
}

#[test]
fn a_budgeted_cancel_checkpoints_to_a_resume_token() {
    let engine = engine();
    let expected = oracle(&engine, FORD);
    let chaos = QueryOptions {
        budget: Some(QueryBudget::unlimited()),
        cancel: Some(CancelToken::new().cancel_after_polls(3)),
        ..QueryOptions::default()
    };
    let partial = engine.query("leaver", FORD, chaos).expect("budgeted cancel stays a partial");
    let token = partial.plan.resume.expect("a budgeted cancelled run must leave a resume token");
    assert!(subset(&partial.relation, &expected));
    // Resuming spends a fresh (unlimited) budget on the unfinished
    // tail and converges to the oracle's answer.
    let resumed = engine.query("leaver", FORD, QueryOptions::resuming(token)).expect("resumes");
    assert_eq!(resumed.relation, expected, "resume after cancel did not converge");
    assert_eq!(engine.stats().cancelled, 1);
}

#[test]
fn shutdown_cancels_in_flight_queries_and_drains() {
    let engine = engine();
    let expected = oracle(&engine, FORD);
    let worker = {
        let engine = engine.clone();
        std::thread::spawn(move || engine.query("slow", FORD, QueryOptions::default()))
    };
    // Let the worker get in flight (cold engine: the walk takes a
    // while), then pull the plug under it.
    std::thread::sleep(std::time::Duration::from_millis(10));
    engine.shutdown();
    assert_eq!(engine.lifecycle(), Lifecycle::Stopped);
    let result = worker.join().expect("worker thread");
    // Depending on timing the worker either finished before the
    // cancel landed (full answer) or aborted cleanly (sound partial).
    match result {
        Ok(out) => assert!(subset(&out.relation, &expected), "shutdown fabricated tuples"),
        Err(e) => panic!("shutdown must cancel cooperatively, not fail the query: {e}"),
    }
    assert!(engine.drain_wait(std::time::Duration::from_secs(5)), "queries left in flight");
    let err = engine.query("late", FORD, QueryOptions::default());
    assert!(matches!(err, Err(EngineError::Draining)), "stopped engine admitted: {err:?}");
    // The isolated oracle is a measurement tool, not a tenant: it
    // still runs after shutdown.
    assert_eq!(oracle(&engine, FORD), expected);
}

#[test]
fn warm_restart_replays_the_journal_fetch_free() {
    let path = journal_path("warm");
    let _ = std::fs::remove_file(&path);
    let first = journaled_engine(&path);
    let original = first.query("t", FORD, QueryOptions::default()).expect("journalled run");
    drop(first);

    let second = journaled_engine(&path);
    let stats = second.stats();
    assert!(stats.journal_recovered_pages > 0, "{stats:?}");
    assert_eq!(stats.journal_recovered_results, 1, "{stats:?}");
    assert_eq!(stats.journal_torn, 0, "{stats:?}");
    let before = second.web().total_stats().requests;
    let replay = second.query("t", FORD, QueryOptions::default()).expect("replayed run");
    let after = second.web().total_stats().requests;
    assert_eq!(replay.relation, original.relation, "restart changed the answer");
    // The oracle below runs on a private store and fetches freely —
    // measure the replay's cost before it, not after.
    assert_eq!(after, before, "warm restart re-fetched");
    assert_eq!(replay.relation, oracle(&second, FORD), "restart diverged from the oracle");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_torn_journal_recovers_the_surviving_prefix() {
    let path = journal_path("torn");
    let _ = std::fs::remove_file(&path);
    let first = journaled_engine(&path);
    first.query("t", FORD, QueryOptions::default()).expect("journalled run");
    drop(first);
    // Tear the tail off mid-record — the crash case fsync cannot save.
    let bytes = std::fs::read(&path).expect("journal exists");
    assert!(bytes.len() > 40, "journal too small to tear meaningfully");
    std::fs::write(&path, &bytes[..bytes.len() - 25]).expect("truncate");

    let second = journaled_engine(&path);
    let stats = second.stats();
    assert!(stats.journal_torn > 0, "the torn record must be detected: {stats:?}");
    // Whatever survived is a sound cache; the engine re-fetches the
    // rest and still converges to the oracle.
    let out = second.query("t", FORD, QueryOptions::default()).expect("degraded journal serves");
    assert_eq!(out.relation, oracle(&second, FORD), "torn recovery diverged");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stats_snapshots_are_fieldwise_monotone_under_load() {
    // STATS reads its counters individually (torn *group* reads are
    // accepted by design — see the server's STATS handler), so the
    // pinned contract is per-field monotonicity across snapshots.
    let engine = engine();
    let snapshots: Vec<webbase::EngineStats> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|t| {
                let engine = engine.clone();
                scope.spawn(move || {
                    let tenant = format!("tenant{t}");
                    for text in [FORD, JAGUAR_QUERY, FORD] {
                        let _ = engine.query(&tenant, text, QueryOptions::default());
                    }
                })
            })
            .collect();
        let mut snaps = Vec::new();
        while workers.iter().any(|w| !w.is_finished()) {
            snaps.push(engine.stats());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        for w in workers {
            w.join().expect("worker");
        }
        snaps.push(engine.stats());
        snaps
    });
    for pair in snapshots.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(b.queries >= a.queries, "queries went backwards: {a:?} -> {b:?}");
        assert!(b.store_hits >= a.store_hits, "store_hits went backwards: {a:?} -> {b:?}");
        assert!(b.store_misses >= a.store_misses, "store_misses went backwards: {a:?} -> {b:?}");
        assert!(b.memo_hits >= a.memo_hits, "memo_hits went backwards: {a:?} -> {b:?}");
        assert!(b.memo_misses >= a.memo_misses, "memo_misses went backwards: {a:?} -> {b:?}");
        assert!(b.memo_len >= a.memo_len, "memo_len went backwards: {a:?} -> {b:?}");
        assert!(b.result_hits >= a.result_hits, "result_hits went backwards: {a:?} -> {b:?}");
        assert!(b.result_misses >= a.result_misses, "result_misses went backwards: {a:?} -> {b:?}");
        assert!(b.web_requests >= a.web_requests, "web_requests went backwards: {a:?} -> {b:?}");
        assert!(b.panics >= a.panics && b.cancelled >= a.cancelled, "{a:?} -> {b:?}");
        assert!(b.drift_events >= a.drift_events, "drift_events went backwards: {a:?} -> {b:?}");
        assert!(
            b.view_invalidated >= a.view_invalidated,
            "view_invalidated went backwards: {a:?} -> {b:?}"
        );
        assert!(b.delta_refresh >= a.delta_refresh, "delta_refresh went backwards: {a:?} -> {b:?}");
        assert!(b.cold_refresh >= a.cold_refresh, "cold_refresh went backwards: {a:?} -> {b:?}");
        assert_eq!(b.stale_served, 0, "a stale answer was served under load: {b:?}");
    }
    let last = snapshots.last().expect("at least one snapshot");
    assert_eq!(last.queries, 9, "all nine queries completed: {last:?}");
    assert_eq!(last.panics, 0);
    assert_eq!(last.stale_served, 0, "the freshness tripwire fired: {last:?}");
}
