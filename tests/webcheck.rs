//! Pre-flight static analysis against deployed and fault-injected maps.
//!
//! The webcheck passes promise two things: a healthy, shipped webbase
//! analyzes clean (no W-noise at seed defaults), and a map carrying the
//! kind of drift the self-healing executor later repairs at runtime is
//! flagged *before* any navigation — on the same node the runtime
//! repair would touch. The dataset seed comes from `WEBBASE_TEST_SEED`
//! (default 11), so CI sweeps this suite across seeds.

mod common;

use common::{fixture, healthy_webbase};
use webbase_flogic::goal::Goal;
use webbase_flogic::program::{Program, Rule};
use webbase_flogic::term::{Sym, Term, Var};
use webbase_html::diff::PageChange;
use webbase_navigation::model::ActionDescr;
use webbase_webcheck::{
    check_cross_layer, check_map, check_program, check_site, navigation_index, CompatRuleSpec,
    CrossLayerInput, HandleSpec, LogicalSpec, VpsRelSpec,
};
use webbase_webworld::faults::DriftingSite;
use webbase_webworld::server::Site;

const NEWSDAY: &str = "www.newsday.com";

// ───────────────────────── deployed webbase ─────────────────────────

#[test]
fn the_deployed_webbase_is_preflight_clean() {
    let wb = healthy_webbase();
    let report = wb.check();
    assert!(report.is_clean(), "unexpected findings at seed defaults:\n{}", report.render());
    // The load path accumulated the same verdict per site.
    assert!(wb.layer.vps.preflight().is_clean(), "{}", wb.layer.vps.preflight().render());
}

#[test]
fn the_readme_diagnostic_table_is_generated_from_the_registry() {
    // The README table is pasted from `render_code_table()`; this pin
    // fails whenever a code is added/changed without regenerating it.
    let table = webbase_webcheck::render_code_table();
    let readme = include_str!("../README.md");
    assert!(
        readme.contains(&table),
        "README.md's diagnostic table drifted from the registry; \
         paste in the output of webbase_webcheck::render_code_table():\n{table}"
    );
}

#[test]
fn every_deployed_map_carries_semantics_from_the_single_entry_point() {
    // All map ingestion routes through `analyze_full`, so every loaded
    // site must come with its abstract interpretation: a cost interval
    // with a positive lower bound and a non-empty static read-set per
    // registered relation.
    let wb = healthy_webbase();
    for map in &wb.maps {
        let sem = wb
            .layer
            .vps
            .semantics_for(&map.site)
            .unwrap_or_else(|| panic!("{} loaded without semantics", map.site));
        assert_eq!(sem.host, map.site);
        for reg in &map.relations {
            let r = sem
                .relation(&reg.relation)
                .unwrap_or_else(|| panic!("{}: no semantics for {}", map.site, reg.relation));
            assert!(r.cost.min >= 1, "{}: an invocation fetches at least the entry", map.site);
            assert!(r.cost.max.admits(r.cost.min), "{}: empty interval", map.site);
            assert!(!r.read_nodes.is_empty(), "{}: empty static read-set", map.site);
            assert!(
                r.spine_nodes.is_subset(&r.read_nodes),
                "{}: the spine must sit inside the read-set",
                map.site
            );
        }
    }
}

// ──────────────── pass 2: signature conformance (flogic) ────────────

/// `r(N) :- P : web_page, P[title -> N]` — well-typed against Figure 3.
fn title_rule(attr: &str, class: &str, scalar: bool) -> Program {
    let p = Term::Var(Var(0));
    let n = Term::Var(Var(1));
    let molecule = if scalar {
        Goal::ScalarAttr(p.clone(), Sym::new(attr), n.clone())
    } else {
        Goal::SetAttr(p.clone(), Sym::new(attr), n.clone())
    };
    Program::from_rules([Rule::new(
        "r",
        vec![n],
        Goal::seq(vec![Goal::IsA(p, Sym::new(class)), molecule]),
    )])
}

#[test]
fn well_typed_molecules_pass() {
    let program = title_rule("title", "web_page", true);
    let report = check_program("<fixture>", &program, &["r".to_string()], &navigation_index());
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn scalar_used_as_set_is_e113() {
    // Figure 3 declares `web_page[actions =>> action]`; querying it with
    // a scalar arrow (`->`) is a conformance violation.
    let program = title_rule("actions", "web_page", true);
    let report = check_program("<fixture>", &program, &["r".to_string()], &navigation_index());
    assert_eq!(report.with_code("E113").len(), 1, "{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn set_used_as_scalar_is_e113() {
    // The converse direction: `data_page[extract => string]` is scalar,
    // membership (`->>`) misuses it.
    let program = title_rule("extract", "data_page", false);
    let report = check_program("<fixture>", &program, &["r".to_string()], &navigation_index());
    assert_eq!(report.with_code("E113").len(), 1, "{}", report.render());
}

#[test]
fn unknown_class_is_e114() {
    let program = title_rule("title", "martian_page", true);
    let report = check_program("<fixture>", &program, &["r".to_string()], &navigation_index());
    assert_eq!(report.with_code("E114").len(), 1, "{}", report.render());
    // The attribute cannot be judged against an unknown class: no W012.
    assert!(report.with_code("W012").is_empty(), "{}", report.render());
}

#[test]
fn undeclared_attribute_is_w012() {
    let program = title_rule("aura", "web_page", true);
    let report = check_program("<fixture>", &program, &["r".to_string()], &navigation_index());
    assert_eq!(report.with_code("W012").len(), 1, "{}", report.render());
    assert!(!report.has_errors(), "W012 must stay a warning");
}

#[test]
fn compiled_site_programs_conform() {
    // Every real compiled program — the artefacts pass 2 exists for —
    // conforms to Figure 3 plus the executor supplements.
    let wb = healthy_webbase();
    for map in &wb.maps {
        let compiled = webbase_navigation::compile::compile_map(map);
        let report = webbase_webcheck::check_compiled(&map.site, &compiled);
        assert!(report.is_clean(), "{}:\n{}", map.site, report.render());
    }
}

// ─────────── pass 1 vs the self-healing runtime (fault injection) ───────────

#[test]
fn stale_catalogue_is_flagged_on_the_node_healing_later_repairs() {
    let (data, _) = fixture();
    assert!(
        !data.matching(webbase_webworld::data::SiteSlice::Newsday, Some("ford"), None).is_empty(),
        "seed must give newsday ford ads, or the scenario is vacuous"
    );

    // The drift: newsday renames its "Used Cars" link. A designer who
    // refreshes the page catalogue without re-recording the session gets
    // a map whose edge still clicks the old anchor.
    let wb = healthy_webbase();
    let mut map = wb.map_for(NEWSDAY).expect("newsday map").clone();
    let edge_node = map
        .edges
        .iter()
        .find_map(|e| match &e.action {
            ActionDescr::Follow(l) if l.name == "Used Cars" => Some(e.from),
            _ => None,
        })
        .expect("the recorded map clicks Used Cars");
    for action in &mut map.node_mut(edge_node).actions {
        if let ActionDescr::Follow(l) = action {
            if l.name == "Used Cars" {
                l.name = "Pre-owned Cars".into();
            }
        }
    }
    let report = check_map(&map);
    let findings = report.with_code("W005");
    assert_eq!(findings.len(), 1, "{}", report.render());
    assert_eq!(findings[0].site, NEWSDAY);
    assert!(
        findings[0].location.contains(&format!("edge {edge_node} ")),
        "finding must name the drifted node: {}",
        findings[0]
    );

    // Now let the *runtime* meet the same drift: the executor's page
    // probe auto-repairs the rename on exactly the node the static pass
    // flagged.
    let mut drifted = common::faulty_webbase(|h, s| {
        if h == NEWSDAY {
            Box::new(
                DriftingSite::new(s, ">Used Cars</a>", ">Pre-owned Cars</a>").only_on_path("/auto"),
            ) as Box<dyn Site>
        } else {
            s
        }
    });
    drifted.select("classifieds", common::FORD_SELECT).expect("drifted query must not abort");
    let repairs = drifted.layer.vps.repairs();
    let site = repairs.sites.get(NEWSDAY).expect("newsday must report repairs");
    assert!(
        site.auto_applied.iter().any(|(node, c)| *node == edge_node
            && matches!(
                c,
                PageChange::LinkRenamed { old, new, .. }
                    if old == "Used Cars" && new == "Pre-owned Cars"
            )),
        "healing must repair the node webcheck flagged ({edge_node}): {:?}",
        site.auto_applied
    );
}

#[test]
fn severed_data_path_is_an_error_not_a_surprise_mid_query() {
    // Pass 1 defect injection on a *real* recorded map: sever the hop
    // into the data page; the relation's registration survives but can
    // never be reached → E101 (and derived handles would be empty).
    let wb = healthy_webbase();
    let mut map = wb.map_for(NEWSDAY).expect("newsday map").clone();
    let data_nodes: Vec<_> = map.relations.iter().map(|r| r.data_node).collect();
    map.edges.retain(|e| !data_nodes.contains(&e.to));
    let report = check_site(&map);
    assert!(!report.with_code("E101").is_empty(), "{}", report.render());
    assert!(report.has_errors());
}

// ──────────────── pass 3: cross-layer defect injection ───────────────

fn healthy_cross_input() -> CrossLayerInput {
    CrossLayerInput {
        logical: vec![LogicalSpec {
            name: "classifieds".into(),
            attrs: vec!["make".into(), "price".into()],
            bases: vec!["newsday".into()],
        }],
        vps: vec![VpsRelSpec {
            name: "newsday".into(),
            site: NEWSDAY.into(),
            attrs: vec!["make".into(), "price".into()],
            handles: vec![HandleSpec {
                mandatory: vec!["make".into()],
                selection: vec!["make".into(), "price".into()],
            }],
        }],
        concepts: vec!["Classifieds".into(), "Lease".into()],
        compat: vec![CompatRuleSpec::Excludes {
            premise: vec!["Lease".into()],
            then_not: "Classifieds".into(),
        }],
    }
}

#[test]
fn healthy_cross_layer_input_is_clean() {
    let report = check_cross_layer(&healthy_cross_input());
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn missing_vps_source_is_e121() {
    let mut input = healthy_cross_input();
    input.logical[0].bases = vec!["ghostSite".into()];
    let report = check_cross_layer(&input);
    assert_eq!(report.with_code("E121").len(), 1, "{}", report.render());
}

#[test]
fn unmapped_logical_attribute_is_e122() {
    let mut input = healthy_cross_input();
    input.logical[0].attrs.push("telepathy".into());
    let report = check_cross_layer(&input);
    assert_eq!(report.with_code("E122").len(), 1, "{}", report.render());
}

#[test]
fn unsatisfiable_binding_pattern_is_e123() {
    let mut input = healthy_cross_input();
    input.vps[0].handles[0].mandatory.push("zip".into()); // not in the schema
    let report = check_cross_layer(&input);
    let findings = report.with_code("E123");
    assert_eq!(findings.len(), 1, "{}", report.render());
    assert_eq!(findings[0].site, NEWSDAY, "binding findings belong to the owning site");
}

#[test]
fn vacuous_compat_rule_is_w021() {
    let mut input = healthy_cross_input();
    input.compat.push(CompatRuleSpec::Requires {
        premise: vec!["Hoverboards".into()],
        then: "Classifieds".into(),
    });
    let report = check_cross_layer(&input);
    assert_eq!(report.with_code("W021").len(), 1, "{}", report.render());
    assert!(!report.has_errors());
}

#[test]
fn contradictory_compat_rules_are_e124() {
    let mut input = healthy_cross_input();
    // Requires(Lease → Classifieds) against Excludes(Lease → ¬Classifieds).
    input.compat.push(CompatRuleSpec::Requires {
        premise: vec!["Lease".into()],
        then: "Classifieds".into(),
    });
    let report = check_cross_layer(&input);
    assert!(!report.with_code("E124").is_empty(), "{}", report.render());
}
