//! The differential battery over the generated webworld (ISSUE 10).
//!
//! Across seeds 11/23/47, for corpora of generated sites:
//!
//! * **engine ≡ oracle** — structured-UR answers through the full
//!   engine equal the generator's pure in-memory relational oracle;
//! * **maintained ≡ cold** — after drift + refresh, maintained views
//!   answer exactly what a cold isolated re-run answers, with
//!   `stale_served == 0`;
//! * **observed ∈ static interval** — per-invocation fetch counts land
//!   inside webcheck's abstract-interpretation cost intervals, and
//!   dynamic reads never escape the static read-set;
//! * **webcheck ≡ manifest** — clean-knob sites analyse clean; each
//!   defect knob yields exactly its manifest's codes (swept over
//!   arbitrary seeds by proptest);
//! * **determinism** — the corpus is a pure function of its seed,
//!   pinned against golden digests (`WEBBASE_BLESS=1` regenerates, as
//!   for `trace_golden`).
//!
//! `WEBBASE_GEN_SITES=<n>` scales the per-seed corpus size (the golden
//! digests stay at their pinned size regardless).

mod common;

use std::collections::BTreeMap;
use webbase::{check_manifest, check_site, Engine, EngineConfig, QueryOptions};
use webbase_navigation::executor::SiteNavigator;
use webbase_navigation::gen_sessions;
use webbase_navigation::DriftOrigin;
use webbase_relational::value::Value;
use webbase_relational::Relation;
use webbase_webcheck::site_semantics;
use webbase_webworld::data::fnv;
use webbase_webworld::generate::{GenCorpus, SiteSpec, GEN_DRIFT_GENERATIONS};
use webbase_webworld::prelude::LatencyModel;
use webbase_webworld::topology::Defect;

const SEEDS: [u64; 3] = [11, 23, 47];

/// A generated-corpus engine over the given web.
fn gen_engine(corpus: &GenCorpus, web: webbase_webworld::prelude::SyntheticWeb) -> Engine {
    Engine::build_corpus(web, webbase::Corpus::generated(corpus), EngineConfig::default())
        .expect("generated engine builds")
}

// ───────────── webcheck vs the generated defect knobs ────────────────

#[test]
fn clean_sites_analyse_clean() {
    for seed in SEEDS {
        let corpus = GenCorpus::generate(seed, common::gen_sites(6));
        let web = corpus.web(LatencyModel::zero());
        for spec in &corpus.specs {
            let (map, _) = gen_sessions::record_spec(web.clone(), spec).expect("records");
            let report = check_site(&map);
            let check = check_manifest(&report, &spec.expected_findings());
            assert!(
                check.is_match(),
                "seed {seed} {} ({:?}): {check}\n{}",
                spec.host,
                spec.topology,
                report.render()
            );
        }
    }
}

#[test]
fn defect_knobs_trigger_exactly_their_codes() {
    for seed in SEEDS {
        let corpus = GenCorpus::generate_with_defects(seed, common::gen_sites(6));
        let web = corpus.web(LatencyModel::zero());
        for spec in &corpus.specs {
            let (map, _) = gen_sessions::record_spec(web.clone(), spec).expect("records");
            let report = check_site(&map);
            let check = check_manifest(&report, &spec.expected_findings());
            assert!(
                check.is_match(),
                "seed {seed} {} (defect {:?}): {check}\n{}",
                spec.host,
                spec.topology.defect,
                report.render()
            );
        }
    }
}

// ──────────────────────── engine ≡ oracle ────────────────────────────

/// The distinct-count multiset of `(item, qty, price)` triples in a
/// relation, keyed by the spec's index-suffixed attribute names.
fn answer_triples(spec: &SiteSpec, rel: &Relation) -> BTreeMap<(String, i64, i64), usize> {
    let ii = rel.schema().index_of(&spec.attr("item").into()).expect("item attr");
    let qi = rel.schema().index_of(&spec.attr("qty").into()).expect("qty attr");
    let pi = rel.schema().index_of(&spec.attr("price").into()).expect("price attr");
    let mut out = BTreeMap::new();
    for t in rel.tuples() {
        let Value::Str(item) = t.get(ii) else { panic!("item must be a string") };
        let key = (
            item.clone(),
            t.get(qi).as_int().expect("qty int"),
            t.get(pi).as_int().expect("price int"),
        );
        *out.entry(key).or_insert(0) += 1;
    }
    out
}

fn oracle_triples(spec: &SiteSpec) -> BTreeMap<(String, i64, i64), usize> {
    let sub = spec.needs_sub().then(|| spec.exemplar_sub().to_string());
    let mut out = BTreeMap::new();
    for row in spec.oracle(spec.exemplar_cat(), sub.as_deref()) {
        *out.entry((row.item.clone(), row.qty, row.price)).or_insert(0) += 1;
    }
    out
}

#[test]
fn engine_answers_equal_the_relational_oracle() {
    for seed in SEEDS {
        let corpus = GenCorpus::generate(seed, common::gen_sites(5));
        let engine = gen_engine(&corpus, corpus.web(LatencyModel::zero()));
        for spec in &corpus.specs {
            let out = engine
                .query("t0", &spec.exemplar_query(), QueryOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed} {}: query failed: {e}", spec.host));
            let answers = answer_triples(spec, &out.relation);
            let oracle = oracle_triples(spec);
            assert!(!oracle.is_empty(), "seed {seed} {}: degenerate oracle", spec.host);
            assert_eq!(
                answers, oracle,
                "seed {seed} {}: engine answer diverged from the in-memory oracle",
                spec.host
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.readset_escape, 0, "seed {seed}: dynamic reads escaped");
        assert_eq!(stats.stale_served, 0, "seed {seed}: stale answers served");
    }
}

// ─────────────── maintained views ≡ cold re-runs ─────────────────────

#[test]
fn maintained_views_equal_cold_reruns_under_drift() {
    for seed in SEEDS {
        let corpus = GenCorpus::generate(seed, 4);
        let (web, clock) = corpus.web_with_drifting_site(0, LatencyModel::zero());
        let engine = gen_engine(&corpus, web);
        let spec = &corpus.specs[0];
        let text = spec.exemplar_query();
        // Warm the maintained view against generation 0.
        engine.query("t0", &text, QueryOptions::default()).expect("warm query");
        for generation in 1..=GEN_DRIFT_GENERATIONS {
            clock.advance();
            engine.refresh(Some(&spec.host), DriftOrigin::Maintenance, None, None);
            let served =
                engine.query("t0", &text, QueryOptions::default()).expect("maintained query");
            let cold = engine
                .query_isolated("oracle", &text, QueryOptions::default())
                .expect("cold re-run");
            assert_eq!(
                served.relation, cold.relation,
                "seed {seed} {} generation {generation}: maintained view != cold re-run",
                spec.host
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.stale_served, 0, "seed {seed}: stale answers served");
        assert_eq!(stats.readset_escape, 0, "seed {seed}: dynamic reads escaped");
    }
}

// ──────────── observed fetches ∈ static cost intervals ───────────────

#[test]
fn invocation_fetches_land_inside_relation_intervals() {
    for seed in SEEDS {
        let corpus = GenCorpus::generate(seed, common::gen_sites(5));
        let web = corpus.web(LatencyModel::zero());
        for spec in &corpus.specs {
            let (map, _) = gen_sessions::record_spec(web.clone(), spec).expect("records");
            let sem = site_semantics(&map);
            let rel_sem = sem
                .relation(&spec.relation)
                .unwrap_or_else(|| panic!("{}: no semantics for {}", spec.host, spec.relation));
            let mut given = vec![(spec.attr("cat"), Value::str(spec.exemplar_cat()))];
            if spec.needs_sub() {
                given.push((spec.attr("sub"), Value::str(spec.exemplar_sub())));
            }
            let nav = SiteNavigator::new(web.clone(), map.clone());
            let (_, stats) = nav.run_relation(&spec.relation, &given).expect("invocation runs");
            let observed = stats.pages_fetched as u64;
            assert!(
                rel_sem.cost.contains(observed),
                "seed {seed} {}: one invocation fetched {observed} pages, outside {}",
                spec.host,
                rel_sem.cost
            );
        }
    }
}

#[test]
fn cold_engine_fetches_land_inside_plan_intervals() {
    for seed in SEEDS {
        let corpus = GenCorpus::generate(seed, 3);
        for spec in &corpus.specs {
            // A fresh engine per query: the lower bound only binds on a
            // cold page store.
            let engine = gen_engine(&corpus, corpus.web(LatencyModel::zero()));
            let text = spec.exemplar_query();
            let (_plan, sem) = engine.explain_semantics(&text).expect("plan compiles");
            let sem = sem.expect("generated plans have full semantics");
            let before = engine.web().total_stats().requests;
            engine.query("t0", &text, QueryOptions::default()).expect("clean query");
            let observed = engine.web().total_stats().requests - before;
            assert!(
                observed >= sem.cost.min,
                "seed {seed} {}: {observed} fetched < static lower bound {}",
                spec.host,
                sem.cost.min
            );
            assert!(
                sem.cost.max.admits(observed),
                "seed {seed} {}: {observed} fetched escapes static upper bound {}",
                spec.host,
                sem.cost.max
            );
            assert_eq!(engine.stats().readset_escape, 0, "seed {seed}: reads escaped");
        }
    }
}

// ──────── determinism: the corpus is a pure function of the seed ─────

/// Golden corpora stay at a pinned size so `WEBBASE_GEN_SITES` cannot
/// silently shift the digests.
const GOLDEN_SITES: usize = 6;

/// One digest line per site: an FNV hash over the complete page
/// inventory (every servable path and its HTML) and one over the
/// recorded map's canonical fact rendering.
fn corpus_digest(seed: u64) -> String {
    let corpus = GenCorpus::generate(seed, GOLDEN_SITES);
    let web = corpus.web(LatencyModel::zero());
    let mut out = String::new();
    for spec in &corpus.specs {
        let mut pages = String::new();
        for (path, html) in spec.page_inventory() {
            pages.push_str(&path);
            pages.push('\n');
            pages.push_str(&html);
            pages.push('\n');
        }
        let (map, _) = gen_sessions::record_spec(web.clone(), spec).expect("records");
        let facts = webbase_navigation::persist::render_facts(&map);
        out.push_str(&format!(
            "{} pages:{:016x} facts:{:016x} rows:{}\n",
            spec.host,
            fnv(&pages),
            fnv(&facts),
            spec.rows().len()
        ));
    }
    out
}

fn golden(seed: u64) {
    let digest = corpus_digest(seed);
    // Determinism first: a second independently generated and recorded
    // corpus at the same seed must digest identically.
    assert_eq!(
        digest,
        corpus_digest(seed),
        "seed {seed}: corpus generation is not deterministic across runs"
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join(format!("tests/golden/generated_seed{seed}.txt"));
    if std::env::var("WEBBASE_BLESS").is_ok() {
        std::fs::write(&path, &digest)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden digest {} ({e}); regenerate with WEBBASE_BLESS=1", path.display())
    });
    assert_eq!(
        digest, expected,
        "seed {seed}: generated corpus diverged from the golden digest; if the change is \
         intentional, regenerate with WEBBASE_BLESS=1 cargo test --test generated"
    );
}

#[test]
fn golden_corpus_seed_11() {
    golden(11);
}

#[test]
fn golden_corpus_seed_23() {
    golden(23);
}

#[test]
fn golden_corpus_seed_47() {
    golden(47);
}

// ──────── arbitrary seeds: the manifest contract holds corpus-wide ───

use proptest::prelude::*;

/// A single-site corpus for one derived spec.
fn single(spec: SiteSpec) -> GenCorpus {
    GenCorpus { seed: spec.corpus_seed, specs: vec![spec] }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Clean-knob sites never trigger a finding at any corpus seed —
    /// in particular zero E-level findings, so a generated corpus is
    /// always admissible as a differential baseline.
    #[test]
    fn any_clean_site_analyses_clean(seed in 0u64..10_000, index in 0usize..8) {
        let corpus = single(SiteSpec::derive(seed, index, None));
        let web = corpus.web(LatencyModel::zero());
        let (map, _) = gen_sessions::record_spec(web, &corpus.specs[0]).expect("records");
        let report = check_site(&map);
        prop_assert_eq!(report.errors().count(), 0, "clean site has E-level findings");
        let check = check_manifest(&report, &corpus.specs[0].expected_findings());
        prop_assert!(check.is_match(), "{}: {}\n{}", corpus.specs[0].host, check, report.render());
    }

    /// Each defect knob triggers exactly its manifest's codes — no
    /// more, no fewer — at any corpus seed.
    #[test]
    fn any_defect_knob_triggers_exactly_its_codes(
        seed in 0u64..10_000,
        index in 0usize..8,
        which in 0usize..Defect::ALL.len(),
    ) {
        let corpus = single(SiteSpec::derive(seed, index, Some(Defect::ALL[which])));
        let spec = &corpus.specs[0];
        let web = corpus.web(LatencyModel::zero());
        let (map, _) = gen_sessions::record_spec(web, spec).expect("records");
        let report = check_site(&map);
        let check = check_manifest(&report, &spec.expected_findings());
        prop_assert!(
            check.is_match(),
            "{} (defect {:?}): {}\n{}",
            spec.host,
            spec.topology.defect,
            check,
            report.render()
        );
    }
}
