//! Budget-bounded execution and resumable partial results.
//!
//! The contract: a query that exhausts its [`QueryBudget`] stops
//! cleanly with a **sound** partial answer (a subset of the unbounded
//! answer, never fabricated), accounts for every denied fetch in its
//! degradation report, and emits a resume token whose journal lets a
//! later run re-traverse the completed frontier with **zero
//! re-fetches** — including tokens captured mid-"More"-chain and
//! mid-session-replay. The token round-trips through the F-logic fact
//! format byte-exactly, and the union of partial + resumed runs equals
//! the unbounded answer.

mod common;

use common::{faulty_webbase, healthy_webbase, subset, JAGUAR_QUERY};
use webbase_logical::{parse_resume, render_resume, QueryBudget};
use webbase_webworld::faults::ExpiringSessionSite;
use webbase_webworld::server::Site;

/// A query whose newsday branch paginates (model unbound → a long
/// "More" chain), so a tight quota bites mid-chain.
const FORD_QUERY: &str = "UsedCarUR(make='ford', price)";

const NEWSDAY: &str = "www.newsday.com";

/// Newsday's pagination links carry session tokens that are stale by
/// the time they are followed (ttl 0): every "More" step goes through
/// session recovery.
fn expiring_newsday(h: &str, s: Box<dyn Site>) -> Box<dyn Site> {
    if h == NEWSDAY {
        Box::new(ExpiringSessionSite::new(s, 0)) as Box<dyn Site>
    } else {
        s
    }
}

#[test]
fn exhausted_queries_never_error_and_account_for_every_denial() {
    let (full, _) = healthy_webbase().query(JAGUAR_QUERY).expect("healthy jaguar query");
    assert!(!full.is_empty(), "seed must produce jaguar answers");

    for quota in [0u64, 1, 3, 7, 15] {
        let mut wb = healthy_webbase();
        let (partial, plan) = wb
            .query_with_budget(JAGUAR_QUERY, QueryBudget::unlimited().with_fetch_quota(quota))
            .unwrap_or_else(|e| panic!("quota {quota}: exhaustion surfaced as an error: {e}"));
        assert!(subset(&partial, &full), "quota {quota}: fabricated tuples");
        assert!(partial.len() < full.len(), "quota {quota} cannot complete the jaguar query");

        let snap = plan.budget.expect("budgeted runs must carry a spend snapshot");
        assert!(snap.fetches <= quota, "quota {quota}: overspent ({} fetches)", snap.fetches);
        assert!(snap.exhausted.is_some(), "quota {quota}: the shortfall must be flagged");
        assert!(!snap.starved_sites().is_empty(), "quota {quota}: someone must be starved");

        // Every denial the tracker recorded lands in the degradation
        // report — the shortfall is itemised, not silently swallowed.
        let denied: u64 = snap.sites.values().map(|s| s.denied).sum();
        let reported: u64 = plan.degradation.sites.values().map(|s| s.budget_denied).sum();
        assert!(denied > 0, "quota {quota}: an incomplete run must have denials");
        assert_eq!(reported, denied, "quota {quota}: report must account for every denial");
        assert!(!plan.degradation.is_clean(), "quota {quota}");

        // The resume token journals exactly the admitted fetches.
        let token = plan.resume.expect("exhausted runs must emit a resume token");
        assert_eq!(token.journal.len() as u64, snap.fetches, "quota {quota}");
        assert_eq!(token.spent_fetches, snap.fetches, "quota {quota}");
    }
}

#[test]
fn a_token_captured_mid_more_chain_resumes_to_the_full_answer_fetch_free() {
    let mut unbounded = healthy_webbase();
    let before = unbounded.web.total_stats().requests;
    let (full, _) = unbounded.query(FORD_QUERY).expect("unbounded ford query");
    let full_requests = (unbounded.web.total_stats().requests - before) as usize;
    assert!(!full.is_empty(), "seed must produce ford answers");

    // Quota 6 covers newsday's entry chain but not its "More" chain:
    // the token is captured mid-pagination.
    let mut wb = healthy_webbase();
    let before = wb.web.total_stats().requests;
    let (partial, plan) = wb
        .query_with_budget(FORD_QUERY, QueryBudget::unlimited().with_fetch_quota(6))
        .expect("budget exhaustion must not be an error");
    let mut spent = (wb.web.total_stats().requests - before) as usize;
    assert!(subset(&partial, &full), "fabricated partial tuples");
    assert!(partial.len() < full.len(), "quota 6 must interrupt the run");
    let token = plan.resume.expect("an interrupted run must emit a token");
    assert!(!token.journal.is_empty());

    // The token round-trips through the F-logic fact format exactly.
    let rendered = render_resume(&token);
    let parsed = parse_resume(&rendered).expect("rendered token must parse back");
    assert_eq!(parsed, token, "render → parse must be the identity");
    assert_eq!(render_resume(&parsed), rendered, "re-render must be byte-identical");

    // Resume until the budget stops biting. Every round starts a fresh
    // webbase (cold caches) so the only state carried is the token.
    let mut token = Some(parsed);
    let mut result = partial;
    let mut rounds = 0;
    while let Some(t) = token {
        rounds += 1;
        assert!(rounds < 100, "resume must converge");
        let mut next = healthy_webbase();
        let before = next.web.total_stats().requests;
        let (r, plan) = next.resume(FORD_QUERY, &t).expect("resume must not fail");
        let round_spent = (next.web.total_stats().requests - before) as usize;
        // Zero re-fetches of journalled pages: this round's network spend
        // plus the pages already paid for never exceeds the unbounded bill.
        assert!(
            round_spent + t.journal.len() <= full_requests,
            "journalled pages were re-fetched: {round_spent} new + {} journalled > {full_requests}",
            t.journal.len()
        );
        spent += round_spent;
        assert!(subset(&r, &full), "fabricated resumed tuples");
        result = r;
        if let Some(nt) = &plan.resume {
            assert!(nt.journal.len() > t.journal.len(), "the journal must strictly grow");
        }
        token = plan.resume;
    }
    assert_eq!(result, full, "partial + resumed must equal the unbounded answer");
    assert!(rounds >= 2, "quota 6 must take several rounds on the ford chain");
    assert!(spent <= full_requests, "{spent} total requests vs {full_requests} unbounded");
}

#[test]
fn a_token_captured_mid_session_replay_round_trips_and_resumes() {
    let (full, _) =
        faulty_webbase(expiring_newsday).query(FORD_QUERY).expect("session replay completes");
    assert!(!full.is_empty(), "seed must produce ford answers");

    let mut wb = faulty_webbase(expiring_newsday);
    let (partial, plan) = wb
        .query_with_budget(FORD_QUERY, QueryBudget::unlimited().with_fetch_quota(8))
        .expect("budgeted run against expiring sessions must not abort");
    assert!(subset(&partial, &full), "fabricated partial tuples");
    assert!(partial.len() < full.len(), "quota 8 must interrupt the replaying chain");
    let token = plan.resume.expect("an interrupted run must emit a token");

    // Session recovery journals the stale fetch and its replayed
    // replacement; the duplicate keys must survive the round-trip.
    let parsed = parse_resume(&render_resume(&token)).expect("rendered token must parse back");
    assert_eq!(parsed, token, "render → parse must be the identity");

    let mut token = Some(parsed);
    let mut result = partial;
    let mut rounds = 0;
    while let Some(t) = token {
        rounds += 1;
        assert!(rounds < 100, "resume must converge");
        let mut next = faulty_webbase(expiring_newsday);
        let (r, plan) = next.resume(FORD_QUERY, &t).expect("resume must not fail");
        assert!(subset(&r, &full), "fabricated resumed tuples");
        result = r;
        token = plan.resume;
    }
    assert_eq!(result, full, "resume must recover the whole replayed chain");
}

#[test]
fn fair_share_spreads_a_tight_quota_across_sites() {
    let (full, _) = healthy_webbase().query(FORD_QUERY).expect("healthy ford query");
    let run = |fair: bool| {
        let mut wb = healthy_webbase();
        let budget = QueryBudget::unlimited().with_fetch_quota(13).with_fair_share(fair);
        let (partial, plan) = wb.query_with_budget(FORD_QUERY, budget).expect("budgeted run");
        (partial, plan.budget.expect("snapshot"))
    };
    let (p_fair, s_fair) = run(true);
    let (p_greedy, s_greedy) = run(false);
    assert!(subset(&p_fair, &full) && subset(&p_greedy, &full), "fabricated tuples");
    assert!(s_fair.exhausted.is_some() && s_greedy.exhausted.is_some(), "quota 13 must bite");

    // 13 registered sites and a quota of 13 → a one-fetch floor per
    // site. Greedy admission lets the first chain eat the quota;
    // fair-share admission guarantees every attempted site its floor.
    let touched =
        |s: &webbase_logical::BudgetSnapshot| s.sites.values().filter(|x| x.fetches > 0).count();
    assert!(
        touched(&s_fair) >= touched(&s_greedy),
        "fair share must not serve fewer sites: {} vs {}",
        touched(&s_fair),
        touched(&s_greedy)
    );
    assert!(touched(&s_fair) >= 3, "fair share must spread across the classifieds sites");
    let max_fair = s_fair.sites.values().map(|x| x.fetches).max().unwrap_or(0);
    let max_greedy = s_greedy.sites.values().map(|x| x.fetches).max().unwrap_or(0);
    assert!(
        max_fair <= max_greedy,
        "fair share must cap the greediest site: {max_fair} vs {max_greedy}"
    );
}

// ---------------------------------------------------------------------
// Fair-share admission as a property, over random multi-tenant traffic.
//
// The engine's admission scheduler reuses the budget tracker with
// *tenants* in the site role: one query = one fetch charge, completion
// = `mark_served`. The properties below are therefore stated directly
// against the tracker, which makes them exhaustive over arrival orders
// rather than over whatever interleaving a live engine happens to
// produce.

use proptest::prelude::*;
use webbase_logical::BudgetTracker;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation and the max-min floor, at every step of a random
    /// admission history:
    ///
    /// 1. per-tenant spends always sum to the global spend (no charge
    ///    is lost or double-counted),
    /// 2. the global spend never exceeds the quota, and
    /// 3. for every tenant `h`, the spend so far plus the floors still
    ///    reserved for *other unserved* tenants fits in the quota —
    ///    i.e. no tenant can eat into another's max-min share before
    ///    that tenant has been served.
    #[test]
    fn fair_share_conserves_spend_and_respects_max_min_floors(
        quota in 1u64..40,
        n_tenants in 2usize..6,
        ops in proptest::collection::vec((0usize..6, 0u8..4), 1..120),
    ) {
        let budget = QueryBudget::unlimited().with_fetch_quota(quota).with_fair_share(true);
        let tracker = BudgetTracker::new(budget);
        let tenants: Vec<String> = (0..n_tenants).map(|i| format!("tenant{i}")).collect();
        for t in &tenants {
            tracker.register_site(t);
        }
        let floor = quota / n_tenants as u64;
        let mut admitted = 0u64;
        let mut denied = 0u64;
        for (pick, op) in ops {
            let tenant = &tenants[pick % n_tenants];
            if op == 3 {
                tracker.mark_served(tenant);
            } else {
                match tracker.try_admit(tenant, false) {
                    Ok(()) => admitted += 1,
                    Err(_) => denied += 1,
                }
            }
            let snap = tracker.snapshot();
            // (1) Conservation: per-tenant spends sum to the global
            // spend, and both match our own ledger; denials likewise.
            let spent: u64 = snap.sites.values().map(|s| s.fetches).sum();
            prop_assert_eq!(spent, snap.fetches, "per-tenant spends drifted from global");
            prop_assert_eq!(snap.fetches, admitted, "tracker lost or invented a charge");
            let refused: u64 = snap.sites.values().map(|s| s.denied).sum();
            prop_assert_eq!(refused, denied, "tracker lost or invented a denial");
            // (2) The quota is a hard cap.
            prop_assert!(snap.fetches <= quota, "overspent: {} > {}", snap.fetches, quota);
            // (3) Max-min: from any tenant's viewpoint, what everyone
            // has spent plus the floors still reserved for the other
            // unserved tenants must fit in the quota.
            for h in &tenants {
                let reserved: u64 = snap
                    .sites
                    .iter()
                    .filter(|(o, s)| o.as_str() != h.as_str() && !s.served)
                    .map(|(_, s)| floor.saturating_sub(s.fetches))
                    .sum();
                prop_assert!(
                    snap.fetches + reserved <= quota,
                    "{h}'s admissions invaded an unserved tenant's floor: \
                     spent {} + reserved {} > quota {}",
                    snap.fetches,
                    reserved,
                    quota
                );
            }
        }
        // A tenant that was never served and never asked keeps its full
        // floor available at the end of any history.
        let snap = tracker.snapshot();
        for (h, s) in &snap.sites {
            if !s.served && s.fetches == 0 {
                prop_assert!(
                    snap.fetches + floor <= quota || floor == 0,
                    "{h} was starved out of its floor"
                );
            }
        }
    }
}
