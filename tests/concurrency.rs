//! Concurrency battery for the multi-query engine (`webbase::Engine`).
//!
//! Every test follows the same discipline: compute the answer on the
//! fully isolated single-owner stack first (`Engine::query_isolated`,
//! which shares nothing — private page store, no memo, no result
//! cache), then fan the same queries across OS threads through the
//! shared engine and demand byte-identical relations. Sharing may only
//! change *cost*, never *answers*.
//!
//! The dataset seed comes from `WEBBASE_TEST_SEED` (default 11); CI
//! sweeps the suite across seeds 11, 23, and 47. The suite is also
//! green under `RUST_TEST_THREADS=1` — each test spawns and joins its
//! own workers, so harness-level serialisation changes nothing.

mod common;

use std::collections::HashSet;
use webbase::{Engine, LatencyModel, QueryOptions, Relation, SpanKind};

use common::JAGUAR_QUERY;

const FORD: &str = "UsedCarUR(make='ford', price)";
const HONDA: &str = "UsedCarUR(make='honda', model='civic', year, price)";
const TOYOTA: &str = "UsedCarUR(make='toyota', model='camry', year, price)";

fn engine() -> Engine {
    Engine::build_demo(common::seed(), 400, LatencyModel::lan())
}

/// Mixed workload of `n` queries cycling through four distinct texts.
fn workload(n: usize) -> Vec<&'static str> {
    let texts = [JAGUAR_QUERY, FORD, HONDA, TOYOTA];
    (0..n).map(|i| texts[i % texts.len()]).collect()
}

/// Run `work` across `threads` workers on the shared engine, each
/// worker its own tenant, returning the answers in submission order.
fn fan_out(engine: &Engine, work: &[&str], threads: usize) -> Vec<Relation> {
    let mut slots: Vec<Option<Relation>> = vec![None; work.len()];
    let answers = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let answers = &answers;
            let engine = engine.clone();
            scope.spawn(move || {
                let tenant = format!("tenant{t}");
                for (i, text) in work.iter().enumerate().skip(t).step_by(threads) {
                    let out = engine
                        .query(&tenant, text, QueryOptions::default())
                        .expect("shared query runs");
                    answers.lock().expect("answers lock")[i] = Some(out.relation);
                }
            });
        }
    });
    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

fn assert_identical_to_serial(queries: usize, threads: usize) {
    let engine = engine();
    let work = workload(queries);
    // Serial oracle on the isolated stack: shares nothing with the
    // concurrent runs below except the simulated web itself.
    let baseline: Vec<Relation> = work
        .iter()
        .map(|text| {
            engine
                .query_isolated("oracle", text, QueryOptions::default())
                .expect("isolated query runs")
                .relation
        })
        .collect();
    let concurrent = fan_out(&engine, &work, threads);
    for (i, (got, want)) in concurrent.iter().zip(&baseline).enumerate() {
        assert_eq!(got, want, "query {i} ({}) diverged from the serial baseline", work[i]);
    }
    assert_eq!(engine.stats().queries as usize, queries);
}

#[test]
fn eight_concurrent_queries_match_the_serial_baseline() {
    assert_identical_to_serial(8, 4);
}

#[test]
fn sixteen_concurrent_queries_match_the_serial_baseline() {
    assert_identical_to_serial(16, 8);
}

#[test]
fn thirty_two_concurrent_queries_match_the_serial_baseline() {
    assert_identical_to_serial(32, 16);
}

#[test]
fn cross_query_page_sharing_is_counter_verified() {
    let engine = engine();
    // Cold query: populates the shared page store and pays real
    // fetches — its per-query metrics registry records no cache hits
    // beyond intra-query revisits; the store records only misses from
    // this first walk.
    let first = engine.query("alice", JAGUAR_QUERY, QueryOptions::default()).expect("first");
    let store_after_first = engine.stats();
    assert!(store_after_first.store_misses > 0, "cold query must miss the store");
    let ford_requests_before = engine.web().total_stats().requests;

    // Overlapping query, different text (so the result cache cannot
    // answer it): the ford walk revisits the same sites' entry and
    // form pages the jaguar walk already interned.
    let second = engine.query("bob", FORD, QueryOptions::default()).expect("second");
    let after_second = engine.stats();
    let cross_hits = after_second.store_hits - store_after_first.store_hits;
    assert!(cross_hits > 0, "overlapping query must hit pages the first one interned");
    // The same sharing is visible in the second query's *own*
    // metrics registry (each query gets a private one).
    let per_query_hits = second.metrics.counters.get("cache_hits").copied().unwrap_or(0);
    assert!(per_query_hits >= cross_hits, "per-query registry missed shared-store hits");
    assert!(
        engine.web().total_stats().requests > ford_requests_before,
        "different bindings still require some fresh fetches"
    );
    assert!(!first.relation.tuples().is_empty() || !second.relation.tuples().is_empty());
}

#[test]
fn concurrent_traced_queries_keep_private_disjoint_span_trees() {
    let engine = engine();
    // Two tenants trace different queries at the same time. Each gets
    // a private Obs, so the span trees must be disjoint: no span of
    // one query's trace may describe the other query's bindings.
    let (jag, ford) = std::thread::scope(|scope| {
        let e1 = engine.clone();
        let e2 = engine.clone();
        let a = scope.spawn(move || {
            e1.query("alice", JAGUAR_QUERY, QueryOptions::traced()).expect("traced jaguar")
        });
        let b = scope
            .spawn(move || e2.query("bob", FORD, QueryOptions::traced()).expect("traced ford"));
        (a.join().expect("alice worker"), b.join().expect("bob worker"))
    });
    let jag_trace = jag.observation.expect("jaguar trace").trace;
    let ford_trace = ford.observation.expect("ford trace").trace;
    assert!(!jag_trace.is_empty() && !ford_trace.is_empty());

    // One root each, describing its own query.
    let jag_root = jag_trace.root().expect("jaguar root");
    let ford_root = ford_trace.root().expect("ford root");
    assert_eq!(jag_root.kind, SpanKind::Query);
    assert_eq!(ford_root.kind, SpanKind::Query);

    // No span id appears in both trees with the same content — the
    // trees were built by different sinks and share nothing.
    let jag_handles: HashSet<String> = jag_trace
        .of_kind(SpanKind::Handle)
        .iter()
        .filter_map(|s| s.field("given").map(str::to_string))
        .collect();
    for span in ford_trace.of_kind(SpanKind::Handle) {
        if let Some(given) = span.field("given") {
            assert!(!given.contains("jaguar"), "ford trace leaked a jaguar invocation: {given}");
        }
    }
    for given in &jag_handles {
        assert!(!given.contains("ford"), "jaguar trace leaked a ford invocation: {given}");
    }

    // Tracing changed observability, not the answer.
    let plain = engine
        .query_isolated("oracle", JAGUAR_QUERY, QueryOptions::default())
        .expect("isolated jaguar");
    assert_eq!(jag.relation, plain.relation);
}

#[test]
fn identical_concurrent_queries_coalesce_without_changing_answers() {
    let engine = engine();
    let oracle = engine
        .query_isolated("oracle", TOYOTA, QueryOptions::default())
        .expect("isolated toyota")
        .relation;
    let answers = fan_out(&engine, &[TOYOTA; 8], 8);
    for (i, got) in answers.iter().enumerate() {
        assert_eq!(got, &oracle, "coalesced query {i} diverged");
    }
    let stats = engine.stats();
    // Exactly one session executed the text; the other seven shared
    // its settled answer (waiting for the leader or arriving later).
    assert_eq!(stats.result_misses, 1, "one leader per distinct text: {stats:?}");
    assert_eq!(stats.result_hits, 7, "followers must share the leader's answer: {stats:?}");
}
